"""Extension -- how the stack scales with group size.

The paper evaluates n=4 only; this sweep grows the group to n=7 and
n=10 (f=2 and f=3) on the same calibrated LAN model.  The expected
shape: per-protocol latency grows superlinearly (reliable broadcast is
O(n²) frames and every consensus step runs n of them), which is the
standard cost of signature-free Byzantine protocols and why the paper
calls optimal resilience "important since the cost of each additional
replica has a significant impact".
"""

import pytest

from repro.eval.stack_analysis import measure_protocol_latency

SIZES = (4, 7, 10)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("protocol", ["rb", "bc", "ab"])
def test_scaling_latency(benchmark, protocol, n):
    latency = benchmark.pedantic(
        measure_protocol_latency,
        args=(protocol,),
        kwargs={"n": n, "runs": 2, "seed": 9},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({"n": n, "latency_us": round(latency * 1e6)})


@pytest.mark.parametrize("protocol", ["rb", "bc", "ab"])
def test_latency_grows_with_n(benchmark, protocol):
    def sweep():
        return [
            measure_protocol_latency(protocol, n=n, runs=1, seed=9) for n in SIZES
        ]

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["latency_us_by_n"] = {
        n: round(v * 1e6) for n, v in zip(SIZES, latencies)
    }
    assert latencies[0] < latencies[1] < latencies[2]


def test_message_complexity_quadratic(benchmark):
    """Frame counts for one reliable broadcast: ~n² growth."""
    from repro.net.network import LanSimulation

    def frames_for(n):
        sim = LanSimulation(n=n, seed=9)
        done = []
        for pid, stack in enumerate(sim.stacks):
            rb = stack.create("rb", ("s",), sender=0)
            rb.on_deliver = lambda _i, v: done.append(1)
        sim.stacks[0].instance_at(("s",)).broadcast(b"m")
        sim.run()
        return sim.frames_delivered

    def sweep():
        return {n: frames_for(n) for n in SIZES}

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["frames_by_n"] = counts
    # INIT n + ECHO n^2 + READY n^2, so the 4 -> 10 ratio is ~ (10/4)^2.
    ratio = counts[10] / counts[4]
    assert 4.0 < ratio < 9.0
