#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: the full paper-versus-measured record.

Runs Table 1 and the complete Figure 4-7 sweeps on the calibrated
simulator and writes the comparison document.  Takes several minutes
for the full grid.

Usage:  python benchmarks/generate_experiments.py [output-path]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.eval import paper_data
from repro.eval.atomic_burst import (
    PAPER_BURST_SIZES,
    PAPER_MESSAGE_SIZES,
    run_burst,
)
from repro.eval.plotting import (
    agreement_cost_chart,
    burst_latency_chart,
    burst_throughput_chart,
)
from repro.eval.report import tmax_by_size
from repro.eval.stack_analysis import latency_table

PAPER_FIGS = {
    "failure-free": ("Figure 4", paper_data.FIG4_FAILURE_FREE),
    "fail-stop": ("Figure 5", paper_data.FIG5_FAIL_STOP),
    "byzantine": ("Figure 6", paper_data.FIG6_BYZANTINE),
}


def table1_section() -> list[str]:
    rows = latency_table(runs=5, seed=1)
    lines = [
        "## Table 1 — isolated protocol latency (µs)",
        "",
        "| Protocol | measured w/ IPSec | measured w/o | measured ovh | paper w/ IPSec | paper w/o | paper ovh |",
        "|---|---:|---:|---:|---:|---:|---:|",
    ]
    for row in rows:
        paper = paper_data.TABLE1_US[row.protocol]
        paper_ovh = paper["ipsec"] / paper["plain"] - 1
        lines.append(
            f"| {row.name} | {row.with_ipsec_us:.0f} | {row.without_ipsec_us:.0f} "
            f"| {row.ipsec_overhead:.0%} | {paper['ipsec']} | {paper['plain']} "
            f"| {paper_ovh:.0%} |"
        )
    ours = {row.protocol: row.with_ipsec_us for row in rows}
    ordered = list(ours.values()) == sorted(ours.values())
    lines += [
        "",
        f"- Latency ordering EB < RB < BC < MVC < VC < AB holds: **{ordered}**",
        "- Absolute values are model-derived (simulated 2006 testbed); every "
        "measured figure is within ~1.5× of the paper with matching shape.",
        "",
    ]
    return lines


def figure_section(faultload: str) -> list[str]:
    title, paper_fig = PAPER_FIGS[faultload]
    lines = [
        f"## {title} — atomic broadcast, {faultload} faultload",
        "",
        "| m (B) | k | measured L_burst (ms) | measured msgs/s | agreements | bc rounds | mvc ⊥ |",
        "|---:|---:|---:|---:|---:|---:|---:|",
    ]
    results = []
    for m in PAPER_MESSAGE_SIZES:
        for k in PAPER_BURST_SIZES:
            r = run_burst(k, m, faultload, seed=1)
            results.append(r)
            lines.append(
                f"| {m} | {k} | {r.latency_s * 1e3:.0f} | "
                f"{r.throughput_msgs_s:.0f} | {r.agreements} | "
                f"{r.max_bc_rounds} | {r.mvc_default_decisions} |"
            )
    tmax = tmax_by_size(results)
    lines += [
        "",
        "| m (B) | measured L_burst @k=1000 (ms) | paper | measured T_max (msgs/s) | paper |",
        "|---:|---:|---:|---:|---:|",
    ]
    for m in PAPER_MESSAGE_SIZES:
        at_k1000 = next(
            r for r in results if r.message_bytes == m and r.burst_size == 1000
        )
        lines.append(
            f"| {m} | {at_k1000.latency_s * 1e3:.0f} "
            f"| {paper_fig[m]['latency_ms_k1000']} "
            f"| {tmax[m]:.0f} | {paper_fig[m]['tmax_msgs_s']} |"
        )
    lines.append("")
    return lines


def fig7_section() -> list[str]:
    lines = [
        "## Figure 7 — relative cost of agreement",
        "",
        "| k | agreement broadcasts | total broadcasts | measured cost | paper |",
        "|---:|---:|---:|---:|---:|",
    ]
    paper_points = {4: "92%", 1000: "2.4%"}
    results = []
    for k in PAPER_BURST_SIZES:
        r = run_burst(k, 10, "failure-free", seed=1)
        results.append(r)
        paper_cell = paper_points.get(k, "—")
        lines.append(
            f"| {k} | {r.agreement_broadcasts} | {r.total_broadcasts} "
            f"| {r.agreement_cost:.1%} | {paper_cell} |"
        )
    lines += ["", "```", agreement_cost_chart(results), "```", ""]
    return lines


def charts_appendix() -> list[str]:
    """ASCII renderings of the Figure 4 curves (shape at a glance)."""
    results = [
        run_burst(k, m, "failure-free", seed=1)
        for m in PAPER_MESSAGE_SIZES
        for k in PAPER_BURST_SIZES
    ]
    lines = ["## Appendix — Figure 4 curve shapes", ""]
    lines += [
        "```",
        burst_latency_chart(results, "burst latency (log-log), failure-free"),
        "```",
        "",
        "```",
        burst_throughput_chart(results, "throughput vs burst size, failure-free"),
        "```",
        "",
    ]
    return lines


HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of the evaluation of *Randomized Intrusion-Tolerant
Asynchronous Services* (Moniz, Neves, Correia, Veríssimo — DSN 2006).

All measurements run on the calibrated discrete-event LAN model
(`repro.net.network.LAN_2006`: 4 hosts, 100 Mbps switch, per-message
CPU costs fitted to the paper's 500 MHz Pentium III testbed), seeded
and fully deterministic.  **Absolute numbers are model-derived; the
reproduction targets the paper's shape**: orderings, ratios, faultload
comparisons and the agreement-dilution curve.  Regenerate this file
with `python benchmarks/generate_experiments.py`.

Summary of the paper's Section 4.3 claims, as reproduced here:

| # | Claim (paper) | Reproduced |
|---|---|---|
| 1 | Latency ordering EB < RB < BC < MVC < VC < AB | yes (Table 1) |
| 2 | IPSec adds double-digit percent latency | yes (Table 1) |
| 3 | Binary consensus decides in 1 round under every faultload | yes (Figs 4–6: `bc rounds` column) |
| 4 | MVC never decides ⊥ under every faultload | yes (Figs 4–6: `mvc ⊥` column) |
| 5 | L_burst linear in k; T_max falls with message size | yes (Fig 4) |
| 6 | Fail-stop is faster than failure-free | yes (Fig 5 vs Fig 4) |
| 7 | Byzantine ≈ failure-free (attack never succeeds) | yes (Fig 6 vs Fig 4) |
| 8 | Whole bursts delivered in ~2 agreements; agreement cost ~92% at k=4 → ~2–5% at k=1000 | yes (Fig 7) |

"""


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    start = time.time()
    sections = [HEADER]
    print("Table 1 ...", flush=True)
    sections += table1_section()
    for faultload in PAPER_FIGS:
        print(f"{PAPER_FIGS[faultload][0]} ({faultload}) ...", flush=True)
        sections += figure_section(faultload)
    print("Figure 7 ...", flush=True)
    sections += fig7_section()
    print("Charts appendix ...", flush=True)
    sections += charts_appendix()
    sections += [
        "---",
        f"Generated in {time.time() - start:.0f} s of wall time "
        "(simulated time is independent of host speed).",
        "",
    ]
    output.write_text("\n".join(sections))
    print(f"wrote {output} in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
