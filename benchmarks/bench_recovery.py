"""Extension -- recovery cost: time-to-rejoin and state-transfer bytes.

The RITAS paper never restarts a process; this benchmark measures what
the ``repro.recovery`` subsystem adds.  A replica is crashed, the group
keeps ordering commands (a small keyspace overwritten many times, so
the state stays bounded while the history grows), then the replica is
restarted from nothing and rejoins via checkpoint + state transfer.

Two numbers matter:

- **time-to-rejoin** (virtual seconds from restart to live), and
- **transfer bytes** versus the naive alternative of replaying the full
  command history -- the checkpoint makes this proportional to state
  size + checkpoint window, not history length, and the run *asserts*
  the < 20% bound at n=4 and n=7.

Run standalone (``python benchmarks/bench_recovery.py [--smoke]``) or
through pytest (``pytest benchmarks/bench_recovery.py``).
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.kv_store import KvCommand, ReplicatedKvStore
from repro.core.config import GroupConfig
from repro.net.network import LanSimulation
from repro.recovery import PHASE_LIVE, RecoveryManager

#: Fraction of full-replay bytes a recovery is allowed to transfer.
TRANSFER_BUDGET = 0.20


def run_recovery_bench(
    n: int = 4,
    commands: int = 500,
    checkpoint_interval: int = 25,
    keyspace: int = 16,
    value_bytes: int = 256,
    seed: int = 2,
) -> dict:
    """Crash replica n-1, keep the group busy, restart it, measure."""
    config = GroupConfig(n, checkpoint_interval=checkpoint_interval)
    sim = LanSimulation(config=config, seed=seed)
    stores, managers = [], []
    for stack in sim.stacks:
        store = ReplicatedKvStore(stack.create("ab", ("kv",)))
        managers.append(RecoveryManager(stack, store.rsm))
        stores.append(store)
    victim = n - 1
    live = list(range(n - 1))

    replay_bytes = 0

    def submit(pid: int, index: int) -> None:
        nonlocal replay_bytes
        command = KvCommand.put(
            f"k{index % keyspace}", index.to_bytes(4, "big") * (value_bytes // 4)
        )
        replay_bytes += len(command.encode())
        stores[pid]._rsm.submit(command)

    def drive_until(predicate, budget_s=600.0):
        outcome = sim.run(until=predicate, max_time=sim.now + budget_s)
        if not predicate():
            raise RuntimeError(f"simulation stalled ({outcome})")

    # Warm-up with everyone present, then crash the victim and keep
    # the group busy until *commands* total deliveries.
    warmup = min(2 * checkpoint_interval, commands // 2)
    for index in range(warmup):
        submit(index % n, index)
    drive_until(lambda: all(m.position >= warmup for m in managers))
    sim.fault_plan.crashed[victim] = sim.now
    for index in range(warmup, commands):
        submit(live[index % len(live)], index)
    drive_until(
        lambda: all(managers[pid].position >= commands for pid in live)
    )
    # Let checkpoint attestations settle so the latest one is stable.
    drive_until(
        lambda: all(
            managers[pid].stable_seq
            >= commands - (commands % checkpoint_interval)
            for pid in live
        )
    )

    # Restart from nothing.
    stack = sim.restart_process(victim)
    store = ReplicatedKvStore(stack.create("ab", ("kv",)))
    manager = RecoveryManager(stack, store.rsm, recovering=True)
    ticker = sim.loop.schedule_every(0.01, manager.poke)
    restarted_at = sim.now
    drive_until(lambda: manager.phase == PHASE_LIVE)
    stores[victim], managers[victim] = store, manager
    drive_until(
        lambda: len({s.state_digest() for s in stores}) == 1
        and len({m.position for m in managers}) == 1
    )
    ticker.cancel()

    transfer = manager.stats.state_bytes_received
    return {
        "n": n,
        "commands": commands,
        "checkpoint_interval": checkpoint_interval,
        "rejoin_s": manager.stats.rejoin_time_s,
        "converged_s": sim.now - restarted_at,
        "transfer_bytes": transfer,
        "replay_bytes": replay_bytes,
        "transfer_fraction": transfer / replay_bytes,
        "snapshots_installed": manager.stats.snapshots_installed,
        "suffix_entries": manager.stats.suffix_entries_applied,
        "stable_seq": manager.stable_seq,
    }


def check_budget(result: dict) -> None:
    assert result["snapshots_installed"] >= 1, result
    assert result["rejoin_s"] is not None and result["rejoin_s"] > 0, result
    assert result["transfer_fraction"] < TRANSFER_BUDGET, (
        f"state transfer moved {result['transfer_fraction']:.1%} of the "
        f"full-replay bytes (budget {TRANSFER_BUDGET:.0%}): {result}"
    )


def test_recovery_transfer_n4():
    check_budget(run_recovery_bench(n=4, commands=500, checkpoint_interval=25))


def test_recovery_transfer_n7():
    check_budget(run_recovery_bench(n=7, commands=500, checkpoint_interval=25))


def test_recovery_transfer_smoke():
    check_budget(run_recovery_bench(n=4, commands=240, checkpoint_interval=16))


def _report(result: dict) -> None:
    print(
        f"n={result['n']}  commands={result['commands']}  "
        f"interval={result['checkpoint_interval']}\n"
        f"  time-to-rejoin     {result['rejoin_s'] * 1e3:8.1f} ms (virtual)\n"
        f"  time-to-converge   {result['converged_s'] * 1e3:8.1f} ms (virtual)\n"
        f"  transfer bytes     {result['transfer_bytes']:8d}\n"
        f"  full-replay bytes  {result['replay_bytes']:8d}\n"
        f"  transfer fraction  {result['transfer_fraction']:8.1%}  "
        f"(budget {TRANSFER_BUDGET:.0%})\n"
        f"  stable checkpoint  {result['stable_seq']:8d}  "
        f"suffix entries {result['suffix_entries']}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single fast n=4 run (CI); default sweeps n=4 and n=7",
    )
    args = parser.parse_args(argv)
    runs = (
        [dict(n=4, commands=240, checkpoint_interval=16)]
        if args.smoke
        else [
            dict(n=4, commands=500, checkpoint_interval=25),
            dict(n=7, commands=500, checkpoint_interval=25),
        ]
    )
    for params in runs:
        result = run_recovery_bench(**params)
        _report(result)
        check_budget(result)
    print("recovery bench: all transfer budgets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
