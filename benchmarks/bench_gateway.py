"""The client gateway under open-loop load: goodput, tails, write safety.

Unlike the simulation benchmarks in this directory, this drives the real
asyncio gateway on a real 4-replica localhost TCP group: a pool of
concurrent client connections (>= 1000 in the full run) submits a seeded
Poisson arrival schedule through :mod:`repro.gateway.loadgen`, and the
run is judged on three things:

1. **write safety** -- every acknowledged operation's atomic-broadcast
   id appears *exactly once* in the replicated log: zero acknowledged
   writes lost, zero duplicated;
2. **tails** -- client-observed p50/p95/p99 latency, read straight from
   the :mod:`repro.obs` histograms the load generator records into;
3. **goodput** -- acknowledged ops/sec under the open-loop schedule
   (retry-afters from admission control are reported, not hidden).

Run standalone (``python benchmarks/bench_gateway.py [--smoke]``) or
through pytest (``pytest benchmarks/bench_gateway.py``).  The committed
trajectory entry comes from ``python -m repro.perf --area gateway --out
BENCH_gateway.json``, which reuses this workload at a fixed size.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.gateway.loadgen import LoadProfile, run_load
from repro.gateway.server import ClientGateway, GatewayServices
from repro.obs.metrics import MetricsRegistry
from repro.transport.tcp import PeerAddress, RitasNode

#: The full run's session floor (the PR's acceptance bar).
FULL_SESSIONS = 1000


async def _run_gateway_load(profile: LoadProfile, *, timeout_s: float = 600.0) -> dict:
    """One load run against a fresh 4-replica group; returns the verdict."""
    config = GroupConfig(4)
    dealer = TrustedDealer(4, seed=b"bench-gateway")
    blank = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
    nodes = [
        RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=23)
        for pid in range(4)
    ]
    for node in nodes:
        await node.listen()
    addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
    for node in nodes:
        node.set_peer_addresses(addresses)
    for node in nodes:
        await node.connect()
    services = [GatewayServices.attach(node) for node in nodes]
    gateway = ClientGateway(nodes[0], services[0], max_sessions=2 * profile.sessions)
    try:
        port = await gateway.listen()
        registry = MetricsRegistry(const_labels={"component": "loadgen"})
        report = await asyncio.wait_for(
            run_load("127.0.0.1", port, profile, registry=registry),
            timeout=timeout_s,
        )
        # The write-safety audit: acked ids vs the replicated log.
        applied_ids = [d.msg_id for d, _ in services[0].kv.rsm.applied]
        applied_set = set(applied_ids)
        assert len(applied_set) == len(applied_ids), "duplicated apply in the log"
        lost = [a for a in report.acked_ids if tuple(a) not in applied_set]
        duplicated = len(report.acked_ids) - len(set(report.acked_ids))
        return {
            "report": report,
            "lost_acked_writes": len(lost),
            "duplicated_acked_writes": duplicated,
            "sessions": profile.sessions,
        }
    finally:
        await gateway.close()
        for node in nodes:
            await node.close()


def run_bench(profile: LoadProfile, *, timeout_s: float = 600.0) -> dict:
    return asyncio.run(_run_gateway_load(profile, timeout_s=timeout_s))


def smoke_profile() -> LoadProfile:
    return LoadProfile(
        sessions=50, rate=400.0, ops=200, read_fraction=0.5, seed=9
    )


def full_profile() -> LoadProfile:
    return LoadProfile(
        sessions=FULL_SESSIONS, rate=600.0, ops=1500, read_fraction=0.5, seed=9
    )


def _verdict(outcome: dict) -> int:
    report = outcome["report"]
    print(report.summary())
    print(
        f"  sessions    {outcome['sessions']:10d}\n"
        f"  acked ids   {len(report.acked_ids):10d}\n"
        f"  lost        {outcome['lost_acked_writes']:10d}\n"
        f"  duplicated  {outcome['duplicated_acked_writes']:10d}"
    )
    ok = (
        outcome["lost_acked_writes"] == 0
        and outcome["duplicated_acked_writes"] == 0
        and report.errors == 0
    )
    print("write safety: " + ("OK" if ok else "VIOLATED"))
    return 0 if ok else 1


def test_gateway_load_smoke():
    """Pytest entry: the smoke-sized run upholds write safety."""
    outcome = run_bench(smoke_profile(), timeout_s=300.0)
    report = outcome["report"]
    assert outcome["lost_acked_writes"] == 0
    assert outcome["duplicated_acked_writes"] == 0
    assert report.errors == 0
    assert report.timeouts == 0
    assert report.ok > 0
    assert report.latency_p99_s >= report.latency_p50_s > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (50 sessions) instead of the full 1000",
    )
    args = parser.parse_args(argv)
    profile = smoke_profile() if args.smoke else full_profile()
    print(
        f"gateway load: {profile.sessions} sessions, {profile.ops} ops "
        f"at {profile.rate:.0f}/s (seed {profile.seed})"
    )
    return _verdict(run_bench(profile))


if __name__ == "__main__":
    sys.exit(main())
