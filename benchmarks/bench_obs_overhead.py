"""Observability overhead budget: metrics must be (nearly) free when off.

The ``repro.obs`` contract is the ``NULL_TRACER`` one: a disabled
registry costs one attribute load and a branch per instrumentation
site, so an uninstrumented ("seed") build and a disabled-metrics build
run the same failure-free n=4 burst within noise.  CI cannot run the
seed build, so the budget is checked from first principles:

1. time the n=4 failure-free burst with metrics disabled (that IS the
   seed code path plus the guards);
2. micro-benchmark one disabled guard (``if registry.enabled:`` against
   :data:`~repro.obs.metrics.NULL_REGISTRY`);
3. count the instrumentation events an *enabled* run of the same burst
   records -- every one of them is one guard the disabled run branched
   over -- and pad the count 4x for guards that don't record a metric
   (per-frame checks, gauge samples);
4. assert ``guards x guard_cost < 3%`` of the disabled run's wall time.

This bounds exactly the quantity the acceptance bar names -- the delta
between seed and disabled-metrics builds -- without the machine-to-
machine flakiness of comparing two absolute wall-clock measurements.
The enabled-run slowdown is also reported (informationally; enabling
metrics is allowed to cost real time).

Run standalone (``python benchmarks/bench_obs_overhead.py [--smoke]``)
or through pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.atomic_burst import run_burst
from repro.obs.metrics import NULL_REGISTRY, Histogram
from repro.net.network import LanSimulation

#: Maximum tolerated disabled-metrics overhead vs the seed build.
OVERHEAD_BUDGET = 0.03

#: Safety factor: guards executed per instrumentation event recorded
#: (covers sites that check ``enabled`` without recording anything).
GUARD_PAD = 4


def _time_burst(k: int, metrics: bool, repeats: int) -> float:
    """Best-of-*repeats* wall time of one failure-free n=4 burst."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_burst(k, 100, "failure-free", seed=2, metrics=metrics)
        best = min(best, time.perf_counter() - start)
    return best


def _guard_cost_s(iterations: int = 1_000_000) -> float:
    """Seconds per disabled-metrics guard (attribute load + branch)."""
    registry = NULL_REGISTRY
    sink = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if registry.enabled:
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / iterations


def _count_instrumentation_events(k: int) -> int:
    """Metric-recording events in one enabled run of the same burst."""
    sim = LanSimulation(n=4, seed=2)
    registries = sim.enable_metrics()
    for pid in sim.config.process_ids:
        sim.stacks[pid].create("ab", ("bench",))
    for pid in sim.config.process_ids:
        ab = sim.stacks[pid].instance_at(("bench",))
        with sim.stacks[pid].coalesce():
            for _ in range(k // 4):
                ab.broadcast(bytes(100))
    observer = sim.stacks[0].instance_at(("bench",))
    sim.run(until=lambda: observer.delivered_count >= k, max_time=300.0)
    sim.sample_metrics()
    events = 0
    for registry in registries:
        for metric in registry.metrics():
            if isinstance(metric, Histogram):
                events += metric.count
            else:
                events += max(1, int(metric.value))
    return events


def run_overhead_bench(k: int = 32, repeats: int = 3) -> dict:
    disabled_s = _time_burst(k, metrics=False, repeats=repeats)
    enabled_s = _time_burst(k, metrics=True, repeats=repeats)
    guard_s = _guard_cost_s()
    events = _count_instrumentation_events(k)
    guards = events * GUARD_PAD
    overhead_s = guards * guard_s
    return {
        "k": k,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "guard_ns": guard_s * 1e9,
        "events": events,
        "guards": guards,
        "overhead_s": overhead_s,
        "overhead_ratio": overhead_s / disabled_s,
        "enabled_ratio": enabled_s / disabled_s - 1.0,
    }


def check_budget(result: dict) -> None:
    assert result["overhead_ratio"] < OVERHEAD_BUDGET, (
        f"disabled-metrics guard overhead {result['overhead_ratio']:.2%} "
        f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )


def test_disabled_overhead_budget():
    check_budget(run_overhead_bench(k=16, repeats=2))


def _report(result: dict) -> None:
    print(
        f"n=4 failure-free burst, k={result['k']}, m=100B\n"
        f"  wall time, metrics off   {result['disabled_s'] * 1e3:10.1f} ms\n"
        f"  wall time, metrics on    {result['enabled_s'] * 1e3:10.1f} ms "
        f"({result['enabled_ratio']:+.1%}, informational)\n"
        f"  disabled guard cost      {result['guard_ns']:10.1f} ns\n"
        f"  instrumentation events   {result['events']:10d} "
        f"(x{GUARD_PAD} pad = {result['guards']} guards)\n"
        f"  est. disabled overhead   {result['overhead_s'] * 1e3:10.3f} ms "
        f"= {result['overhead_ratio']:.3%} of the run "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single fast run (CI); default uses a larger burst",
    )
    args = parser.parse_args(argv)
    result = run_overhead_bench(
        k=16 if args.smoke else 64, repeats=2 if args.smoke else 3
    )
    _report(result)
    check_budget(result)
    print("obs overhead bench: budget met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
