"""Figure 4 -- atomic broadcast latency & throughput, failure-free.

One benchmark per (message size, burst size) grid point; each attaches
the simulated burst latency and throughput, plus the paper's k=1000
anchors for that message size.  Shape assertions check the paper's
claims: latency grows ~linearly with burst size, throughput falls with
message size, bursts cost ~2 agreements.
"""

import pytest

from repro.eval.atomic_burst import run_burst
from repro.eval.paper_data import FIG4_FAILURE_FREE

from conftest import burst_ids, burst_params


@pytest.mark.parametrize(("message_bytes", "burst"), burst_params(), ids=burst_ids())
def test_fig4_burst(benchmark, message_bytes, burst):
    result = benchmark.pedantic(
        run_burst,
        args=(burst, message_bytes, "failure-free"),
        kwargs={"seed": 4},
        rounds=1,
        iterations=1,
    )
    paper = FIG4_FAILURE_FREE[message_bytes]
    benchmark.extra_info.update(
        {
            "latency_ms": round(result.latency_s * 1e3, 1),
            "throughput_msgs_s": round(result.throughput_msgs_s),
            "agreements": result.agreements,
            "paper_latency_ms_k1000": paper["latency_ms_k1000"],
            "paper_tmax_msgs_s": paper["tmax_msgs_s"],
        }
    )
    assert result.delivered == burst
    assert result.max_bc_rounds == 1  # Section 4.3, one-round consensus
    assert result.agreements <= max(3, burst // 100)


def test_fig4_latency_linear_in_burst(benchmark):
    """L_burst is (approximately) linear in k at fixed message size."""

    def sweep():
        return [run_burst(k, 10, "failure-free", seed=4).latency_s for k in (64, 256)]

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratio = large / small
    benchmark.extra_info["latency_ratio_k256_over_k64"] = round(ratio, 2)
    assert 2.0 < ratio < 8.0  # ~4x messages -> ~4x latency


def test_fig4_throughput_falls_with_size(benchmark):
    def sweep():
        return {
            m: run_burst(128, m, "failure-free", seed=4).throughput_msgs_s
            for m in (10, 1000, 10000)
        }

    tput = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["throughput_by_size"] = {
        m: round(v) for m, v in tput.items()
    }
    assert tput[10] > tput[1000] > tput[10000]
    # Paper ratio anchor: T_max(10K) is about an order of magnitude below
    # T_max(10B).
    assert tput[10] / tput[10000] > 5
