"""Table 1 -- average latency for isolated executions of each protocol.

Regenerates both columns (with IPSec / plain IP) for every layer of the
stack and attaches the paper's numbers for comparison.  The benchmark
clock measures how long the simulation takes to run; the reproduced
quantity is the *simulated* latency in ``extra_info``.
"""

import pytest

from repro.eval.paper_data import TABLE1_US
from repro.eval.stack_analysis import PROTOCOL_ORDER, measure_protocol_latency

RUNS = 3


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_table1_latency(benchmark, protocol):
    def measure():
        with_ipsec = measure_protocol_latency(
            protocol, ipsec=True, runs=RUNS, seed=1
        )
        without = measure_protocol_latency(
            protocol, ipsec=False, runs=RUNS, seed=1
        )
        return with_ipsec, without

    with_ipsec, without = benchmark.pedantic(measure, rounds=1, iterations=1)
    paper = TABLE1_US[protocol]
    benchmark.extra_info.update(
        {
            "latency_us_ipsec": round(with_ipsec * 1e6),
            "latency_us_plain": round(without * 1e6),
            "ipsec_overhead_pct": round((with_ipsec / without - 1) * 100, 1),
            "paper_us_ipsec": paper["ipsec"],
            "paper_us_plain": paper["plain"],
        }
    )
    # Shape assertions: IPSec always costs something; we are in the
    # paper's order of magnitude.
    assert with_ipsec > without
    assert paper["ipsec"] / 3 < with_ipsec * 1e6 < paper["ipsec"] * 3


def test_table1_ordering(benchmark):
    """The headline shape: EB < RB < BC < MVC < VC < AB."""

    def measure():
        return [
            measure_protocol_latency(protocol, ipsec=True, runs=1, seed=2)
            for protocol in PROTOCOL_ORDER
        ]

    latencies = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert latencies == sorted(latencies)
    benchmark.extra_info["latencies_us"] = [round(v * 1e6) for v in latencies]
