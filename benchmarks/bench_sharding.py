"""Aggregate ordered throughput of sharded multi-group RITAS.

One RITAS group totally orders every operation through one atomic-
broadcast stream, so its throughput is a ceiling no amount of client
concurrency can lift.  Sharding runs S independent groups and routes
each key to exactly one of them (:mod:`repro.shard`); with scale-out
placement -- every shard on its own n=4 hosts -- the S ordering streams
proceed in parallel on disjoint resources and aggregate delivered
msgs/s should grow near-linearly in S.

Both arms are measured in *simulated* time on the calibrated LAN_2006
model, so the numbers are deterministic given the seed and the speedup
assertion is not host-noise-sensitive.  The colocated arm (all S groups
contending for one set of n hosts) is reported as ``extra_info`` with a
deliberately loose ceiling check: stacking groups on one box is NOT the
way to scale, and the benchmark exists to show both halves of that
story.
"""

import pytest

from repro.core.wire import encode_memo_clear, fastpath_memo_clear
from repro.shard.sim import ShardedLanSimulation

#: Messages per shard per run; divisible by n=4 so every process seeds
#: an equal share of the burst.
K_PER_SHARD = 48

#: (num_shards, min_aggregate_speedup_vs_s1) -- the tentpole's
#: acceptance floor is the S=4 point.
ASSERTED_POINTS = (
    (2, 1.6),
    (4, 3.0),
)


def measure(num_shards: int, *, colocate: bool = False) -> float:
    """Aggregate ordered-delivery throughput (msgs per simulated second)
    across *num_shards* groups of n=4 under a fixed per-shard burst."""
    encode_memo_clear()
    fastpath_memo_clear()
    sharded = ShardedLanSimulation(num_shards, n=4, seed=11, colocate=colocate)
    delivered = 0
    total = num_shards * K_PER_SHARD

    def observe(_instance, _delivery) -> None:
        nonlocal delivered
        delivered += 1

    for sim in sharded.shards:
        for pid in sim.config.process_ids:
            ab = sim.stacks[pid].create("ab", ("bench",))
            if pid == 0:
                ab.on_deliver = observe
    payload = bytes(100)
    for sim in sharded.shards:
        for pid in sim.config.process_ids:
            stack = sim.stacks[pid]
            ab = stack.instance_at(("bench",))
            with stack.coalesce():
                for _ in range(K_PER_SHARD // 4):
                    ab.broadcast(payload)
    reason = sharded.run(until=lambda: delivered >= total, max_time=600.0)
    assert reason == "until", f"sharded burst stalled: {delivered}/{total}"
    return total / sharded.now


@pytest.mark.parametrize(
    ("num_shards", "floor"),
    ASSERTED_POINTS,
    ids=[f"s{s}" for s, _ in ASSERTED_POINTS],
)
def test_shard_scaling_floor(benchmark, num_shards, floor):
    """Scale-out aggregate throughput at S shards vs one shard."""

    def both():
        base = measure(1)
        scaled = measure(num_shards)
        return base, scaled

    base, scaled = benchmark.pedantic(both, rounds=1, iterations=1)
    speedup = scaled / base
    benchmark.extra_info.update(
        {
            "s1_agg_msgs_s": round(base),
            f"s{num_shards}_agg_msgs_s": round(scaled),
            "speedup": round(speedup, 2),
        }
    )
    assert speedup >= floor, (
        f"sharded aggregate throughput scaled only {speedup:.2f}x "
        f"at S={num_shards} (floor {floor}x)"
    )


def test_shard_colocate_contrast(benchmark):
    """Four groups stacked on ONE set of hosts must not masquerade as
    scale-out: their aggregate gain is bounded by shared CPU/NIC."""

    def both():
        base = measure(1)
        colocated = measure(4, colocate=True)
        return base, colocated

    base, colocated = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = colocated / base
    benchmark.extra_info.update(
        {
            "s1_agg_msgs_s": round(base),
            "s4_colocate_agg_msgs_s": round(colocated),
            "ratio": round(ratio, 2),
        }
    )
    # Colocation still overlaps protocol latency with CPU work, so some
    # gain is real -- but nowhere near the scale-out slope.
    assert ratio < 3.0, (
        f"colocated shards 'scaled' {ratio:.2f}x -- resource model broken?"
    )
