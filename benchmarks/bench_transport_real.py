"""Real wall-clock performance of the Python asyncio transport.

Unlike every other benchmark in this directory (which report *simulated*
time on the calibrated 2006 testbed model), this one measures the actual
Python implementation moving real bytes through real sockets on
localhost: an honest statement of what the sans-IO stack + asyncio
runtime deliver on modern hardware.
"""

import asyncio

import pytest

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.transport.tcp import PeerAddress, RitasNode

BURST = 40


def run_real_burst(base_port: int) -> float:
    """Atomically broadcast BURST messages across 4 localhost nodes;
    returns wall seconds from first send to last delivery everywhere."""

    async def scenario() -> float:
        config = GroupConfig(4)
        dealer = TrustedDealer(4, seed=b"bench-transport")
        addresses = [
            PeerAddress("127.0.0.1", base_port + pid) for pid in range(4)
        ]
        nodes = [
            RitasNode(config, pid, addresses, dealer.keystore_for(pid))
            for pid in range(4)
        ]
        for node in nodes:
            await node.start()
        try:
            counts = [0, 0, 0, 0]
            done = asyncio.Event()

            def on_deliver(pid):
                def handler(_instance, _delivery):
                    counts[pid] += 1
                    if all(c >= BURST for c in counts):
                        done.set()

                return handler

            for pid, node in enumerate(nodes):
                ab = node.stack.create("ab", ("bench",))
                ab.on_deliver = on_deliver(pid)
            loop = asyncio.get_event_loop()
            start = loop.time()
            for pid, node in enumerate(nodes):
                ab = node.stack.instance_at(("bench",))
                for _ in range(BURST // 4):
                    ab.broadcast(b"x" * 64)
            await asyncio.wait_for(done.wait(), timeout=60)
            return loop.time() - start
        finally:
            for node in nodes:
                await node.close()

    return asyncio.run(scenario())


def test_real_tcp_atomic_broadcast(benchmark):
    elapsed = benchmark.pedantic(run_real_burst, args=(40810,), rounds=1, iterations=1)
    throughput = BURST / elapsed
    benchmark.extra_info.update(
        {
            "wall_seconds": round(elapsed, 3),
            "real_throughput_msgs_s": round(throughput),
            "note": "4 nodes on localhost, 64-byte payloads",
        }
    )
    assert throughput > 5  # very loose floor: it must actually work
