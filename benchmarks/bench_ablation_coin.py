"""Ablation -- binary-consensus engines head to head.

RITAS uses Bracha-style rounds over a Ben-Or local coin (Section 5):
simple, dealer-light, but with an expected round count that is only
constant under friendly scheduling.  Two alternatives ride the same
:class:`~repro.core.bc_engine.BCEngine` interface: the same Bracha
engine over the Rabin-style shared coin (one coin round after any
disagreement suffices), and the Crain 2020 EST/AUX/CONF engine, whose
decide rule must *match* the shared coin (a geometric, but
schedule-independent, number of rounds).

The workload is the one that separates them: split proposals over many
adversarial-ish shuffled schedules, measured as the *decision round
distribution* per (engine, coin) pair via
:func:`repro.eval.bc_compare.rounds_distribution`.
"""

from collections import Counter

import pytest

from repro.eval.bc_compare import ENGINE_PAIRS, rounds_distribution

SAMPLES = 120


def _distribution(engine: str, coin: str) -> Counter:
    return rounds_distribution(engine, coin, samples=SAMPLES)


@pytest.mark.parametrize(
    ("engine", "coin"), ENGINE_PAIRS, ids=[f"{e}+{c}" for e, c in ENGINE_PAIRS]
)
def test_round_distribution(benchmark, engine, coin):
    dist = benchmark.pedantic(_distribution, args=(engine, coin), rounds=1, iterations=1)
    benchmark.extra_info["rounds_histogram"] = dict(sorted(dist.items()))
    assert sum(dist.values()) == SAMPLES
    # Every engine decides most samples within three rounds even when
    # proposals are split (Crain pays a coin-match round on top of
    # convergence, so its mass sits one round later than Bracha's).
    assert dist[1] + dist[2] + dist[3] > SAMPLES / 2


def test_local_coin_round_distribution(benchmark):
    dist = benchmark.pedantic(_distribution, args=("bracha", "local"), rounds=1, iterations=1)
    benchmark.extra_info["rounds_histogram"] = dict(sorted(dist.items()))
    assert sum(dist.values()) == SAMPLES
    assert dist[1] > SAMPLES / 3  # the fast path dominates even when split


def test_shared_coin_round_distribution(benchmark):
    dist = benchmark.pedantic(_distribution, args=("bracha", "shared"), rounds=1, iterations=1)
    benchmark.extra_info["rounds_histogram"] = dict(sorted(dist.items()))
    # With a shared coin, one coin flip after a disagreement suffices:
    # the tail beyond 2 rounds disappears.
    assert max(dist) <= 2


def test_shared_coin_truncates_the_tail(benchmark):
    def compare():
        return _distribution("bracha", "local"), _distribution("bracha", "shared")

    local, shared = benchmark.pedantic(compare, rounds=1, iterations=1)
    local_tail = sum(count for rounds, count in local.items() if rounds > 2)
    shared_tail = sum(count for rounds, count in shared.items() if rounds > 2)
    benchmark.extra_info.update(
        {
            "local_rounds": dict(sorted(local.items())),
            "shared_rounds": dict(sorted(shared.items())),
        }
    )
    assert shared_tail <= local_tail
    assert shared_tail == 0


def test_crain_rounds_bounded_in_expectation(benchmark):
    """Crain needs the coin to match even after convergence, so its mean
    sits near 1 + E[geometric(1/2)] -- but the distribution is identical
    on every schedule, where the local coin's tail is schedule-driven."""
    dist = benchmark.pedantic(_distribution, args=("crain", "shared"), rounds=1, iterations=1)
    benchmark.extra_info["rounds_histogram"] = dict(sorted(dist.items()))
    total = sum(dist.values())
    mean = sum(r * c for r, c in dist.items()) / total
    assert mean < 4.0
    # Geometric decay: at least three quarters decided within 4 rounds.
    assert sum(c for r, c in dist.items() if r <= 4) > total * 3 / 4
