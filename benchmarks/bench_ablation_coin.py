"""Ablation -- Ben-Or local coin versus Rabin-style shared coin.

RITAS uses a local coin (Section 5): simple, dealer-light, but with an
expected round count that is only constant under friendly scheduling.
The shared coin (predistributed by a trusted dealer) makes every
correct process see the same toss, so one coin round after any
disagreement suffices.  This ablation measures the *decision round
distribution* of binary consensus with split proposals over many
adversarial-ish schedules.
"""

import random
from collections import Counter

from repro.core.config import GroupConfig
from repro.core.stack import Stack
from repro.crypto.coin import SharedCoinDealer
from repro.crypto.keys import TrustedDealer

SAMPLES = 120


def _run_one(seed: int, shared: bool) -> int:
    """One split-proposal binary consensus on a shuffled schedule;
    returns the latest decision round among correct processes."""
    config = GroupConfig(4)
    dealer = TrustedDealer(4, seed=b"coin-ablation")
    coin_dealer = SharedCoinDealer(secret=b"shared-coin" * 3) if shared else None
    pairs: dict[tuple[int, int], list[bytes]] = {}
    stacks: list[Stack] = []
    for pid in range(4):
        stacks.append(
            Stack(
                config,
                pid,
                outbox=lambda dest, data, pid=pid: pairs.setdefault(
                    (pid, dest), []
                ).append(data),
                keystore=dealer.keystore_for(pid),
                rng=random.Random(f"{seed}/{pid}"),
                coin=coin_dealer.coin_for(pid) if coin_dealer else None,
            )
        )
    rng = random.Random(f"schedule/{seed}")
    for stack in stacks:
        stack.create("bc", ("b",))
    for pid, stack in enumerate(stacks):
        stack.instance_at(("b",)).propose(pid % 2)
    while True:
        live = [pair for pair, queue in pairs.items() if queue]
        if not live:
            break
        src, dest = rng.choice(live)
        stacks[dest].receive(src, pairs[(src, dest)].pop(0))
    return max(stack.instance_at(("b",)).decision_round for stack in stacks)


def _distribution(shared: bool) -> Counter:
    return Counter(_run_one(seed, shared) for seed in range(SAMPLES))


def test_local_coin_round_distribution(benchmark):
    dist = benchmark.pedantic(_distribution, args=(False,), rounds=1, iterations=1)
    benchmark.extra_info["rounds_histogram"] = dict(sorted(dist.items()))
    assert sum(dist.values()) == SAMPLES
    assert dist[1] > SAMPLES / 3  # the fast path dominates even when split


def test_shared_coin_round_distribution(benchmark):
    dist = benchmark.pedantic(_distribution, args=(True,), rounds=1, iterations=1)
    benchmark.extra_info["rounds_histogram"] = dict(sorted(dist.items()))
    # With a shared coin, one coin flip after a disagreement suffices:
    # the tail beyond 2 rounds disappears.
    assert max(dist) <= 2


def test_shared_coin_truncates_the_tail(benchmark):
    def compare():
        return _distribution(False), _distribution(True)

    local, shared = benchmark.pedantic(compare, rounds=1, iterations=1)
    local_tail = sum(count for rounds, count in local.items() if rounds > 2)
    shared_tail = sum(count for rounds, count in shared.items() if rounds > 2)
    benchmark.extra_info.update(
        {
            "local_rounds": dict(sorted(local.items())),
            "shared_rounds": dict(sorted(shared.items())),
        }
    )
    assert shared_tail <= local_tail
    assert shared_tail == 0
