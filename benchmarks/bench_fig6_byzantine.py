"""Figure 6 -- atomic broadcast under the Byzantine faultload.

One process permanently attacks: proposing 0 at the binary consensus
layer and pushing ⊥ at the multi-valued consensus layer (Section 4.2).
The paper's headline: "performance is basically immune from the
attacks" -- the attacker never foils a consensus, never forces a second
round, never forces a ⊥ decision.
"""

import pytest

from repro.eval.atomic_burst import run_burst
from repro.eval.paper_data import FIG6_BYZANTINE

from conftest import burst_ids, burst_params


@pytest.mark.parametrize(("message_bytes", "burst"), burst_params(), ids=burst_ids())
def test_fig6_burst(benchmark, message_bytes, burst):
    result = benchmark.pedantic(
        run_burst,
        args=(burst, message_bytes, "byzantine"),
        kwargs={"seed": 6},
        rounds=1,
        iterations=1,
    )
    paper = FIG6_BYZANTINE[message_bytes]
    benchmark.extra_info.update(
        {
            "latency_ms": round(result.latency_s * 1e3, 1),
            "throughput_msgs_s": round(result.throughput_msgs_s),
            "paper_latency_ms_k1000": paper["latency_ms_k1000"],
            "paper_tmax_msgs_s": paper["tmax_msgs_s"],
        }
    )
    assert result.delivered == burst
    # The attack never succeeds:
    assert result.max_bc_rounds == 1
    assert result.mvc_default_decisions == 0


@pytest.mark.parametrize("message_bytes", [10, 1000])
def test_fig6_immune_to_attack(benchmark, message_bytes):
    """Latency under attack within a few percent of failure-free."""

    def compare():
        free = run_burst(128, message_bytes, "failure-free", seed=6)
        byz = run_burst(128, message_bytes, "byzantine", seed=6)
        return free.latency_s, byz.latency_s

    free_latency, byz_latency = benchmark.pedantic(compare, rounds=1, iterations=1)
    overhead = byz_latency / free_latency - 1
    benchmark.extra_info["byzantine_overhead_pct"] = round(overhead * 100, 1)
    assert abs(overhead) < 0.25
