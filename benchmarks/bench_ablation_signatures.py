"""Ablation -- the signature tax: why RITAS is signature-free.

The paper's Section 5 contrasts RITAS with SINTRA, whose protocols
"depend heavily on public-key cryptography": SINTRA's measured atomic
broadcast throughput on a LAN was ~1.45 msgs/s versus RITAS's
hundreds.  The paper also quotes Reiter on Rampart: "public-key
operations still dominate the latency of reliable multicast".

This ablation prices that design choice inside our own model: the same
stack, but with a per-frame signing cost at the sender and verification
cost at the receiver, sized for ~1024-bit RSA on the testbed's 500 MHz
Pentium III (sign ~8 ms, verify ~0.4 ms).  The hashes-and-MACs stack
needs none of it.
"""

import pytest

from repro.eval.atomic_burst import run_burst
from repro.net.network import LAN_2006

#: RSA-1024 on a 500 MHz PIII (OpenSSL-era figures).
SIGN_S = 8e-3
VERIFY_S = 0.4e-3

SIGNED = LAN_2006.with_overrides(
    cpu_send_s=LAN_2006.cpu_send_s + SIGN_S,
    cpu_recv_s=LAN_2006.cpu_recv_s + VERIFY_S,
)

BURST = 64
SINTRA_AB_MSGS_S = 1.45  # paper Section 5


def test_signature_free_throughput(benchmark):
    result = benchmark.pedantic(
        run_burst, args=(BURST, 10, "failure-free"), kwargs={"seed": 14},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["throughput_msgs_s"] = round(result.throughput_msgs_s)
    assert result.throughput_msgs_s > 100


def test_signature_taxed_throughput(benchmark):
    result = benchmark.pedantic(
        run_burst,
        args=(BURST, 10, "failure-free"),
        kwargs={"seed": 14, "params": SIGNED, "max_time": 3600.0},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "throughput_msgs_s": round(result.throughput_msgs_s, 2),
            "sintra_paper_msgs_s": SINTRA_AB_MSGS_S,
        }
    )
    # With per-frame signatures the throughput collapses to the same
    # order of magnitude SINTRA reported.
    assert result.throughput_msgs_s < 40


def test_signature_tax_factor(benchmark):
    def compare():
        free = run_burst(BURST, 10, "failure-free", seed=14)
        taxed = run_burst(
            BURST, 10, "failure-free", seed=14, params=SIGNED, max_time=3600.0
        )
        return free.throughput_msgs_s, taxed.throughput_msgs_s

    free_tput, taxed_tput = benchmark.pedantic(compare, rounds=1, iterations=1)
    factor = free_tput / taxed_tput
    benchmark.extra_info.update(
        {
            "signature_free_msgs_s": round(free_tput),
            "signed_msgs_s": round(taxed_tput, 1),
            "tax_factor": round(factor, 1),
        }
    )
    assert factor > 10  # an order of magnitude, minimum
