"""Atomic broadcast throughput with and without frame coalescing.

The batching fast path coalesces same-peer frames within a flush window
into one batch channel unit, so the channel pays its fixed per-message
costs (send CPU, per-frame headers, IPSec AH) once per batch.  This
sweep measures the speedup on the calibrated LAN_2006 model.

The gain grows with how much traffic is in flight at once: larger
bursts and larger groups queue more same-peer frames while the sender
CPU is busy, so more of them merge.  Small bursts on n=4 stay mostly
latency-bound and the speedup is modest; those points are reported as
``extra_info`` without a floor assertion.
"""

import pytest

from repro.core.wire import encode_memo_clear
from repro.eval.atomic_burst import run_burst

#: Grid points asserted to clear the 1.5x bar: high-load settings where
#: coalescing has material queue depth to work with (burst >= 16).
ASSERTED_POINTS = (
    # (n, burst, message_bytes, min_speedup)
    (4, 64, 100, 1.5),
    (7, 16, 100, 1.5),
)

#: Additional informational points (no floor; latency-bound regimes).
INFO_POINTS = (
    (4, 16, 100),
    (4, 32, 100),
)


def measure(n: int, burst: int, message_bytes: int, *, batching: bool) -> float:
    """Simulated atomic-broadcast throughput (msgs/s) for one setting."""
    encode_memo_clear()  # identical cache state for both arms
    result = run_burst(
        burst, message_bytes, "failure-free", n=n, seed=7, batching=batching
    )
    assert result.delivered == burst
    return result.throughput_msgs_s


@pytest.mark.parametrize(
    ("n", "burst", "message_bytes", "floor"),
    ASSERTED_POINTS,
    ids=[f"n{n}-k{k}-m{m}" for n, k, m, _ in ASSERTED_POINTS],
)
def test_batching_speedup_floor(benchmark, n, burst, message_bytes, floor):
    def both():
        off = measure(n, burst, message_bytes, batching=False)
        on = measure(n, burst, message_bytes, batching=True)
        return off, on

    off, on = benchmark.pedantic(both, rounds=1, iterations=1)
    speedup = on / off
    benchmark.extra_info.update(
        {
            "throughput_off_msgs_s": round(off),
            "throughput_on_msgs_s": round(on),
            "speedup": round(speedup, 2),
        }
    )
    assert speedup >= floor, (
        f"batching speedup {speedup:.2f}x below {floor}x "
        f"at n={n}, k={burst}, m={message_bytes}"
    )


@pytest.mark.parametrize(
    ("n", "burst", "message_bytes"),
    INFO_POINTS,
    ids=[f"n{n}-k{k}-m{m}" for n, k, m in INFO_POINTS],
)
def test_batching_speedup_info(benchmark, n, burst, message_bytes):
    """Latency-bound points: batching must not make things worse."""

    def both():
        off = measure(n, burst, message_bytes, batching=False)
        on = measure(n, burst, message_bytes, batching=True)
        return off, on

    off, on = benchmark.pedantic(both, rounds=1, iterations=1)
    speedup = on / off
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 0.95


def test_encode_memo_hot_path(benchmark):
    """The bounded structural memo on the INIT/ECHO/READY digest path:
    repeated encodes of one payload must be much cheaper than cold
    encodes of distinct payloads."""
    import time

    from repro.core.wire import encode_value, encode_value_cached

    payload = [b"x" * 1000, 3, ["burst", 17]]

    def hot(loops=20000):
        encode_memo_clear()
        start = time.perf_counter()
        for _ in range(loops):
            encode_value_cached(payload)
        return time.perf_counter() - start

    def cold(loops=20000):
        start = time.perf_counter()
        for _ in range(loops):
            encode_value(payload)
        return time.perf_counter() - start

    def both():
        return cold(), hot()

    cold_s, hot_s = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "cold_us_per_encode": round(cold_s * 1e6 / 20000, 3),
            "hot_us_per_encode": round(hot_s * 1e6 / 20000, 3),
            "memo_speedup": round(cold_s / hot_s, 1),
        }
    )
    assert hot_s < cold_s
