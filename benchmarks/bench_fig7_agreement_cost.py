"""Figure 7 -- the relative cost of agreement versus burst size.

For each burst, counts the (reliable + echo) broadcasts executed on
behalf of the agreement task against the total, reproducing the paper's
dilution curve: ~92% at k=4 falling to a few percent at k=1000.
"""

import pytest

from repro.eval.atomic_burst import run_burst
from repro.eval.paper_data import FIG7_AGREEMENT_COST

from conftest import BURSTS


@pytest.mark.parametrize("burst", BURSTS)
def test_fig7_agreement_cost(benchmark, burst):
    result = benchmark.pedantic(
        run_burst,
        args=(burst, 10, "failure-free"),
        kwargs={"seed": 7},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "agreement_cost_pct": round(result.agreement_cost * 100, 1),
            "agreement_broadcasts": result.agreement_broadcasts,
            "total_broadcasts": result.total_broadcasts,
            "paper_anchor_k4": FIG7_AGREEMENT_COST[4],
            "paper_anchor_k1000": FIG7_AGREEMENT_COST[1000],
        }
    )
    assert 0.0 < result.agreement_cost < 1.0


def test_fig7_dilution_curve(benchmark):
    """The curve itself: monotone non-increasing, matching both anchors."""

    def sweep():
        return {
            k: run_burst(k, 10, "failure-free", seed=7).agreement_cost
            for k in (4, 16, 64, 250, 1000)
        }

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["curve_pct"] = {k: round(c * 100, 1) for k, c in costs.items()}
    values = list(costs.values())
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert costs[4] > 0.85  # paper: ~92%
    assert costs[1000] < 0.08  # paper: 2.4%
