"""Shared configuration for the benchmark suite.

Every benchmark regenerates (a slice of) one of the paper's tables or
figures on the calibrated LAN simulation.  Wall-clock time measured by
pytest-benchmark is the *simulation cost*; the paper-comparable numbers
(simulated latency, throughput, agreement cost) are attached to each
benchmark's ``extra_info`` and printed in the summary.

Set ``RITAS_BENCH_FULL=1`` to run the paper's full parameter grid
(bursts 4..1000 x message sizes 10..10K; minutes instead of seconds).
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("RITAS_BENCH_FULL", "") not in ("", "0")

#: Burst sizes for the figure sweeps.
BURSTS = (4, 8, 16, 32, 64, 125, 250, 500, 1000) if FULL else (4, 32, 250)
#: Message sizes in bytes.
SIZES = (10, 100, 1000, 10000) if FULL else (10, 1000)


@pytest.fixture(scope="session")
def grid():
    return {"bursts": BURSTS, "sizes": SIZES, "full": FULL}


def burst_params():
    """(message_bytes, burst_size) pairs for the current grid."""
    return [(m, k) for m in SIZES for k in BURSTS]


def burst_ids():
    return [f"m{m}-k{k}" for m, k in burst_params()]
