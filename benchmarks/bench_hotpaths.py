"""Microbenchmarks for the per-frame hot paths.

``python -m repro.perf`` measures the end-to-end effect of the hot-path
work (events/sec through the simulator, msgs/sec through the TCP
runtime); this file isolates the individual operations those numbers
are built from, so a regression in one layer is attributable without
re-profiling the whole stack:

- **wire**: frame encode from a cached path prefix, eager decode,
  validate-only lazy parse, and the content-addressed fast-path memo
  (cold vs hot);
- **mac**: MAC vector construction and batched column verification
  against the per-call baseline;
- **demux**: a full ``Stack.receive`` of a registered instance's frame
  -- the interned-path dispatch plus lazy mbuf construction;
- **loop**: raw simulator event throughput with no protocol work.

Run standalone (``python benchmarks/bench_hotpaths.py [--smoke]``) or
through pytest (``pytest benchmarks/bench_hotpaths.py``), which checks
only that every path works and reports rates informationally -- wall
clock assertions would be machine-dependent noise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.core.config import GroupConfig
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.wire import (
    decode_frame_ex,
    decode_frame_tail_lazy,
    encode_frame,
    encode_frame_from_prefix,
    encode_frame_prefix,
    encode_value,
    fastpath_memo_clear,
    frame_fastpath,
)
from repro.crypto.keys import TrustedDealer
from repro.crypto.mac import mac, mac_vector, verify_mac, verify_mac_batch
from repro.net.simulator import EventLoop

#: The deep agreement path every AB round routes through.
_PATH = ("bench", "vect", 3, "mvc", "bc")
#: An agreement-shaped payload: ids, a nested vector, a 100B message.
_PAYLOAD = [7, [[0, 1], [1, 2], [2, 3], [3, 4]], bytes(100)]


def _rate(iterations: int, fn: Callable[[], None], repeats: int = 3) -> float:
    """Best-of-*repeats* operations per second of ``fn`` x *iterations*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, time.perf_counter() - start)
    return iterations / best


def bench_wire(iterations: int) -> dict[str, float]:
    prefix = encode_frame_prefix(_PATH)
    frame = encode_frame(_PATH, 1, _PAYLOAD)
    offset = 6 + len(frame_fastpath(frame)[0])

    def fastpath_cold() -> None:
        fastpath_memo_clear()
        frame_fastpath(frame)

    fastpath_memo_clear()
    frame_fastpath(frame)  # warm the memo for the hot variant
    results = {
        "encode_from_prefix": _rate(
            iterations, lambda: encode_frame_from_prefix(prefix, 1, _PAYLOAD)
        ),
        "decode_eager": _rate(iterations, lambda: decode_frame_ex(frame)),
        "decode_lazy_validate": _rate(
            iterations, lambda: decode_frame_tail_lazy(frame, offset)
        ),
        "fastpath_cold": _rate(iterations, fastpath_cold),
        "fastpath_hot": _rate(iterations, lambda: frame_fastpath(frame)),
    }
    fastpath_memo_clear()
    return results


def bench_mac(iterations: int) -> dict[str, float]:
    n = 4
    dealer = TrustedDealer(n, seed=b"bench-hotpaths")
    stores = [dealer.keystore_for(pid) for pid in range(n)]
    message = encode_value(_PAYLOAD)
    vector = mac_vector(message, stores[0])
    checks = [(stores[1].key_for(0), vector[1])] * n

    def vector_loop() -> None:
        for row in range(n):
            mac(message, stores[0].key_for(row))

    def verify_loop() -> None:
        for key, tag in checks:
            verify_mac(message, key, tag)

    return {
        "mac_vector": _rate(iterations, lambda: mac_vector(message, stores[0])),
        "mac_vector_baseline": _rate(iterations, vector_loop),
        "verify_batch": _rate(iterations, lambda: verify_mac_batch(message, checks)),
        "verify_batch_baseline": _rate(iterations, verify_loop),
    }


class _SinkBlock(ControlBlock):
    """Terminal instance: counts inputs, no protocol behavior."""

    protocol = "sink"

    def __init__(self, stack, path, parent=None, purpose=None):
        super().__init__(stack, path, parent, purpose)
        self.count = 0
        self.decoded = 0

    def input(self, mbuf: Mbuf) -> None:
        self.count += 1


def bench_demux(iterations: int) -> dict[str, float]:
    config = GroupConfig(4)
    stack = Stack(config, 0, outbox=lambda dest, data: None)
    block = _SinkBlock(stack, _PATH)
    frame = encode_frame(_PATH, 1, _PAYLOAD)
    fastpath_memo_clear()
    results = {
        "stack_receive": _rate(iterations, lambda: stack.receive(1, frame)),
    }
    assert block.count >= iterations
    fastpath_memo_clear()
    return results


def bench_loop(iterations: int) -> dict[str, float]:
    def run_once() -> None:
        loop = EventLoop()
        noop = lambda: None  # noqa: E731
        for i in range(1000):
            loop.schedule(i * 0.001, noop)
        loop.run()
        assert loop.events_processed == 1000

    repeats = max(1, iterations // 1000)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_once()
        best = min(best, time.perf_counter() - start)
    return {"events": 1000 / best}


def run_hotpath_bench(iterations: int = 20_000) -> dict[str, dict[str, float]]:
    return {
        "wire": bench_wire(iterations),
        "mac": bench_mac(max(1, iterations // 4)),
        "demux": bench_demux(iterations),
        "loop": bench_loop(iterations),
    }


# -- pytest entry points (sanity, not wall-clock gates) ----------------------


def test_hotpaths_smoke():
    report = run_hotpath_bench(iterations=200)
    for area, metrics in report.items():
        for name, rate in metrics.items():
            assert rate > 0, f"{area}.{name} produced no throughput"


def test_fastpath_memo_faster_than_cold():
    # The one *relative* claim cheap enough to gate on: a memo hit must
    # beat re-parsing the same frame.  Both sides run in-process
    # back-to-back, so machine speed cancels out.
    wire = bench_wire(2_000)
    assert wire["fastpath_hot"] > wire["fastpath_cold"]


def _report(report: dict[str, dict[str, float]]) -> None:
    for area, metrics in report.items():
        print(f"[{area}]")
        for name, rate in sorted(metrics.items()):
            print(f"  {name:28s} {rate:14,.0f} ops/s")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny iteration counts (CI)"
    )
    args = parser.parse_args(argv)
    report = run_hotpath_bench(iterations=1_000 if args.smoke else 20_000)
    _report(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
