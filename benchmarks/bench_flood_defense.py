"""Extension -- flood defense: honest throughput under a Byzantine flooder.

The paper's evaluation runs a *value-level* Byzantine process (zeros and
⊥ into consensus).  This benchmark runs a *resource-level* one: a peer
that sprays out-of-context frames at the whole group, attacking OOC
table slots and decode CPU rather than protocol values.

Both faultloads are measured with the flood defenses configured
(per-peer OOC quotas with fair eviction, bounded per-peer send queues):

- **failure-free** -- n processes, the honest members atomically
  broadcast a fixed command load;
- **flooded** -- same load, but one process runs the ``ooc-flood``
  strategy, accompanying every broadcast and child event with a burst
  of frames for instances that will never exist.

Three properties are asserted (the PR's acceptance bars):

1. honest AB throughput under the flood stays >= 60% of failure-free;
2. no honest process ever has an *honest* parked message evicted from
   its OOC table (fair eviction churns only the flooder's entries);
3. peak per-process parked/queued frames stay under the configured
   bounds (``ooc_capacity`` and ``send_queue_max_frames``).

Run standalone (``python benchmarks/bench_flood_defense.py [--smoke]``)
or through pytest (``pytest benchmarks/bench_flood_defense.py``).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import GroupConfig
from repro.net.faults import FaultPlan
from repro.net.network import LanSimulation

#: Minimum fraction of failure-free throughput the flooded run must keep.
THROUGHPUT_FLOOR = 0.60


def _run_once(
    config: GroupConfig,
    seed: int,
    commands: int,
    honest: list[int],
    fault_plan: FaultPlan,
) -> dict:
    """One simulated run; returns timing and per-stack flood counters."""
    sim = LanSimulation(config=config, seed=seed, fault_plan=fault_plan)
    delivered = [0] * config.n
    sessions = []
    for pid, stack in enumerate(sim.stacks):
        ab = stack.create("ab", ("ab",))

        def on_deliver(_instance, _delivery, pid=pid):
            delivered[pid] += 1

        ab.on_deliver = on_deliver
        sessions.append(ab)

    payload = b"x" * 64
    for index in range(commands):
        sessions[honest[index % len(honest)]].broadcast(payload)

    done = lambda: all(delivered[pid] >= commands for pid in honest)  # noqa: E731
    outcome = sim.run(until=done, max_time=600.0)
    if not done():
        raise RuntimeError(f"simulation stalled ({outcome}): delivered={delivered}")

    honest_stacks = [sim.stacks[pid] for pid in honest]
    flooder_ids = sorted(fault_plan.byzantine)
    return {
        "elapsed_s": sim.now,
        "throughput": commands / sim.now,
        "delivered": [delivered[pid] for pid in honest],
        # Evictions on honest stacks, attributed to honest senders: the
        # fair-eviction guarantee says this stays zero under the flood.
        "honest_evictions": sum(
            count
            for stack in honest_stacks
            for src, count in stack.ooc.evictions_by_src.items()
            if src in honest
        ),
        "flooder_evictions": sum(
            count
            for stack in honest_stacks
            for src, count in stack.ooc.evictions_by_src.items()
            if src not in honest
        ),
        "peak_ooc_frames": max(stack.ooc.peak_size for stack in honest_stacks),
        "peak_ooc_bytes": max(stack.ooc.peak_bytes for stack in honest_stacks),
        "peak_link_queue_frames": sim.peak_link_queue_frames,
        "link_frames_shed": sim.link_frames_shed,
        "flooder_score": (
            min(
                stack.ledger.score(flooder_ids[0]) for stack in honest_stacks
            )
            if flooder_ids
            else 0.0
        ),
        "quota_evictions": sum(
            stack.stats.ooc_quota_evictions for stack in honest_stacks
        ),
    }


def run_flood_bench(
    n: int = 4,
    commands: int = 150,
    seed: int = 3,
    strategy: str = "ooc-flood",
    ooc_capacity: int = 256,
    ooc_peer_quota: int = 64,
    send_queue_max_frames: int = 4096,
) -> dict:
    """Measure failure-free vs. flooded honest throughput at group size *n*."""
    config = GroupConfig(
        n,
        ooc_capacity=ooc_capacity,
        ooc_peer_quota=ooc_peer_quota,
        send_queue_max_frames=send_queue_max_frames,
    )
    flooder = n - 1
    honest = [pid for pid in range(n) if pid != flooder]

    baseline = _run_once(config, seed, commands, honest, FaultPlan.failure_free())
    flooded = _run_once(
        config, seed, commands, honest, FaultPlan.with_byzantine(flooder, strategy)
    )

    return {
        "n": n,
        "commands": commands,
        "strategy": strategy,
        "ooc_capacity": ooc_capacity,
        "ooc_peer_quota": ooc_peer_quota,
        "send_queue_max_frames": send_queue_max_frames,
        "baseline": baseline,
        "flooded": flooded,
        "throughput_ratio": flooded["throughput"] / baseline["throughput"],
    }


def check_budget(result: dict) -> None:
    flooded = result["flooded"]
    assert result["throughput_ratio"] >= THROUGHPUT_FLOOR, (
        f"flooded honest throughput fell to {result['throughput_ratio']:.1%} "
        f"of failure-free (floor {THROUGHPUT_FLOOR:.0%}): {result}"
    )
    assert flooded["honest_evictions"] == 0, (
        f"{flooded['honest_evictions']} honest parked messages were evicted "
        f"under the flood (must be 0): {result}"
    )
    for run_key in ("baseline", "flooded"):
        run = result[run_key]
        assert run["peak_ooc_frames"] <= result["ooc_capacity"], (run_key, result)
        assert run["peak_link_queue_frames"] <= result["send_queue_max_frames"], (
            run_key,
            result,
        )
    # The defense is observable, not just implicit: the flooder churned
    # its own quota and every honest ledger holds a positive score on it.
    assert flooded["flooder_score"] > 0, result


def test_flood_defense_n4():
    check_budget(run_flood_bench(n=4, commands=150))


def test_flood_defense_smoke():
    check_budget(run_flood_bench(n=4, commands=60))


def _report(result: dict) -> None:
    baseline, flooded = result["baseline"], result["flooded"]
    print(
        f"n={result['n']}  commands={result['commands']}  "
        f"strategy={result['strategy']}  "
        f"ooc={result['ooc_capacity']}/{result['ooc_peer_quota']}\n"
        f"  failure-free throughput  {baseline['throughput']:10.1f} msg/s (virtual)\n"
        f"  flooded throughput       {flooded['throughput']:10.1f} msg/s (virtual)\n"
        f"  ratio                    {result['throughput_ratio']:10.1%}  "
        f"(floor {THROUGHPUT_FLOOR:.0%})\n"
        f"  honest OOC evictions     {flooded['honest_evictions']:10d}  (must be 0)\n"
        f"  flooder OOC evictions    {flooded['flooder_evictions']:10d}\n"
        f"  peak parked frames       {flooded['peak_ooc_frames']:10d}  "
        f"(bound {result['ooc_capacity']})\n"
        f"  peak parked bytes        {flooded['peak_ooc_bytes']:10d}\n"
        f"  peak link queue frames   {flooded['peak_link_queue_frames']:10d}  "
        f"(bound {result['send_queue_max_frames']})\n"
        f"  flooder ledger score     {flooded['flooder_score']:10.2f}  (min over honest)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single fast n=4 run (CI); default runs the full n=4 load",
    )
    args = parser.parse_args(argv)
    runs = [dict(n=4, commands=60)] if args.smoke else [dict(n=4, commands=150)]
    for params in runs:
        result = run_flood_bench(**params)
        _report(result)
        check_budget(result)
    print("flood-defense bench: all budgets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
