"""Figure 5 -- atomic broadcast under the fail-stop faultload.

One process is crashed from the start; the burst is split across the
n-1 live senders.  The paper's headline: performance is *better* than
failure-free, because a silent process means less contention.
"""

import pytest

from repro.eval.atomic_burst import run_burst
from repro.eval.paper_data import FIG5_FAIL_STOP

from conftest import burst_ids, burst_params


@pytest.mark.parametrize(("message_bytes", "burst"), burst_params(), ids=burst_ids())
def test_fig5_burst(benchmark, message_bytes, burst):
    result = benchmark.pedantic(
        run_burst,
        args=(burst, message_bytes, "fail-stop"),
        kwargs={"seed": 5},
        rounds=1,
        iterations=1,
    )
    paper = FIG5_FAIL_STOP[message_bytes]
    benchmark.extra_info.update(
        {
            "latency_ms": round(result.latency_s * 1e3, 1),
            "throughput_msgs_s": round(result.throughput_msgs_s),
            "paper_latency_ms_k1000": paper["latency_ms_k1000"],
            "paper_tmax_msgs_s": paper["tmax_msgs_s"],
        }
    )
    assert result.delivered == burst
    assert result.max_bc_rounds == 1


@pytest.mark.parametrize("message_bytes", [10, 1000])
def test_fig5_faster_than_failure_free(benchmark, message_bytes):
    """The crash *speeds up* the protocol (Section 4.3)."""

    def compare():
        free = run_burst(128, message_bytes, "failure-free", seed=5)
        stop = run_burst(128, message_bytes, "fail-stop", seed=5)
        return free.latency_s, stop.latency_s

    free_latency, stop_latency = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(free_latency / stop_latency, 2)
    assert stop_latency < free_latency
