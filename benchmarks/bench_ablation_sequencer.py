"""Ablation -- leader-free (RITAS) versus leader-based (Rampart-style)
atomic broadcast.

Quantifies the design point Section 5 argues qualitatively: the
sequencer baseline is cheaper per message when its leader is honest,
but a crashed leader halts it forever, while RITAS keeps delivering
(and, per Figure 5, even gets faster).
"""

import pytest

from repro.baselines import with_sequencer
from repro.core.stack import ProtocolFactory
from repro.net.faults import FaultPlan
from repro.net.network import LanSimulation


def run_sequencer_burst(burst, crashed_leader=False, seed=8):
    factory = with_sequencer(ProtocolFactory.default())
    plan = FaultPlan.fail_stop(0) if crashed_leader else FaultPlan.failure_free()
    sim = LanSimulation(n=4, seed=seed, fault_plan=plan, base_factory=factory)
    delivered = []
    live = sim.correct_ids()
    for pid in live:
        ab = sim.stacks[pid].create("seq-ab", ("s",), leader=0)
        if pid == live[-1]:
            ab.on_deliver = lambda _i, d: delivered.append(sim.now)
    per_sender = burst // len(live)
    for pid in live:
        for _ in range(per_sender):
            sim.stacks[pid].instance_at(("s",)).broadcast(bytes(10))
    target = per_sender * len(live)
    reason = sim.run(until=lambda: len(delivered) >= target, max_time=30.0)
    return reason, delivered, sim


def run_ritas_burst(burst, crashed=False, seed=8):
    plan = FaultPlan.fail_stop(0) if crashed else FaultPlan.failure_free()
    sim = LanSimulation(n=4, seed=seed, fault_plan=plan)
    delivered = []
    live = sim.correct_ids()
    for pid in live:
        ab = sim.stacks[pid].create("ab", ("a",))
        if pid == live[-1]:
            ab.on_deliver = lambda _i, d: delivered.append(sim.now)
    per_sender = burst // len(live)
    for pid in live:
        for _ in range(per_sender):
            sim.stacks[pid].instance_at(("a",)).broadcast(bytes(10))
    target = per_sender * len(live)
    reason = sim.run(until=lambda: len(delivered) >= target, max_time=120.0)
    return reason, delivered, sim


BURST = 64


def test_sequencer_cheaper_when_leader_honest(benchmark):
    def compare():
        _, seq_times, _ = run_sequencer_burst(BURST)
        _, ritas_times, _ = run_ritas_burst(BURST)
        return seq_times[-1], ritas_times[-1]

    seq_latency, ritas_latency = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "sequencer_latency_ms": round(seq_latency * 1e3, 1),
            "ritas_latency_ms": round(ritas_latency * 1e3, 1),
            "ritas_over_sequencer": round(ritas_latency / seq_latency, 2),
        }
    )
    assert seq_latency < ritas_latency


def test_sequencer_dies_with_leader_ritas_does_not(benchmark):
    def compare():
        seq_reason, seq_times, _ = run_sequencer_burst(BURST, crashed_leader=True)
        ritas_reason, ritas_times, _ = run_ritas_burst(BURST, crashed=True)
        return seq_reason, len(seq_times), ritas_reason, len(ritas_times)

    seq_reason, seq_count, ritas_reason, ritas_count = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "sequencer_delivered": seq_count,
            "ritas_delivered": ritas_count,
        }
    )
    assert seq_count == 0  # total liveness loss
    assert ritas_reason == "until"  # RITAS finished the burst
    assert ritas_count >= BURST // 4 * 3
