"""Ablation -- echo broadcast versus reliable broadcast in the VECT phase
of multi-valued consensus.

Section 2.5: "The main differences from the original protocol are the
use of echo broadcast instead of reliable broadcast at a specific
point".  This ablation quantifies the optimization: latency and frame
count of one MVC instance with each channel.
"""

import pytest

from repro.net.network import LanSimulation


def run_mvc(vect_channel: str, seed: int = 12) -> tuple[float, int]:
    """Returns (decision latency seconds, frames on the wire)."""
    sim = LanSimulation(n=4, seed=seed)
    done = [None] * 4
    for pid, stack in enumerate(sim.stacks):
        mvc = stack.create("mvc", ("m",), vect_channel=vect_channel)
        mvc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
    for stack in sim.stacks:
        stack.instance_at(("m",)).propose(b"ablation-value")
    reason = sim.run(until=lambda: all(v is not None for v in done), max_time=60)
    assert reason == "until"
    assert done == [b"ablation-value"] * 4
    return sim.now, sim.frames_delivered


@pytest.mark.parametrize("channel", ["eb", "rb"])
def test_mvc_vect_channel(benchmark, channel):
    latency, frames = benchmark.pedantic(
        run_mvc, args=(channel,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"latency_us": round(latency * 1e6), "frames": frames}
    )


def test_echo_broadcast_is_the_cheaper_vect_channel(benchmark):
    def compare():
        return run_mvc("eb"), run_mvc("rb")

    (eb_latency, eb_frames), (rb_latency, rb_frames) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "eb_latency_us": round(eb_latency * 1e6),
            "rb_latency_us": round(rb_latency * 1e6),
            "eb_frames": eb_frames,
            "rb_frames": rb_frames,
        }
    )
    assert eb_frames < rb_frames  # 3n vs ~2n^2 frames in the VECT phase
    assert eb_latency <= rb_latency * 1.05
