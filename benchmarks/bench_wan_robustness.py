"""Extension -- the stack outside the symmetric LAN.

Section 4.2 credits the one-round decisions to the LAN's symmetry and
cautions that "in a more asymmetrical environment, like a WAN, it is
not guaranteed that this result can be reproduced".  This benchmark
builds that environment with the link-matrix API
(:func:`repro.net.links.zoned_matrix`): two zones of two replicas with
cheap intra-zone links and expensive, jittered cross-zone links -- real
geo-replication shape, not just symmetric noise -- and records what
actually happens: correctness is timing-independent (it must and does
hold), latency degrades with the cross-zone distance, and whether the
one-round / two-agreement fast path survives is *measured* and pinned
into ``extra_info`` (``fast_path_survived``), not assumed.
"""

import pytest

from repro.core.stats import StackStats
from repro.net.links import zoned_matrix
from repro.net.network import LanSimulation, WAN_EMULATED

BURST = 32
ZONES = ((0, 1), (2, 3))


def _run(sim: LanSimulation) -> dict:
    delivered = []
    for pid in range(4):
        ab = sim.stacks[pid].create("ab", ("w",))
        if pid == 0:
            ab.on_deliver = lambda _i, d: delivered.append(sim.now)
    for pid in range(4):
        for _ in range(BURST // 4):
            sim.stacks[pid].instance_at(("w",)).broadcast(bytes(10))
    reason = sim.run(until=lambda: len(delivered) >= BURST, max_time=600)
    assert reason == "until"
    combined = StackStats()
    for pid in range(4):
        combined.merge(sim.stacks[pid].stats)
    ab0 = sim.stacks[0].instance_at(("w",))
    bc_max_rounds = combined.max_rounds("bc")
    mvc_defaults = combined.decisions.get("mvc-default", 0)
    return {
        "latency_ms": round(delivered[-1] * 1e3, 1),
        "agreements": ab0.round,
        "bc_max_rounds": bc_max_rounds,
        "mvc_defaults": mvc_defaults,
        # The paper's LAN fast path: every binary consensus decides in
        # one round and no multi-valued consensus falls to the default.
        "fast_path_survived": bc_max_rounds <= 1 and mvc_defaults == 0,
    }


def run_zoned(inter_ms: float, *, jitter_ms: float = 2.0, seed: int = 13, params=None):
    """One AB burst across a two-site deployment: ``inter_ms`` one-way
    cross-zone latency with uniform jitter on top, LAN-scale links
    inside each zone."""
    kwargs = {"params": params} if params is not None else {}
    link = zoned_matrix(
        ZONES, intra_s=2e-4, inter_s=inter_ms / 1e3, jitter_s=jitter_ms / 1e3
    )
    sim = LanSimulation(n=4, seed=seed, link_model=link, **kwargs)
    return _run(sim)


@pytest.mark.parametrize("inter_ms", [0, 5, 20])
def test_zone_distance_degrades_latency_not_correctness(benchmark, inter_ms):
    result = benchmark.pedantic(
        run_zoned, args=(inter_ms,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    # Correctness and termination are unconditional.
    assert result["agreements"] >= 1


def test_latency_grows_with_zone_distance(benchmark):
    def sweep():
        return [run_zoned(inter_ms)["latency_ms"] for inter_ms in (0.0, 5.0, 20.0)]

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["latency_ms_by_inter_ms"] = [round(v) for v in latencies]
    assert latencies[0] < latencies[1] < latencies[2]


def test_wan_preset_end_to_end(benchmark):
    """The WAN parameter preset (20 ms hops) over the 20 ms zone matrix:
    the stack still works; the fast path's survival is recorded in
    extra_info."""
    result = benchmark.pedantic(
        run_zoned,
        args=(20.0,),
        kwargs={"params": WAN_EMULATED},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(result)
    assert result["mvc_defaults"] >= 0  # recorded, not constrained
