"""Extension -- the stack outside the symmetric LAN.

Section 4.2 credits the one-round decisions to the LAN's symmetry and
cautions that "in a more asymmetrical environment, like a WAN, it is
not guaranteed that this result can be reproduced".  This benchmark
injects heavy per-frame jitter and long propagation delays and records
what actually happens: correctness is timing-independent (it must and
does hold), latency degrades with jitter, and whether the one-round /
two-agreement fast path survives is *measured*, not assumed.
"""

import pytest

from repro.core.stats import StackStats
from repro.net.network import LanSimulation, WAN_EMULATED

BURST = 32


def run_jittered(jitter_s: float, seed: int = 13, params=None):
    kwargs = {"params": params} if params is not None else {}
    sim = LanSimulation(n=4, seed=seed, jitter_s=jitter_s, **kwargs)
    delivered = []
    for pid in range(4):
        ab = sim.stacks[pid].create("ab", ("w",))
        if pid == 0:
            ab.on_deliver = lambda _i, d: delivered.append(sim.now)
    for pid in range(4):
        for _ in range(BURST // 4):
            sim.stacks[pid].instance_at(("w",)).broadcast(bytes(10))
    reason = sim.run(until=lambda: len(delivered) >= BURST, max_time=600)
    assert reason == "until"
    combined = StackStats()
    for pid in range(4):
        combined.merge(sim.stacks[pid].stats)
    ab0 = sim.stacks[0].instance_at(("w",))
    return {
        "latency_ms": delivered[-1] * 1e3,
        "agreements": ab0.round,
        "bc_max_rounds": combined.max_rounds("bc"),
        "mvc_defaults": combined.decisions.get("mvc-default", 0),
    }


@pytest.mark.parametrize("jitter_ms", [0, 5, 20])
def test_jitter_degrades_latency_not_correctness(benchmark, jitter_ms):
    result = benchmark.pedantic(
        run_jittered, args=(jitter_ms / 1e3,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {key: round(value, 1) for key, value in result.items()}
    )
    # Correctness and termination are unconditional.
    assert result["agreements"] >= 1


def test_latency_grows_with_jitter(benchmark):
    def sweep():
        return [run_jittered(j)["latency_ms"] for j in (0.0, 0.005, 0.02)]

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["latency_ms_by_jitter"] = [round(v) for v in latencies]
    assert latencies[0] < latencies[1] < latencies[2]


def test_wan_preset_end_to_end(benchmark):
    """The WAN parameter preset (20 ms hops): the stack still works; the
    fast path's survival is recorded in extra_info."""
    result = benchmark.pedantic(
        run_jittered,
        args=(0.01,),
        kwargs={"params": WAN_EMULATED},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {key: round(value, 1) for key, value in result.items()}
    )
    assert result["mvc_defaults"] >= 0  # recorded, not constrained
