"""Concrete adversarial protocol variants.

Each class subclasses an honest protocol and overrides only its
*adversary hooks* -- the honest message flow (thresholds, child
instances, bookkeeping) is inherited, which is exactly what a smart
attacker does: stay syntactically correct so messages pass validation,
while steering values.
"""

from __future__ import annotations

from typing import Any

from repro.core.atomic_broadcast import AtomicBroadcast
from repro.core.binary_consensus import BinaryConsensus
from repro.core.echo_broadcast import EchoBroadcast
from repro.core.mbuf import Mbuf
from repro.core.multivalued_consensus import MultiValuedConsensus
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.stack import ControlBlock, ProtocolFactory
from repro.crypto.hashing import HASH_LEN


def _always_zero_step(self: Any, round_number: int, step: int, computed: Any) -> Any:
    return 0


def _random_bit_step(self: Any, round_number: int, step: int, computed: Any) -> Any:
    return self.stack.rng.getrandbits(1)


def _swallow_propose(self: Any, value: int) -> None:
    self.proposal = value  # swallow: never broadcast, never answer


#: (tag, honest base class) -> derived adversarial variant.  The bc
#: attacks override only the engine-agnostic adversary hooks
#: (``_step_value`` / ``propose``), so the same attack applies to any
#: registered engine -- the faultloads below derive the variant from
#: whatever class the target factory resolves for "bc".  Memoized so one
#: (tag, base) pair always yields the *same* class object (faultloads
#: may be applied once per process).
_BC_VARIANTS: dict[tuple[str, type], type] = {}

_BC_ATTACKS: dict[str, dict[str, Any]] = {
    "always-zero": {"_step_value": _always_zero_step},
    "random-bit": {"_step_value": _random_bit_step},
    "crash-on-propose": {"propose": _swallow_propose},
}


def bc_variant(tag: str, base: type) -> type:
    """The *tag* attack grafted onto binary-consensus engine *base*."""
    key = (tag, base)
    variant = _BC_VARIANTS.get(key)
    if variant is None:
        variant = type(
            f"{tag.title().replace('-', '')}{base.__name__}", (base,), dict(_BC_ATTACKS[tag])
        )
        _BC_VARIANTS[key] = variant
    return variant


class AlwaysZeroBinaryConsensus(BinaryConsensus):
    """Always proposes and pushes 0, trying to impose a zero decision.

    Note that pushing 0 at *every* step would often be filtered by the
    congruence validation of correct processes; the attack stays within
    the accepted envelope whenever possible by lying only at the value
    level (the paper: "it always proposes zero").
    """

    _step_value = _always_zero_step


class RandomBitBinaryConsensus(BinaryConsensus):
    """Broadcasts random bits at every step -- pure noise injection."""

    _step_value = _random_bit_step


class CrashOnProposeBinaryConsensus(BinaryConsensus):
    """Goes mute the moment consensus starts (a targeted omission fault)."""

    propose = _swallow_propose


# Attacks on the default engine resolve to the named classes above (kept
# for importers and trace readability), not to fresh synthesized types.
_BC_VARIANTS[("always-zero", BinaryConsensus)] = AlwaysZeroBinaryConsensus
_BC_VARIANTS[("random-bit", BinaryConsensus)] = RandomBitBinaryConsensus
_BC_VARIANTS[("crash-on-propose", BinaryConsensus)] = CrashOnProposeBinaryConsensus


class DefaultValueMultiValuedConsensus(MultiValuedConsensus):
    """Pushes the default value ⊥ in both INIT and VECT (Section 4.2),
    trying to force correct processes to decide ⊥."""

    def _init_value(self, computed: Any) -> Any:
        return None

    def _vect_payload(self, value: Any, justification: list[Any]) -> list[Any]:
        return [None, None]


# -- flooding (resource-exhaustion) strategies --------------------------------
#
# The value-level attackers above stay inside the protocols' envelopes;
# these instead attack the *resources* of correct processes -- OOC table
# slots, decode CPU, bandwidth -- which is what the flood-defense layer
# (per-peer quotas, misbehavior ledger, bounded queues) exists to absorb.


class OocFlooderAtomicBroadcast(AtomicBroadcast):
    """Sprays frames for instances that will never exist.

    Every real broadcast and child event is accompanied by a burst of
    ``flood_burst`` frames to ghost paths under the AB session; correct
    receivers cannot resolve them (``accept_orphan`` refuses) and must
    park each one out-of-context.  Against the seed's global-FIFO OOC
    eviction this pushes *honest* parked messages out of the table;
    against per-sender fair eviction only the flooder's entries churn.
    """

    flood_burst = 8

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._flood_counter = 0

    def _flood(self) -> None:
        for _ in range(self.flood_burst):
            self._flood_counter += 1
            ghost = self.path + ("ghost", self._flood_counter)
            self.stack.broadcast_frame(ghost, 0, b"flood")

    def broadcast(self, payload: Any) -> Any:
        result = super().broadcast(payload)
        self._flood()
        return result

    def child_event(self, child: ControlBlock, event: Any) -> None:
        super().child_event(child, event)
        self._flood()


class DuplicateStormReliableBroadcast(ReliableBroadcast):
    """Repeats every outgoing rb frame ``storm_factor`` times.

    Duplicates are protocol-harmless (votes count once per source) but
    each copy still costs every receiver decode CPU and bandwidth -- a
    pure amplification attack on the channel.
    """

    storm_factor = 4

    def send_all(self, mtype: int, payload: Any) -> None:
        for _ in range(self.storm_factor):
            super().send_all(mtype, payload)


class BadMacEchoBroadcast(EchoBroadcast):
    """An echo-broadcast sender whose MAT columns carry garbage MACs.

    Rows are garbled as the VECTs arrive, so every column this process
    distributes (for its own broadcasts) fails the receivers' ``f + 1``
    MAC quorum: nobody delivers, and every correct receiver charges the
    sender a ``mac-failure`` in its misbehavior ledger.  Only sender-side
    state is corrupted -- the attribution rule means a corrupt *relay*
    could never pin this on an honest sender.
    """

    def _on_vect(self, mbuf: Mbuf) -> None:
        if self.me == self.sender and self._valid_vector(mbuf.payload):
            for index in range(len(mbuf.payload)):
                mbuf.payload[index] = b"\x00" * HASH_LEN
        super()._on_vect(mbuf)


def byzantine_paper_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """The exact Byzantine faultload of Section 4.2: zero at the binary
    consensus layer, ⊥ at the multi-valued consensus layer."""
    return factory.override(
        "bc", bc_variant("always-zero", factory.resolve("bc"))
    ).override("mvc", DefaultValueMultiValuedConsensus)


def random_noise_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """A noisier attacker: random bits into every binary consensus step."""
    return factory.override("bc", bc_variant("random-bit", factory.resolve("bc")))


def crash_consensus_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """An omission attacker that participates in broadcasts but never in
    consensus."""
    return factory.override("bc", bc_variant("crash-on-propose", factory.resolve("bc")))


def ooc_flood_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """A flooder spraying out-of-context frames at the whole group."""
    return factory.override("ab", OocFlooderAtomicBroadcast)


def duplicate_storm_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """An amplifier repeating every reliable-broadcast frame."""
    return factory.override("rb", DuplicateStormReliableBroadcast)


def bad_mac_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """An echo-broadcast sender distributing unverifiable MAC columns."""
    return factory.override("eb", BadMacEchoBroadcast)


#: Named faultloads, resolvable by :meth:`repro.net.faults.FaultPlan.with_byzantine`.
STRATEGIES: dict[str, Any] = {
    "paper": byzantine_paper_faultload,
    "noise": random_noise_faultload,
    "crash-consensus": crash_consensus_faultload,
    "ooc-flood": ooc_flood_faultload,
    "duplicate-storm": duplicate_storm_faultload,
    "bad-mac": bad_mac_faultload,
}
