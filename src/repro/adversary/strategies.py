"""Concrete adversarial protocol variants.

Each class subclasses an honest protocol and overrides only its
*adversary hooks* -- the honest message flow (thresholds, child
instances, bookkeeping) is inherited, which is exactly what a smart
attacker does: stay syntactically correct so messages pass validation,
while steering values.
"""

from __future__ import annotations

from typing import Any

from repro.core.binary_consensus import BinaryConsensus
from repro.core.multivalued_consensus import MultiValuedConsensus
from repro.core.stack import ProtocolFactory


class AlwaysZeroBinaryConsensus(BinaryConsensus):
    """Always proposes and pushes 0, trying to impose a zero decision.

    Note that pushing 0 at *every* step would often be filtered by the
    congruence validation of correct processes; the attack stays within
    the accepted envelope whenever possible by lying only at the value
    level (the paper: "it always proposes zero").
    """

    def _step_value(self, round_number: int, step: int, computed: Any) -> Any:
        return 0


class RandomBitBinaryConsensus(BinaryConsensus):
    """Broadcasts random bits at every step -- pure noise injection."""

    def _step_value(self, round_number: int, step: int, computed: Any) -> Any:
        return self.stack.rng.getrandbits(1)


class CrashOnProposeBinaryConsensus(BinaryConsensus):
    """Goes mute the moment consensus starts (a targeted omission fault)."""

    def propose(self, value: int) -> None:
        self.proposal = value  # swallow: never broadcast, never answer


class DefaultValueMultiValuedConsensus(MultiValuedConsensus):
    """Pushes the default value ⊥ in both INIT and VECT (Section 4.2),
    trying to force correct processes to decide ⊥."""

    def _init_value(self, computed: Any) -> Any:
        return None

    def _vect_payload(self, value: Any, justification: list[Any]) -> list[Any]:
        return [None, None]


def byzantine_paper_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """The exact Byzantine faultload of Section 4.2: zero at the binary
    consensus layer, ⊥ at the multi-valued consensus layer."""
    return factory.override("bc", AlwaysZeroBinaryConsensus).override(
        "mvc", DefaultValueMultiValuedConsensus
    )


def random_noise_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """A noisier attacker: random bits into every binary consensus step."""
    return factory.override("bc", RandomBitBinaryConsensus)


def crash_consensus_faultload(factory: ProtocolFactory) -> ProtocolFactory:
    """An omission attacker that participates in broadcasts but never in
    consensus."""
    return factory.override("bc", CrashOnProposeBinaryConsensus)
