"""Byzantine process behaviours used by the evaluation (Section 4.2).

The paper's Byzantine faultload runs one process that "permanently
tries to disrupt the protocols":

- at the **binary consensus** layer it always proposes and broadcasts
  zero, trying to impose a 0 decision (which would make the multi-valued
  consensus above it abort with ⊥);
- at the **multi-valued consensus** layer it always pushes the default
  value ⊥ in both its INIT and VECT messages, trying to force correct
  processes onto the default decision -- which, at the atomic broadcast
  layer, would waste an agreement round.

Strategies are expressed as protocol-factory transforms so a corrupt
process's stack is assembled with adversarial classes while correct
processes stay untouched (see :class:`repro.core.stack.ProtocolFactory`).
"""

from repro.adversary.strategies import (
    STRATEGIES,
    AlwaysZeroBinaryConsensus,
    BadMacEchoBroadcast,
    CrashOnProposeBinaryConsensus,
    DefaultValueMultiValuedConsensus,
    DuplicateStormReliableBroadcast,
    OocFlooderAtomicBroadcast,
    RandomBitBinaryConsensus,
    bad_mac_faultload,
    bc_variant,
    byzantine_paper_faultload,
    crash_consensus_faultload,
    duplicate_storm_faultload,
    ooc_flood_faultload,
    random_noise_faultload,
)

__all__ = [
    "STRATEGIES",
    "AlwaysZeroBinaryConsensus",
    "BadMacEchoBroadcast",
    "CrashOnProposeBinaryConsensus",
    "DefaultValueMultiValuedConsensus",
    "DuplicateStormReliableBroadcast",
    "OocFlooderAtomicBroadcast",
    "RandomBitBinaryConsensus",
    "bad_mac_faultload",
    "bc_variant",
    "byzantine_paper_faultload",
    "crash_consensus_faultload",
    "duplicate_storm_faultload",
    "ooc_flood_faultload",
    "random_noise_faultload",
]
