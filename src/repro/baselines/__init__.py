"""Baseline protocols the paper compares against (Section 5).

The paper's related work contrasts RITAS with leader-based
intrusion-tolerant systems -- Rampart orders messages through a leader
that echo-broadcasts ordering information, which makes ordering cheap
but leaves the system hostage to leader misbehaviour (detection and
removal "is very costly in terms of time and requires synchrony
assumptions").

:class:`SequencerAtomicBroadcast` reproduces that design point so the
ablation benchmarks can show both sides: lower latency than the
consensus-based protocol when the leader is correct, and a total
liveness loss when the leader crashes (where RITAS keeps delivering).
"""

from repro.baselines.sequencer import SequencerAtomicBroadcast, with_sequencer

__all__ = ["SequencerAtomicBroadcast", "with_sequencer"]
