"""A Rampart-style sequencer atomic broadcast (leader-ordered baseline).

Design, after Reiter's Rampart (Section 5 of the paper):

- a sender disseminates its message with an *echo broadcast*;
- a fixed leader assigns consecutive sequence numbers, echo-broadcasting
  one ordering record per message;
- replicas deliver messages in sequence-number order.

This is intentionally the paper's foil, not a complete system: there is
no leader-failure detection or view change, so a crashed or silent
leader halts delivery forever -- exactly the weakness the paper's
leader-free stack avoids.  The ablation benchmark
(``benchmarks/bench_ablation_sequencer.py``) measures both regimes.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.atomic_broadcast import AbDelivery
from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, ProtocolFactory, Stack
from repro.core.stats import PURPOSE_AGREEMENT, PURPOSE_PAYLOAD
from repro.core.wire import Path

MsgId = tuple[int, int]


class SequencerAtomicBroadcast(ControlBlock):
    """Leader-based total order over echo broadcast."""

    protocol = "seq-ab"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
        *,
        leader: int = 0,
        msg_window: int = 65536,
    ):
        super().__init__(stack, path, parent, purpose)
        self.leader = leader
        self._msg_window = msg_window
        self._open_msg_instances: dict[int, int] = {}
        self._next_rbid = 0
        self._received: dict[MsgId, Any] = {}
        self._next_seq_to_assign = 0  # leader only
        self._assigned: set[MsgId] = set()  # leader only
        self._order: dict[int, MsgId] = {}
        self._next_seq_to_deliver = 0
        self._delivered_count = 0
        self._delivery_queue: deque[int] = deque()

    # -- public API ---------------------------------------------------------------

    def broadcast(self, payload: Any) -> MsgId:
        rbid = self._next_rbid
        self._next_rbid += 1
        eb = self.make_child(
            "eb", ("msg", self.me, rbid), sender=self.me, purpose=PURPOSE_PAYLOAD
        )
        eb.broadcast(payload)  # type: ignore[attr-defined]
        return (self.me, rbid)

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    # -- demux ---------------------------------------------------------------------

    def accept_orphan(self, mbuf: Mbuf) -> bool:
        suffix = mbuf.path[len(self.path) :]
        if len(suffix) == 3 and suffix[0] == "msg":
            _, sender, rbid = suffix
            if (
                isinstance(sender, int)
                and isinstance(rbid, int)
                and sender in self.config.process_ids
                and rbid >= 0
                and self._open_msg_instances.get(sender, 0) < self._msg_window
            ):
                self._open_msg_instances[sender] = (
                    self._open_msg_instances.get(sender, 0) + 1
                )
                self.make_child(
                    "eb", ("msg", sender, rbid), sender=sender, purpose=PURPOSE_PAYLOAD
                )
                return True
            return False
        if len(suffix) == 2 and suffix[0] == "ord":
            seq = suffix[1]
            if isinstance(seq, int) and 0 <= seq < self._msg_window:
                self.make_child(
                    "eb", ("ord", seq), sender=self.leader, purpose=PURPOSE_AGREEMENT
                )
                return True
        return False

    def input(self, mbuf: Mbuf) -> None:
        raise ProtocolViolationError("sequencer broadcast accepts no direct frames")

    # -- events -----------------------------------------------------------------------

    def child_event(self, child: ControlBlock, event: Any) -> None:
        if self.destroyed:
            return
        kind = child.path[len(self.path)]
        if kind == "msg":
            sender, rbid = child.path[-2:]
            msg_id = (sender, rbid)
            if msg_id in self._received:
                return
            self._received[msg_id] = event
            if self.me == self.leader:
                self._assign_order(msg_id)
            self._drain()
        elif kind == "ord":
            seq = child.path[-1]
            self._on_order(seq, event)

    def _assign_order(self, msg_id: MsgId) -> None:
        if msg_id in self._assigned:
            return
        self._assigned.add(msg_id)
        seq = self._next_seq_to_assign
        self._next_seq_to_assign += 1
        eb = self.make_child(
            "eb", ("ord", seq), sender=self.me, purpose=PURPOSE_AGREEMENT
        )
        eb.broadcast([msg_id[0], msg_id[1]])  # type: ignore[attr-defined]

    def _on_order(self, seq: int, record: Any) -> None:
        if seq in self._order:
            return
        if (
            not isinstance(record, list)
            or len(record) != 2
            or not isinstance(record[0], int)
            or not isinstance(record[1], int)
            or record[0] not in self.config.process_ids
        ):
            return  # malformed ordering record from a corrupt leader
        self._order[seq] = (record[0], record[1])
        self._drain()

    def _drain(self) -> None:
        while True:
            msg_id = self._order.get(self._next_seq_to_deliver)
            if msg_id is None or msg_id not in self._received:
                return
            delivery = AbDelivery(
                sender=msg_id[0],
                rbid=msg_id[1],
                payload=self._received[msg_id],
                sequence=self._next_seq_to_deliver,
            )
            self._next_seq_to_deliver += 1
            self._delivered_count += 1
            self.deliver(delivery)


def with_sequencer(factory: ProtocolFactory) -> ProtocolFactory:
    """Register the baseline under the ``seq-ab`` kind."""
    return factory.override("seq-ab", SequencerAtomicBroadcast)
