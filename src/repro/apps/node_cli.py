"""``ritas-node`` -- run one replica of the replicated KV store.

Operator-facing entry point tying the deployment pieces together: a
group descriptor, a provisioned key file, the TCP transport, and the
replicated key-value store.  Commands arrive on stdin::

    ritas-node group.json keys/process-0.keys.json
    > put motd hello
    > get motd
    hello
    > keys
    motd
    > digest
    1f2e...
    > quit

Start one instance per key file (on the hosts the descriptor names) and
watch writes replicate.  Up to f = ⌊(n−1)/3⌋ replicas may crash or
misbehave arbitrarily.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from repro.apps.kv_store import ReplicatedKvStore
from repro.transport.bootstrap import load_session_config
from repro.transport.tcp import RitasNode

PROMPT = "> "


class NodeShell:
    """The stdin command loop around one replica."""

    def __init__(self, store: ReplicatedKvStore):
        self.store = store
        self.running = True

    def handle(self, line: str) -> str | None:
        """Execute one command line; returns the reply text."""
        parts = line.strip().split(None, 2)
        if not parts:
            return None
        command, args = parts[0].lower(), parts[1:]
        if command == "put" and len(args) == 2:
            self.store.put(args[0], args[1].encode())
            return "ok (replicating)"
        if command == "get" and len(args) == 1:
            value = self.store.get(args[0])
            return value.decode(errors="replace") if value is not None else "(nil)"
        if command in ("del", "delete") and len(args) == 1:
            self.store.delete(args[0])
            return "ok (replicating)"
        if command == "cas" and len(args) == 2:
            expected_new = args[1].split(None, 1)
            if len(expected_new) == 2:
                self.store.cas(args[0], expected_new[0].encode(), expected_new[1].encode())
                return "ok (replicating)"
        if command == "keys" and not args:
            return "\n".join(self.store.keys()) or "(empty)"
        if command == "digest" and not args:
            return self.store.state_digest().hex()
        if command == "log" and not args:
            entries = self.store.rsm.applied
            return "\n".join(
                f"#{d.sequence} from p{d.sender}: {c.op} {c.args!r}"
                for d, c in entries[-10:]
            ) or "(empty)"
        if command in ("quit", "exit") and not args:
            self.running = False
            return "bye"
        return (
            "commands: put <k> <v> | get <k> | del <k> | cas <k> <old> <new> "
            "| keys | digest | log | quit"
        )


async def run_node(descriptor: Path, key_file: Path) -> None:
    session_config = load_session_config(descriptor, key_file)
    node = RitasNode(
        session_config.config,
        session_config.process_id,
        session_config.addresses,
        session_config.keystore,
    )
    await node.start()
    store = ReplicatedKvStore(node.stack.create("ab", ("kv",)))
    shell = NodeShell(store)
    print(
        f"replica p{session_config.process_id} of {session_config.config.n} up "
        f"(tolerating f={session_config.config.f}); type 'help' for commands",
        flush=True,
    )
    loop = asyncio.get_event_loop()
    try:
        while shell.running:
            print(PROMPT, end="", flush=True)
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                break
            reply = shell.handle(line)
            if reply is not None:
                print(reply, flush=True)
    finally:
        await node.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ritas-node", description="Run one replicated-KV replica."
    )
    parser.add_argument("descriptor", type=Path, help="group descriptor JSON")
    parser.add_argument("key_file", type=Path, help="this replica's key file")
    args = parser.parse_args(argv)
    try:
        asyncio.run(run_node(args.descriptor, args.key_file))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
