"""An intrusion-tolerant distributed lock service.

Locks are the textbook coordination primitive that *cannot* be built
safely on asynchronous point-to-point messaging alone; on top of atomic
broadcast they are a page of deterministic state-machine logic.  Each
lock is a FIFO wait queue: ``acquire`` either grants immediately or
enqueues; ``release`` passes the lock to the next waiter.  Because the
queue transitions are totally ordered, every correct replica agrees on
the holder at every log position -- regardless of f Byzantine replicas
(which can at worst acquire/release locks they own, like any client).

Holders are identified as ``(replica, client_tag)`` so independent
clients multiplexed over one replica don't shadow each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.state_machine import Command, ReplicatedStateMachine
from repro.core.atomic_broadcast import AtomicBroadcast

#: (replica id, client tag)
Holder = tuple[int, str]


@dataclass
class _LockState:
    holder: Holder | None = None
    waiters: list[Holder] = field(default_factory=list)


def _apply_lock(state: dict[str, _LockState], command: Command) -> tuple[dict, Any]:
    if len(command.args) != 3 or not all(
        isinstance(arg, expected)
        for arg, expected in zip(command.args, (str, int, str))
    ):
        return state, None  # ill-typed (corrupt replica): deterministic no-op
    name, replica, tag = command.args
    holder: Holder = (replica, tag)
    lock = state.setdefault(name, _LockState())
    if command.op == "acquire":
        if lock.holder is None:
            lock.holder = holder
            return state, ("granted", holder)
        if lock.holder == holder or holder in lock.waiters:
            return state, ("already", lock.holder)
        lock.waiters.append(holder)
        return state, ("queued", lock.holder)
    if command.op == "release":
        if lock.holder != holder:
            return state, ("not-holder", lock.holder)
        lock.holder = lock.waiters.pop(0) if lock.waiters else None
        return state, ("released", lock.holder)
    return state, None


class DistributedLockService:
    """One replica's view of the replicated lock table."""

    def __init__(self, ab: AtomicBroadcast):
        self._rsm = ReplicatedStateMachine(ab, _apply_lock, initial_state={})
        self._rsm.on_applied = self._on_applied
        #: Called with (lock name, holder) whenever a *local* client is
        #: granted a lock (immediately or after waiting).
        self.on_granted: Callable[[str, Holder], None] | None = None

    @property
    def rsm(self) -> ReplicatedStateMachine:
        return self._rsm

    @property
    def replica_id(self) -> int:
        return self._rsm.replica_id

    # -- requests (replicated) -----------------------------------------------------

    def acquire(self, name: str, client_tag: str = "default") -> None:
        """Request *name*; granted now or when earlier holders release."""
        self._rsm.submit(Command("acquire", [name, self.replica_id, client_tag]))

    def release(self, name: str, client_tag: str = "default") -> None:
        self._rsm.submit(Command("release", [name, self.replica_id, client_tag]))

    # Backpressure-aware variants: False means admission was refused
    # (``config.ab_pending_cap``); the request was NOT replicated.

    def try_acquire(self, name: str, client_tag: str = "default") -> bool:
        return (
            self._rsm.try_submit(Command("acquire", [name, self.replica_id, client_tag]))
            is not None
        )

    def try_release(self, name: str, client_tag: str = "default") -> bool:
        return (
            self._rsm.try_submit(Command("release", [name, self.replica_id, client_tag]))
            is not None
        )

    def admission(self) -> tuple[int, int]:
        """``(pending, cap)`` of the request-admission bound -- the
        context to attach to a retry-after when a ``try_*`` request was
        refused."""
        return self._rsm.admission()

    # -- local reads ------------------------------------------------------------------

    def holder(self, name: str) -> Holder | None:
        lock = self._rsm.state.get(name)
        return lock.holder if lock else None

    def waiters(self, name: str) -> list[Holder]:
        lock = self._rsm.state.get(name)
        return list(lock.waiters) if lock else []

    def held_by_me(self, name: str, client_tag: str = "default") -> bool:
        return self.holder(name) == (self.replica_id, client_tag)

    def locks(self) -> list[str]:
        return sorted(
            name for name, lock in self._rsm.state.items() if lock.holder is not None
        )

    # -- grant notifications -------------------------------------------------------------

    def _on_applied(self, delivery, command: Command, result: Any) -> None:
        """Fire :attr:`on_granted` when a local client gains a lock --
        either its own acquire being granted, or someone's release
        handing the lock over to our queued request."""
        if self.on_granted is None or result is None:
            return
        status, holder = result
        name = str(command.args[0]) if command.args else ""
        if command.op == "acquire" and status == "granted":
            if holder[0] == self.replica_id:
                self.on_granted(name, holder)
        elif command.op == "release" and status == "released":
            if holder is not None and tuple(holder)[0] == self.replica_id:
                self.on_granted(name, tuple(holder))
