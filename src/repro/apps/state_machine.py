"""State machine replication over atomic broadcast.

Every replica applies the same deterministic commands in the same total
order, so all correct replicas walk through identical state histories --
the classical reduction (Schneider '90) the paper's introduction uses to
motivate consensus.

The class is runtime-agnostic: hand it any atomic broadcast control
block (simulated or TCP-backed) and a deterministic ``apply`` function.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.atomic_broadcast import AbDelivery, AtomicBroadcast
from repro.core.errors import BackpressureError, WireFormatError
from repro.core.wire import decode_value, encode_value
from repro.crypto.hashing import hash_bytes


@dataclass(frozen=True)
class Command:
    """One replicated command: an operation name plus arguments."""

    op: str
    args: list[Any]

    def encode(self) -> bytes:
        return encode_value([self.op, self.args])

    @classmethod
    def decode(cls, data: bytes) -> "Command":
        decoded = decode_value(data)
        if (
            not isinstance(decoded, list)
            or len(decoded) != 2
            or not isinstance(decoded[0], str)
            or not isinstance(decoded[1], list)
        ):
            raise ValueError("malformed command")
        return cls(op=decoded[0], args=decoded[1])


ApplyFn = Callable[[Any, Command], tuple[Any, Any]]


class ReplicatedStateMachine:
    """A deterministic state machine whose log is an atomic broadcast.

    Args:
        ab: this replica's atomic broadcast instance.
        apply_fn: pure function ``(state, command) -> (new_state, result)``;
            it must be deterministic, as every replica runs it on the
            same command sequence.
        initial_state: the starting state (shared by all replicas).

    Results of locally submitted commands are reported through
    :attr:`on_result` callbacks; the full applied log is kept for
    auditing and state-digest comparison across replicas.
    """

    def __init__(
        self,
        ab: AtomicBroadcast,
        apply_fn: ApplyFn,
        initial_state: Any,
        *,
        restore_fn: Callable[[Any], Any] | None = None,
    ):
        self._ab = ab
        self._apply = apply_fn
        self._restore = restore_fn
        self.state = initial_state
        self.applied: list[tuple[AbDelivery, Command]] = []
        self.on_result: Callable[[Command, Any], None] | None = None
        #: Called after *every* applied command (local or remote) with
        #: ``(delivery, command, result)`` -- the hook services use to
        #: react to state transitions they did not initiate.
        self.on_applied: Callable[[AbDelivery, Command, Any], None] | None = None
        self._malformed = 0
        #: Local submissions refused by atomic-broadcast backpressure
        #: (only :meth:`try_submit` counts here; :meth:`submit` raises).
        self.backpressured = 0
        self._snapshot_cache: bytes | None = None
        self._digest_cache: bytes | None = None
        ab.on_deliver = self._on_delivery

    @property
    def ab(self) -> AtomicBroadcast:
        """The atomic broadcast instance this replica's log rides on."""
        return self._ab

    @property
    def replica_id(self) -> int:
        return self._ab.me

    @property
    def malformed_commands(self) -> int:
        """Commands from corrupt replicas that failed to decode (skipped
        identically by every correct replica, preserving determinism)."""
        return self._malformed

    def submit(self, command: Command) -> tuple[int, int]:
        """Replicate *command*; it is applied once totally ordered.

        Raises:
            BackpressureError: the atomic broadcast's local admission
                bound (``config.ab_pending_cap``) is full; resubmit
                after pending deliveries drain (or use
                :meth:`try_submit`).
        """
        return self._ab.broadcast(command.encode())

    def try_submit(self, command: Command) -> tuple[int, int] | None:
        """Like :meth:`submit`, but returns ``None`` instead of raising
        when admission is refused by backpressure."""
        try:
            return self.submit(command)
        except BackpressureError:
            self.backpressured += 1
            return None

    def admission(self) -> tuple[int, int]:
        """Current ``(pending, cap)`` of the atomic-broadcast admission
        bound: locally submitted commands still undelivered, and the
        ``config.ab_pending_cap`` ceiling (0 = unbounded).

        This is the context an admission-controlled front end (the
        gateway's ``retry-after`` responses) reports to clients when a
        ``try_*`` call is refused.
        """
        return self._ab.pending_local, self._ab.config.ab_pending_cap

    def _on_delivery(self, _instance, delivery: AbDelivery) -> None:
        if not isinstance(delivery.payload, bytes):
            self._malformed += 1
            return
        try:
            command = Command.decode(delivery.payload)
        except (ValueError, WireFormatError):
            # A corrupt replica atomically broadcast junk.  Total order
            # means every correct replica sees -- and skips -- the same
            # junk at the same log position: determinism is preserved.
            self._malformed += 1
            return
        self._step(delivery, command)

    def _step(
        self, delivery: AbDelivery, command: Command, *, notify_result: bool = True
    ) -> None:
        self.state, result = self._apply(self.state, command)
        self.applied.append((delivery, command))
        self._snapshot_cache = None
        self._digest_cache = None
        if (
            notify_result
            and self.on_result is not None
            and delivery.sender == self.replica_id
        ):
            self.on_result(command, result)
        if self.on_applied is not None:
            self.on_applied(delivery, command, result)

    def state_digest(self) -> bytes:
        """Digest of the current state; equal across correct replicas at
        equal log positions.

        Cached between state transitions: recovery checkpoints and
        cross-replica audits may ask for the digest far more often than
        the state changes.
        """
        if self._digest_cache is None:
            self._digest_cache = hash_bytes(self.snapshot_bytes())
        return self._digest_cache

    # -- snapshots (checkpoint / state-transfer support) ---------------------

    def snapshot_bytes(self) -> bytes:
        """Canonical encoding of the current state -- the exact bytes
        :meth:`state_digest` hashes, so ``hash_bytes(snapshot_bytes())``
        always equals the digest."""
        if self._snapshot_cache is None:
            self._snapshot_cache = encode_value(_canonical(self.state))
        return self._snapshot_cache

    def install_snapshot(self, data: bytes) -> None:
        """Replace the state with a decoded snapshot (state transfer).

        Requires a ``restore_fn`` that rebuilds the application state
        from its canonical rendering.  The applied log restarts empty:
        entries before the snapshot position were truncated group-wide.
        """
        if self._restore is None:
            raise ValueError("state machine has no restore_fn; cannot install")
        self.state = self._restore(decode_value(data))
        self.applied.clear()
        self._snapshot_cache = None
        self._digest_cache = None

    def ingest_recovered(self, delivery: AbDelivery) -> bool:
        """Apply one delivery obtained from a peer's log (state transfer).

        Identical to the live delivery path except that
        :attr:`on_result` is suppressed -- the original submitter
        already saw the result.  Returns ``False`` when the payload is
        junk every correct replica skipped at this position.
        """
        if not isinstance(delivery.payload, bytes):
            self._malformed += 1
            return False
        try:
            command = Command.decode(delivery.payload)
        except (ValueError, WireFormatError):
            self._malformed += 1
            return False
        self._step(delivery, command, notify_result=False)
        return True

    def trim_applied(self, max_entries: int) -> int:
        """Drop all but the newest *max_entries* applied-log entries
        (checkpoint-driven truncation); returns how many were dropped."""
        excess = len(self.applied) - max(0, max_entries)
        if excess > 0:
            del self.applied[:excess]
            return excess
        return 0


def _canonical(state: Any) -> Any:
    """Render *state* with a canonical, wire-encodable structure."""
    if dataclasses.is_dataclass(state) and not isinstance(state, type):
        return [
            [f.name, _canonical(getattr(state, f.name))]
            for f in dataclasses.fields(state)
        ]
    if isinstance(state, dict):
        return [[_canonical(k), _canonical(v)] for k, v in sorted(state.items())]
    if isinstance(state, (list, tuple)):
        return [_canonical(item) for item in state]
    return state
