"""An intrusion-tolerant replicated key-value store.

Writes (``put``/``delete``/``cas``) are replicated through atomic
broadcast via :class:`ReplicatedStateMachine`; reads are served from the
local replica's state.  With ``n >= 3f + 1`` replicas, up to *f* of them
may be arbitrarily corrupt without affecting the state of the correct
ones -- and, because the stack is randomized, without any synchrony
assumption for liveness.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.apps.state_machine import Command, ReplicatedStateMachine
from repro.core.atomic_broadcast import AtomicBroadcast


class KvCommand:
    """Constructors for the store's replicated commands."""

    @staticmethod
    def put(key: str, value: bytes) -> Command:
        return Command("put", [key, value])

    @staticmethod
    def delete(key: str) -> Command:
        return Command("delete", [key])

    @staticmethod
    def cas(key: str, expected: bytes | None, value: bytes) -> Command:
        """Compare-and-swap: write only if the current value equals
        *expected* (``None`` = key absent)."""
        return Command("cas", [key, expected, value])

    @staticmethod
    def mput(pairs: list[tuple[str, bytes]]) -> Command:
        """Atomic multi-put: all pairs apply at one serialization point.

        In a sharded deployment the gateway only admits an mput whose
        keys share one owning shard (cross-shard writes are forbidden;
        see :mod:`repro.shard.router`), so atomicity never needs more
        than one AB stream.
        """
        return Command("mput", [[[key, value] for key, value in pairs]])


def _apply_kv(state: dict[str, bytes], command: Command) -> tuple[dict, Any]:
    if command.op == "put" and len(command.args) == 2:
        key, value = command.args
        if isinstance(key, str) and isinstance(value, bytes):
            state[key] = value
            return state, True
    elif command.op == "delete" and len(command.args) == 1:
        (key,) = command.args
        if isinstance(key, str):
            return state, state.pop(key, None) is not None
    elif command.op == "mput" and len(command.args) == 1:
        (pairs,) = command.args
        if isinstance(pairs, list) and all(
            isinstance(pair, list)
            and len(pair) == 2
            and isinstance(pair[0], str)
            and isinstance(pair[1], bytes)
            for pair in pairs
        ):
            # All-or-nothing by construction: validation precedes any
            # mutation, and one apply is one serialization point.
            for key, value in pairs:
                state[key] = value
            return state, len(pairs)
    elif command.op == "cas" and len(command.args) == 3:
        key, expected, value = command.args
        if (
            isinstance(key, str)
            and (expected is None or isinstance(expected, bytes))
            and isinstance(value, bytes)
        ):
            if state.get(key) == expected:
                state[key] = value
                return state, True
            return state, False
    # Unknown or ill-typed commands (possibly from a corrupt replica)
    # are no-ops -- identically at every correct replica.
    return state, None


def _restore_kv(canonical: Any) -> dict[str, bytes]:
    """Rebuild the store's dict from its canonical ``[[k, v], ...]``
    rendering (see :func:`repro.apps.state_machine._canonical`)."""
    if not isinstance(canonical, list):
        raise ValueError("malformed kv snapshot")
    state: dict[str, bytes] = {}
    for entry in canonical:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], bytes)
        ):
            raise ValueError("malformed kv snapshot entry")
        state[entry[0]] = entry[1]
    return state


class ReplicatedKvStore:
    """One replica of the key-value store."""

    def __init__(self, ab: AtomicBroadcast):
        self._rsm = ReplicatedStateMachine(
            ab, _apply_kv, initial_state={}, restore_fn=_restore_kv
        )

    @property
    def rsm(self) -> ReplicatedStateMachine:
        return self._rsm

    @property
    def replica_id(self) -> int:
        return self._rsm.replica_id

    # -- writes (replicated) ------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        self._rsm.submit(KvCommand.put(key, value))

    def delete(self, key: str) -> None:
        self._rsm.submit(KvCommand.delete(key))

    def cas(self, key: str, expected: bytes | None, value: bytes) -> None:
        self._rsm.submit(KvCommand.cas(key, expected, value))

    def mput(self, pairs: list[tuple[str, bytes]]) -> None:
        self._rsm.submit(KvCommand.mput(pairs))

    # Backpressure-aware variants: False means admission was refused
    # (``config.ab_pending_cap`` local writes still undelivered) -- the
    # write was NOT replicated; retry after deliveries drain.

    def try_put(self, key: str, value: bytes) -> bool:
        return self._rsm.try_submit(KvCommand.put(key, value)) is not None

    def try_delete(self, key: str) -> bool:
        return self._rsm.try_submit(KvCommand.delete(key)) is not None

    def try_cas(self, key: str, expected: bytes | None, value: bytes) -> bool:
        return self._rsm.try_submit(KvCommand.cas(key, expected, value)) is not None

    def admission(self) -> tuple[int, int]:
        """``(pending, cap)`` of the write-admission bound -- the context
        to attach to a retry-after when a ``try_*`` write was refused."""
        return self._rsm.admission()

    def on_result(self, callback: Callable[[Command, Any], None]) -> None:
        """Register a callback for results of locally submitted writes."""
        self._rsm.on_result = callback

    # -- reads (local) -------------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        return self._rsm.state.get(key)

    def keys(self) -> list[str]:
        return sorted(self._rsm.state)

    def __len__(self) -> int:
        return len(self._rsm.state)

    def state_digest(self) -> bytes:
        return self._rsm.state_digest()
