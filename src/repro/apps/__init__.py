"""Applications built on the RITAS stack.

The paper motivates atomic broadcast as the building block "for many
practical applications"; the canonical one is state machine replication
[Schneider 90], which the paper's introduction cites as equivalent to
consensus.  This package provides:

- :mod:`repro.apps.state_machine` -- deterministic state machine
  replication over atomic broadcast;
- :mod:`repro.apps.kv_store` -- an intrusion-tolerant replicated
  key-value store on top of it.
"""

from repro.apps.kv_store import KvCommand, ReplicatedKvStore
from repro.apps.lock_service import DistributedLockService
from repro.apps.state_machine import Command, ReplicatedStateMachine

__all__ = [
    "Command",
    "DistributedLockService",
    "KvCommand",
    "ReplicatedKvStore",
    "ReplicatedStateMachine",
]
