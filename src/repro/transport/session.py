"""Awaitable facade over a :class:`RitasNode`.

Exposes the paper's API shape (Section 3.1) in asyncio terms: blocking
service requests become awaitables, and atomic broadcast deliveries
become an async stream::

    async with RitasSession(config, pid, addresses, keystore) as session:
        await session.ab_broadcast(b"hello")
        delivery = await session.ab_recv()
        bit = await session.binary_consensus("vote-1", 1)
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.core.atomic_broadcast import AbDelivery
from repro.core.config import GroupConfig
from repro.core.stack import ProtocolFactory
from repro.core.wire import Path
from repro.crypto.keys import KeyStore
from repro.transport.tcp import PeerAddress, RitasNode


class RitasSession:
    """One process's handle on the group's services."""

    def __init__(
        self,
        config: GroupConfig,
        process_id: int,
        addresses: list[PeerAddress],
        keystore: KeyStore,
        *,
        factory: ProtocolFactory | None = None,
    ):
        self.node = RitasNode(
            config, process_id, addresses, keystore, factory=factory
        )
        self._ab_queue: asyncio.Queue[AbDelivery] = asyncio.Queue()
        self._ab = None

    @property
    def config(self) -> GroupConfig:
        return self.node.config

    @property
    def process_id(self) -> int:
        return self.node.process_id

    async def listen(self) -> None:
        """Bind the listener only (supports ephemeral ports: pass port 0,
        read :attr:`bound_port`, then :meth:`set_peer_addresses` +
        :meth:`connect` once every peer's port is known)."""
        await self.node.listen()

    @property
    def bound_port(self) -> int:
        return self.node.bound_port

    def set_peer_addresses(self, addresses: list[PeerAddress]) -> None:
        self.node.set_peer_addresses(addresses)

    async def connect(self) -> None:
        await self.node.connect()
        if self._ab is None:
            self._ab = self.node.stack.create("ab", ("ab",))
            self._ab.on_deliver = lambda _inst, d: self._ab_queue.put_nowait(d)

    async def start(self) -> None:
        await self.listen()
        await self.connect()

    async def close(self) -> None:
        await self.node.close()

    async def __aenter__(self) -> "RitasSession":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- atomic broadcast (ritas_ab_bcast / ritas_ab_recv) ---------------------------

    async def ab_broadcast(self, payload: Any) -> tuple[int, int]:
        """Atomically broadcast *payload*; returns its (sender, rbid) id."""
        assert self._ab is not None, "session not started"
        return self._ab.broadcast(payload)

    async def ab_recv(self) -> AbDelivery:
        """Await the next totally-ordered delivery."""
        return await self._ab_queue.get()

    # -- consensus services (ritas_bc / ritas_mvc / ritas_vc) -------------------------

    async def binary_consensus(self, tag: str, value: int) -> int:
        """Propose a bit under *tag*; awaits and returns the decision.

        Every process must call this with the same *tag* for the same
        instance (the paper's applications coordinate instance creation
        the same way).
        """
        return await self._consensus("bc", ("bc", tag), value)

    async def multivalued_consensus(self, tag: str, value: Any) -> Any:
        """Propose an arbitrary value; returns the decision (``None`` = ⊥)."""
        return await self._consensus("mvc", ("mvc", tag), value)

    async def vector_consensus(self, tag: str, value: Any) -> list[Any]:
        """Propose a value; returns the agreed vector of proposals."""
        return await self._consensus("vc", ("vc", tag), value)

    async def _consensus(self, kind: str, path: Path, value: Any) -> Any:
        stack = self.node.stack
        instance = stack.instance_at(path)
        if instance is None:
            instance = stack.create(kind, path)
        future: asyncio.Future = asyncio.get_event_loop().create_future()

        def on_decide(_instance, decision: Any) -> None:
            if not future.done():
                future.set_result(decision)

        instance.on_deliver = on_decide
        decided = getattr(instance, "decision", None)
        if getattr(instance, "decided", False):
            return decided
        instance.propose(value)  # type: ignore[attr-defined]
        return await future
