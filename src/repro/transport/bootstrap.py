"""Deployment bootstrap: group descriptors and key provisioning.

The paper assumes pairwise keys are distributed "before the execution
of the protocols ... by a trusted dealer or some kind of key
distribution protocol".  This module is that trusted dealer's tooling
for real deployments:

- a **group descriptor** (JSON) lists every process's listen address;
- ``provision()`` runs the dealer once and writes one **key file** per
  process (each containing only that process's row of the key matrix --
  a process never sees keys it does not own);
- ``load_session_config()`` reads both back on each host.

The ``ritas-keygen`` console script wraps ``provision`` for operators::

    ritas-keygen group.json --out-dir keys/
"""

from __future__ import annotations

import argparse
import base64
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import GroupConfig
from repro.crypto.keys import KeyStore, TrustedDealer
from repro.transport.tcp import PeerAddress

DESCRIPTOR_VERSION = 1


@dataclass(frozen=True)
class SessionConfig:
    """Everything one process needs to join the group."""

    config: GroupConfig
    process_id: int
    addresses: list[PeerAddress]
    keystore: KeyStore


def write_group_descriptor(path: Path, addresses: list[PeerAddress]) -> None:
    """Write the shared (non-secret) group descriptor."""
    descriptor = {
        "version": DESCRIPTOR_VERSION,
        "processes": [{"host": a.host, "port": a.port} for a in addresses],
    }
    path.write_text(json.dumps(descriptor, indent=2) + "\n")


def read_group_descriptor(path: Path) -> list[PeerAddress]:
    """Read and validate a group descriptor."""
    try:
        descriptor = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(descriptor, dict) or descriptor.get("version") != DESCRIPTOR_VERSION:
        raise ValueError(f"{path}: unsupported group descriptor version")
    raw = descriptor.get("processes")
    if not isinstance(raw, list) or not raw:
        raise ValueError(f"{path}: descriptor lists no processes")
    addresses = []
    for index, entry in enumerate(raw):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("host"), str)
            or not isinstance(entry.get("port"), int)
            or not 0 < entry["port"] < 65536
        ):
            raise ValueError(f"{path}: malformed process entry #{index}")
        addresses.append(PeerAddress(entry["host"], entry["port"]))
    return addresses


def provision(
    descriptor_path: Path, out_dir: Path, *, seed: bytes | None = None
) -> list[Path]:
    """Run the trusted dealer: one key file per process under *out_dir*.

    Returns the written paths.  Pass *seed* only in tests -- production
    keys must come from the default (urandom) dealer.
    """
    addresses = read_group_descriptor(descriptor_path)
    n = len(addresses)
    dealer = TrustedDealer(n, seed=seed)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for pid in range(n):
        store = dealer.keystore_for(pid)
        payload = {
            "version": DESCRIPTOR_VERSION,
            "process_id": pid,
            "num_processes": n,
            "keys": {
                str(peer): base64.b64encode(store.key_for(peer)).decode()
                for peer in store.peers
            },
        }
        key_path = out_dir / f"process-{pid}.keys.json"
        key_path.write_text(json.dumps(payload, indent=2) + "\n")
        key_path.chmod(0o600)
        written.append(key_path)
    return written


def read_keystore(path: Path) -> tuple[int, int, KeyStore]:
    """Load one process's key file: (process_id, n, keystore)."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != DESCRIPTOR_VERSION:
        raise ValueError(f"{path}: unsupported key file version")
    process_id = payload.get("process_id")
    n = payload.get("num_processes")
    raw_keys = payload.get("keys")
    if (
        not isinstance(process_id, int)
        or not isinstance(n, int)
        or not isinstance(raw_keys, dict)
    ):
        raise ValueError(f"{path}: malformed key file")
    keys = {}
    for peer_text, encoded in raw_keys.items():
        try:
            keys[int(peer_text)] = base64.b64decode(encoded)
        except (ValueError, TypeError) as exc:
            raise ValueError(f"{path}: malformed key entry {peer_text!r}") from exc
    return process_id, n, KeyStore(process_id, keys)


def load_session_config(descriptor_path: Path, key_path: Path) -> SessionConfig:
    """Assemble one process's full session configuration."""
    addresses = read_group_descriptor(descriptor_path)
    process_id, n, keystore = read_keystore(key_path)
    if n != len(addresses):
        raise ValueError(
            f"key file is for a group of {n}, descriptor lists {len(addresses)}"
        )
    if not 0 <= process_id < n:
        raise ValueError(f"key file's process id {process_id} out of range")
    return SessionConfig(
        config=GroupConfig(n),
        process_id=process_id,
        addresses=addresses,
        keystore=keystore,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ritas-keygen",
        description="Provision pairwise RITAS keys for a group descriptor.",
    )
    parser.add_argument("descriptor", type=Path, help="group descriptor JSON")
    parser.add_argument(
        "--out-dir", type=Path, default=Path("keys"), help="key file directory"
    )
    args = parser.parse_args(argv)
    written = provision(args.descriptor, args.out_dir)
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
