"""Authenticated frame encoding for the TCP transport.

Wire layout of one frame (big-endian)::

    u32  body length
    u64  sequence number          } authenticated
    u32  source process id        } authenticated
    ...  stack frame bytes        } authenticated
    32B  HMAC-SHA256 trailer

The HMAC key is the pairwise secret ``s_ij``; the sequence number is
strictly monotonic per direction, so replayed or reordered injections
are rejected.  This plays the role IPSec AH played on the paper's
testbed: the *channel* authenticates link and content, letting the
protocols above stay signature-free.

Scope note: sequence tracking is per TCP connection (like an IPSec SA's
anti-replay window per SA).  An attacker replaying *recorded* frames on
a fresh connection passes the channel check; the protocols above
tolerate this by construction -- every broadcast counts one vote per
source, so duplicates are absorbed (defense in depth, exercised by the
fuzz tests).
"""

from __future__ import annotations

import hmac
import struct
from hashlib import sha256

MAC_LEN = 32
_HEADER = struct.Struct(">QI")
_LEN = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024


class FramingError(Exception):
    """A frame failed authentication or was malformed."""


def peek_src(body_and_tag: bytes) -> int:
    """Extract the *claimed* source pid from a frame, without verifying.

    Used once per inbound connection to pick the pairwise key; the very
    same frame is then verified under that key, so a liar gains nothing.
    """
    if len(body_and_tag) < _HEADER.size + MAC_LEN:
        raise FramingError("frame too short")
    _, src = _HEADER.unpack_from(body_and_tag)
    return src


class FrameCodec:
    """Encoder/decoder for one *direction* of a peer link."""

    def __init__(self, key: bytes, src: int):
        self._key = key
        self._src = src
        self._send_seq = 0
        self._recv_seq = -1
        # The HMAC key schedule (two SHA-256 blocks of key padding) is
        # constant per link; fork this pre-keyed state per frame instead
        # of re-deriving it.  Digest bytes are identical to a fresh
        # ``hmac.new(key, body, sha256)``.
        self._mac_proto = hmac.new(key, digestmod=sha256)

    def encode(self, payload: bytes) -> bytes:
        """Wrap *payload* with sequence number and HMAC trailer."""
        header = _HEADER.pack(self._send_seq, self._src)
        self._send_seq += 1
        state = self._mac_proto.copy()
        state.update(header)
        state.update(payload)
        out = bytearray(_LEN.pack(_HEADER.size + len(payload) + MAC_LEN))
        out += header
        out += payload
        out += state.digest()
        return bytes(out)

    def decode(self, body_and_tag) -> tuple[int, bytes]:
        """Verify one received frame body; returns ``(src, payload)``.

        Accepts any bytes-like object; the body is authenticated in
        place (no copy) and only the payload is materialized.

        Raises:
            FramingError: bad MAC, replayed/reordered sequence number,
                or truncated frame.
        """
        size = len(body_and_tag)
        if size < _HEADER.size + MAC_LEN:
            raise FramingError("frame too short")
        view = memoryview(body_and_tag)
        body_end = size - MAC_LEN
        state = self._mac_proto.copy()
        state.update(view[:body_end])
        if not hmac.compare_digest(view[body_end:], state.digest()):
            raise FramingError("bad frame MAC")
        seq, src = _HEADER.unpack_from(view)
        if seq <= self._recv_seq:
            raise FramingError(f"replayed frame (seq {seq} <= {self._recv_seq})")
        if src != self._src:
            raise FramingError(f"frame claims src {src}, link authenticated {self._src}")
        self._recv_seq = seq
        return src, bytes(view[_HEADER.size : body_end])
