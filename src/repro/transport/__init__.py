"""Real-network runtime: the stack over TCP sockets with asyncio.

This is the deployment counterpart of the simulator in
:mod:`repro.net`: the same sans-IO protocol stack, driven by asyncio
streams.  The reliable channel matches the paper's Section 2.1:

- **reliability / FIFO** -- TCP;
- **integrity** -- each frame carries an HMAC-SHA256 trailer under the
  pairwise secret key, with a monotonic sequence number against replay
  (our stand-in for the IPSec AH protocol of the original testbed).

:class:`RitasNode` is the low-level node (sockets + stack);
:class:`RitasSession` adds awaitable consensus calls and an async
delivery stream for atomic broadcast.
"""

from repro.transport.framing import FrameCodec, FramingError
from repro.transport.session import RitasSession
from repro.transport.tcp import PeerAddress, RitasNode

__all__ = [
    "FrameCodec",
    "FramingError",
    "PeerAddress",
    "RitasNode",
    "RitasSession",
]
