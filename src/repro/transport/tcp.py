"""The asyncio TCP node hosting one RITAS stack.

Topology: every node listens on its own address and opens one outbound
connection to every peer (used for sending only); inbound connections
are receive-only.  The first frame on an inbound connection identifies
-- and cryptographically authenticates -- the sending peer.

All stack processing happens on the event loop thread; the sans-IO core
needs no locks.
"""

from __future__ import annotations

import asyncio
import logging
import random
import struct
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.config import GroupConfig
from repro.core.errors import ConfigurationError
from repro.core.sendq import BoundedSendQueue
from repro.core.stack import ProtocolFactory, Stack
from repro.core.trace import KIND_SHED
from repro.core.wire import encode_batch
from repro.crypto.coin import CoinSource, SharedCoinDealer
from repro.crypto.keys import KeyStore
from repro.obs.metrics import MetricsRegistry
from repro.transport.framing import MAC_LEN, FrameCodec, FramingError, peek_src

logger = logging.getLogger(__name__)

_LEN = struct.Struct(">I")
_MAX_BODY = 64 * 1024 * 1024


class _SendChannel:
    """One peer's outbound queue: a :class:`BoundedSendQueue` plus an
    asyncio wakeup for the sender task.

    Replaces the seed's unbounded ``asyncio.Queue`` so a slow or dead
    peer cannot grow this process's memory without bound; shedding is
    priority-aware and never reorders the surviving frames.
    """

    def __init__(self, max_frames: int = 0):
        self.queue = BoundedSendQueue(max_frames)
        self._event = asyncio.Event()

    def __len__(self) -> int:
        return len(self.queue)

    @property
    def bytes(self) -> int:
        return self.queue.bytes

    def empty(self) -> bool:
        return not self.queue

    def put(self, data: bytes) -> list[bytes]:
        """Enqueue; returns whatever the bound forced out."""
        shed = self.queue.push(data)
        if self.queue:
            self._event.set()
        return shed

    def get_nowait(self) -> bytes | None:
        data = self.queue.pop()
        if not self.queue:
            self._event.clear()
        return data

    async def get(self) -> bytes:
        while True:
            data = self.get_nowait()
            if data is not None:
                return data
            await self._event.wait()

    def clear(self) -> tuple[int, int]:
        """Drop everything queued; returns ``(frames, bytes)`` released."""
        released = self.queue.clear()
        self._event.clear()
        return released


@dataclass(frozen=True)
class PeerAddress:
    """Where one process listens."""

    host: str
    port: int


class RitasNode:
    """One process of the group, on a real network.

    Args:
        config: the group description.
        process_id: this process's id.
        addresses: listen address of every process, indexed by pid.
        keystore: pairwise keys (from a :class:`TrustedDealer` or an
            out-of-band provisioning step, as in the paper).
        factory: protocol registry; override for fault-injection tests.
        connect_retry_s: base delay between outbound connection attempts
            while peers are still coming up; defaults to the group's
            ``reconnect_base_s``.  The delay doubles per consecutive
            failure up to ``reconnect_max_s``, with multiplicative
            jitter ``reconnect_jitter`` so a restarted group does not
            reconnect in lockstep.
        seed: when given, every random draw this node makes (reconnect
            jitter, local consensus coins) comes from a ``random.Random``
            seeded on ``(seed, n, process_id)``, making runs replayable;
            when omitted (production), draws stay OS-random so the
            group's jitter cannot be predicted by an attacker.  The
            stack's coin draws come from a *derived* stream, so they
            stay replayable even though the jitter draws interleave with
            network timing.
        coin: explicit coin source for binary consensus.  Default: the
            stack derives a local coin from the node RNG; with
            ``config.bc_coin == "shared"`` a seed is required and the
            node derives the group's shared-coin dealer secret from it
            (every node of a same-seed group deals the same coin).
    """

    def __init__(
        self,
        config: GroupConfig,
        process_id: int,
        addresses: list[PeerAddress],
        keystore: KeyStore,
        *,
        factory: ProtocolFactory | None = None,
        connect_retry_s: float | None = None,
        seed: int | None = None,
        coin: CoinSource | None = None,
    ):
        if len(addresses) != config.num_processes:
            raise ValueError("need one address per process")
        self.config = config
        self.process_id = process_id
        self.addresses = list(addresses)
        self.keystore = keystore
        self.connect_retry_s = (
            config.reconnect_base_s if connect_retry_s is None else connect_retry_s
        )
        # Seed derivations are scoped by config.group_tag so same-seed
        # groups (shards) draw disjoint RNG streams and coin sequences;
        # untagged groups keep the exact pre-sharding strings.
        self.rng = (
            random.Random(
                config.scoped_seed(f"ritas/{seed}/{config.num_processes}/{process_id}")
            )
            if seed is not None
            else random.Random()
        )
        if coin is None and config.bc_coin == "shared":
            if seed is None:
                raise ConfigurationError(
                    "config.bc_coin='shared' needs either an explicit coin "
                    "or a seed to derive the group's dealer secret from"
                )
            dealer = SharedCoinDealer(
                secret=config.scoped_seed(
                    f"ritas-coin/{seed}/{config.num_processes}"
                ).encode()
            )
            coin = dealer.coin_for(process_id)
        self.stack = Stack(
            config,
            process_id,
            outbox=self._outbox,
            keystore=keystore,
            clock=time.monotonic,
            factory=factory,
            rng=self.rng,
            coin=coin,
        )
        self._server: asyncio.base_events.Server | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._send_codecs: dict[int, FrameCodec] = {}
        self._send_queues: dict[int, _SendChannel] = {}
        # Per-peer fault-injection gates (set = link open).  A cleared
        # gate holds the sender loop before it writes, so frames queue
        # and flush in order on release -- the TCP view of a transient
        # partition: delay, never loss.
        self._link_open: dict[int, asyncio.Event] = {}
        self._tasks: list[asyncio.Task] = []
        # Inbound connection handlers, so close() can cancel them: the
        # asyncio server does not cancel live handler tasks on close,
        # and a handler parked in readexactly() would otherwise outlive
        # the node ("task was destroyed but it is pending").
        self._inbound_tasks: set[asyncio.Task] = set()
        self._closed = False
        self.frames_rejected = 0
        #: Frames dropped by the per-peer send-queue bound
        #: (``config.send_queue_max_frames``), dead-peer sheds included.
        self.frames_shed = 0
        #: Outbound channel units merged into batch containers by the
        #: sender tasks (on top of any coalescing the stack already did).
        self.batches_sent = 0
        self.frames_batched = 0
        #: Reconnect bookkeeping (see :meth:`_reconnect_delay`).
        self.connect_attempts = 0
        self.frames_dropped_reconnect = 0
        self.reconnect_delays: list[float] = []

    # -- lifecycle ----------------------------------------------------------------

    async def listen(self) -> None:
        """Bind this node's listener.

        Port 0 in this node's own address requests an ephemeral port;
        the address map is updated with the port actually bound (see
        :attr:`bound_port`), so peers can be told where to connect
        before :meth:`connect` is called.
        """
        if self._server is not None:
            return
        own = self.addresses[self.process_id]
        self._server = await asyncio.start_server(
            self._on_inbound, host=own.host, port=own.port
        )
        bound = self._server.sockets[0].getsockname()[1]
        self.addresses[self.process_id] = PeerAddress(own.host, bound)

    @property
    def bound_port(self) -> int:
        """The port this node's listener is actually bound to."""
        if self._server is None:
            raise RuntimeError("node is not listening yet")
        return self.addresses[self.process_id].port

    def set_peer_addresses(self, addresses: list[PeerAddress]) -> None:
        """Replace the address map (e.g. with ephemeral ports gathered
        after every node's :meth:`listen`).  Call before :meth:`connect`."""
        if len(addresses) != self.config.num_processes:
            raise ValueError("need one address per process")
        self.addresses = list(addresses)

    async def connect(self) -> None:
        """Start the outbound sender task for every peer (each retries
        until its peer is up)."""
        if self._tasks:
            return
        for pid in self.config.process_ids:
            if pid == self.process_id:
                continue
            self._send_codecs[pid] = FrameCodec(
                self.keystore.key_for(pid), self.process_id
            )
            channel = _SendChannel(self.config.send_queue_max_frames)
            self._send_queues[pid] = channel
            self._tasks.append(asyncio.create_task(self._sender(pid, channel)))

    async def start(self) -> None:
        """Listen, then connect to every peer (retrying until they are up)."""
        await self.listen()
        await self.connect()

    async def close(self) -> None:
        self._closed = True
        pending = list(self._tasks) + list(self._inbound_tasks)
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)
        self._tasks.clear()
        self._inbound_tasks.clear()
        writers = list(self._writers.values())
        self._writers.clear()
        for writer in writers:
            writer.close()
        # Await the transports so the event loop fully releases the
        # sockets before we return -- a closed node leaves nothing
        # half-torn-down behind (no warnings at interpreter exit).
        await asyncio.gather(
            *(writer.wait_closed() for writer in writers), return_exceptions=True
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "RitasNode":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def add_ticker(self, period_s: float, fn: Callable[[], Any]) -> None:
        """Call ``fn()`` every *period_s* seconds on the event loop until
        the node closes.

        This drives poll-style timers -- for example
        :meth:`repro.recovery.RecoveryManager.poke` -- on the asyncio
        runtime, mirroring :meth:`EventLoop.schedule_every` on the
        simulated one.
        """
        if period_s <= 0:
            raise ValueError(f"period must be positive (got {period_s})")
        if self._closed:
            return  # a closed node runs no more timers

        async def ticker() -> None:
            try:
                while not self._closed:
                    await asyncio.sleep(period_s)
                    if not self._closed:
                        fn()
            except asyncio.CancelledError:
                pass

        self._tasks.append(asyncio.create_task(ticker()))

    # -- metrics --------------------------------------------------------------------

    def enable_metrics(
        self, sample_interval_s: float | None = None
    ) -> MetricsRegistry:
        """Attach a :class:`~repro.obs.metrics.MetricsRegistry` to this
        node's stack (idempotent) and return it.

        Metrics are timed on the same monotonic clock as the stack.
        With *sample_interval_s* set, queue-depth gauges are sampled on
        an :meth:`add_ticker` timer (requires a running event loop, so
        call it after :meth:`start` in that case); the default samples
        only on explicit :meth:`sample_metrics` calls.
        """
        if not self.stack.metrics.enabled:
            const_labels = {"process": self.process_id, "runtime": "tcp"}
            if self.config.group_tag:
                const_labels["group"] = self.config.group_tag
            self.stack.metrics = MetricsRegistry(
                clock=time.monotonic, const_labels=const_labels
            )
        if sample_interval_s is not None:
            self.add_ticker(sample_interval_s, self.sample_metrics)
        return self.stack.metrics

    def sample_metrics(self) -> None:
        """Sample send-queue depth gauges and the stack's gauges, now."""
        registry = self.stack.metrics
        if not registry.enabled:
            return
        self.stack.sample_gauges()
        for pid, channel in self._send_queues.items():
            registry.gauge("ritas_send_queue_frames", peer=pid).set(len(channel))
            registry.gauge("ritas_send_queue_bytes", peer=pid).set(channel.bytes)

    # -- outbound -------------------------------------------------------------------

    def _outbox(self, dest: int, data: bytes) -> None:
        if self._closed:
            return
        if dest == self.process_id:
            # Local loopback: schedule rather than recurse, keeping the
            # send call non-reentrant like a socket write.
            asyncio.get_event_loop().call_soon(
                self.stack.receive, self.process_id, data
            )
            return
        self._enqueue_unit(self.stack, dest, data)

    def _enqueue_unit(self, stack: Stack, dest: int, data: bytes) -> None:
        """Queue one channel unit toward *dest*, charging any shed frames
        to *stack* (a sharded host queues several stacks' units into the
        same per-peer channel)."""
        shed = self._send_queues[dest].put(data)
        if shed:
            self.frames_shed += len(shed)
            stack.stats.sends_shed += len(shed)
            if stack.tracer.enabled:
                stack.tracer.emit(
                    self.process_id, KIND_SHED, (), dest=dest, frames=len(shed)
                )

    def _link_gate(self, pid: int) -> asyncio.Event:
        gate = self._link_open.get(pid)
        if gate is None:
            gate = asyncio.Event()
            gate.set()
            self._link_open[pid] = gate
        return gate

    def set_link_blocked(self, pid: int, blocked: bool) -> None:
        """Fault injection: hold (or release) the outbound link to *pid*.

        While blocked, frames keep queueing toward the peer and the
        sender loop parks before its next write; on release everything
        flushes in order.  Blocking the cross-island links of every node
        on both sides is how the partition tests build a 2/2 split on
        the real runtime -- and healing it is one call per link, with
        delivery semantics identical to the simulator's
        :class:`~repro.net.faults.Partition` (delayed, complete, FIFO).
        """
        gate = self._link_gate(pid)
        if blocked:
            gate.clear()
        else:
            gate.set()

    def send_queue_depth(self, pid: int) -> tuple[int, int]:
        """Current ``(frames, bytes)`` queued toward peer *pid*."""
        channel = self._send_queues.get(pid)
        if channel is None:
            return (0, 0)
        return (len(channel), channel.bytes)

    def _drain_batch(self, first: bytes, channel: "_SendChannel") -> bytes:
        """Opportunistically merge queued same-peer frames into one batch
        container, so the link pays one length header and one HMAC for
        the lot.  Only what is already queued is taken -- no waiting."""
        config = self.config
        chunk = [first]
        while len(chunk) < config.batch_max_frames:
            data = channel.get_nowait()
            if data is None:
                break
            chunk.append(data)
        if len(chunk) == 1:
            return first
        self.batches_sent += 1
        self.frames_batched += len(chunk)
        return encode_batch(chunk)

    def _reconnect_delay(self, failures: int) -> float:
        """Backoff before reconnect attempt number *failures* + 1: the
        base delay doubled per consecutive failure, capped at
        ``reconnect_max_s``, stretched by up to ``reconnect_jitter``."""
        config = self.config
        delay = min(
            self.connect_retry_s * (2.0 ** (failures - 1)), config.reconnect_max_s
        )
        if config.reconnect_jitter > 0:
            delay *= 1.0 + self.rng.uniform(0.0, config.reconnect_jitter)
        if len(self.reconnect_delays) < 4096:
            self.reconnect_delays.append(delay)
        return delay

    async def _sender(self, pid: int, channel: "_SendChannel") -> None:
        """Own the outbound connection to *pid*: (re)connect and drain."""
        codec = self._send_codecs[pid]
        gate = self._link_gate(pid)
        writer: asyncio.StreamWriter | None = None
        failures = 0
        budget = self.config.reconnect_retry_budget
        try:
            while not self._closed:
                if writer is None:
                    address = self.addresses[pid]
                    self.connect_attempts += 1
                    try:
                        _, writer = await asyncio.open_connection(
                            address.host, address.port
                        )
                        self._writers[pid] = writer
                        failures = 0
                    except OSError:
                        failures += 1
                        if budget and failures >= budget:
                            # Past the retry budget the peer is presumed
                            # down: shed its queue so memory stays
                            # bounded while probing continues at the
                            # capped rate.
                            dropped, _ = channel.clear()
                            if dropped:
                                self.frames_dropped_reconnect += dropped
                                self.frames_shed += dropped
                                self.stack.stats.sends_shed += dropped
                        await asyncio.sleep(self._reconnect_delay(failures))
                        continue
                data = await channel.get()
                if not gate.is_set():
                    await gate.wait()
                batching = self.config.batching
                if batching:
                    if self.config.batch_window_s > 0 and channel.empty():
                        # Flush window: linger briefly so a burst midway
                        # through generation can still join this batch.
                        await asyncio.sleep(self.config.batch_window_s)
                    data = self._drain_batch(data, channel)
                try:
                    writer.write(codec.encode(data))
                    # Drain-once leaning: whatever else is already queued
                    # leaves in the same flush -- every unit is written
                    # into the transport buffer first and the (possibly
                    # blocking) flow-control drain is awaited once per
                    # wakeup instead of once per unit.
                    while True:
                        more = channel.get_nowait()
                        if more is None:
                            break
                        if batching:
                            more = self._drain_batch(more, channel)
                        writer.write(codec.encode(more))
                    await writer.drain()
                except (ConnectionError, OSError):
                    logger.warning("p%d: lost connection to p%d", self.process_id, pid)
                    writer.close()
                    writer = None
                    # The frame is lost with the connection; the reliable
                    # channel property is per-TCP-session, as in the paper.
        except asyncio.CancelledError:
            pass

    # -- inbound --------------------------------------------------------------------

    def _dispatch_inbound(self, src: int, payload: bytes) -> None:
        """Hand one link-authenticated channel unit to the hosted stack.

        A sharded host (:class:`repro.shard.ShardedNode`) overrides this
        to demultiplex several stacks' traffic off the shared link.
        """
        self.stack.receive(src, payload)

    def _report_link_misbehavior(self, pid: int) -> None:
        """Charge an authenticated link-level framing/MAC failure."""
        self.stack.report_misbehavior(pid, "mac-failure")

    async def _on_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound_tasks.add(task)
        codec: FrameCodec | None = None
        peer = "?"
        peer_pid: int | None = None
        try:
            while not self._closed:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                if not MAC_LEN < length <= _MAX_BODY:
                    raise FramingError(f"implausible frame length {length}")
                body = await reader.readexactly(length)
                if codec is None:
                    src = peek_src(body)
                    if src not in self.config.process_ids or src == self.process_id:
                        raise FramingError(f"inbound link claims invalid pid {src}")
                    codec = FrameCodec(self.keystore.key_for(src), src)
                    peer = f"p{src}"
                src, payload = codec.decode(body)
                # Only a link that has produced at least one valid MAC
                # is attributable: anyone can *claim* a pid in its first
                # body, and scoring on that claim would let an outsider
                # slander group members.
                peer_pid = src
                self._dispatch_inbound(src, payload)
        except asyncio.CancelledError:
            pass
        except (asyncio.IncompleteReadError, ConnectionError):
            logger.debug("p%d: inbound link from %s closed", self.process_id, peer)
        except FramingError as exc:
            self.frames_rejected += 1
            if peer_pid is not None:
                # The link authenticated itself as peer_pid with its
                # first valid MAC, so a later framing/MAC failure is
                # chargeable -- either that peer corrupted the stream or
                # it let someone else hijack its session.
                self._report_link_misbehavior(peer_pid)
            logger.warning(
                "p%d: rejecting inbound link from %s: %s", self.process_id, peer, exc
            )
        finally:
            if task is not None:
                self._inbound_tasks.discard(task)
            writer.close()
