"""Consistent-hash shard map: KV keys onto independent RITAS groups.

One RITAS group totally orders everything through a single
atomic-broadcast stream -- the scalability ceiling the ROADMAP calls
out.  Sharding runs S independent groups side by side and assigns every
key a unique owning group, so unrelated keys stop contending for the
same AB stream.

The assignment is a classic consistent-hash ring (Karger et al.): each
shard projects ``vnodes`` points onto a 2^64 ring via SHA-256, and a
key is owned by the first shard point at or clockwise of the key's own
hash.  Two properties matter here:

- **determinism** -- the mapping is a pure function of the shard names
  and ``vnodes``; every gateway and every test computes the same owner
  with no coordination (no randomness, no process state);
- **stability** -- adding or removing one shard remaps only the keys
  that land on the touched arcs, ~1/S of the keyspace, leaving every
  other key's owner untouched (asserted by the router tests).

Cross-shard semantics are *forbid-and-measure* (see
:mod:`repro.shard.router`): the map answers "who owns this key", never
"how do two shards commit together".
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence


def _ring_hash(data: bytes) -> int:
    """A stable 64-bit ring position (first 8 bytes of SHA-256)."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


#: Default virtual nodes per shard: enough that the largest arc owned by
#: one shard stays within a few percent of 1/S for small S.
DEFAULT_VNODES = 64


class ShardMap:
    """An immutable consistent-hash ring over named shards.

    Args:
        names: shard names, one per group; order defines the shard
            *index* every router/transport structure uses.  Names must
            be unique, non-empty, and ``/``-free (they double as
            ``GroupConfig.group_tag`` values).
        vnodes: ring points per shard.
    """

    def __init__(self, names: Sequence[str], vnodes: int = DEFAULT_VNODES):
        names = list(names)
        if not names:
            raise ValueError("a shard map needs at least one shard")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names!r}")
        for name in names:
            if not name or "/" in name:
                raise ValueError(
                    f"shard name {name!r} must be non-empty and '/'-free "
                    "(it doubles as GroupConfig.group_tag)"
                )
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.names: tuple[str, ...] = tuple(names)
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for index, name in enumerate(self.names):
            for v in range(vnodes):
                points.append((_ring_hash(f"shard:{name}:{v}".encode()), index))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [index for _, index in points]

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self) -> str:
        return f"ShardMap({list(self.names)!r}, vnodes={self.vnodes})"

    def index_of(self, name: str) -> int:
        """The shard index of *name* (raises ``ValueError`` if absent)."""
        return self.names.index(name)

    def owner(self, key: str | bytes) -> int:
        """The index of the shard owning *key*."""
        if isinstance(key, str):
            key = key.encode()
        h = _ring_hash(key)
        # First ring point clockwise of the key's hash, wrapping at 2^64.
        i = bisect.bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._owners[i]

    def owner_name(self, key: str | bytes) -> str:
        """The name of the shard owning *key*."""
        return self.names[self.owner(key)]

    def spread(self, keys: Iterable[str | bytes]) -> dict[str, int]:
        """Keys-per-shard histogram (by name) -- balance diagnostics."""
        counts = dict.fromkeys(self.names, 0)
        for key in keys:
            counts[self.owner_name(key)] += 1
        return counts

    # -- ring evolution (new maps; the ring itself is immutable) -------------

    def with_shard(self, name: str) -> "ShardMap":
        """A new map with *name* appended (existing indexes unchanged)."""
        return ShardMap([*self.names, name], vnodes=self.vnodes)

    def without_shard(self, name: str) -> "ShardMap":
        """A new map with *name* removed.

        Indexes of shards after the removed one shift down -- compare
        by *name*, not index, across a removal.
        """
        remaining = [n for n in self.names if n != name]
        if len(remaining) == len(self.names):
            raise ValueError(f"no shard named {name!r} in {self.names!r}")
        return ShardMap(remaining, vnodes=self.vnodes)
