"""Sharded multi-group RITAS: S independent groups behind one routing tier.

One RITAS group totally orders every operation through a single
atomic-broadcast stream; that stream is the scalability ceiling.  This
package runs **S independent groups (shards)** over shared
infrastructure and routes each KV key to exactly one owning group:

- :mod:`repro.shard.ring` -- the deterministic consistent-hash
  :class:`ShardMap` of keys onto shards (stable under ring changes);
- :mod:`repro.shard.sim` -- :class:`ShardedLanSimulation`: S LAN
  simulations on one shared event loop (scale-out or colocated hosts),
  with per-shard fault plans and per-shard invariant checkers;
- :mod:`repro.shard.node` -- :class:`ShardedNode`: one process hosting
  S stacks over shared TCP links, one listener/sender/metrics-registry,
  shard-tagged channel units multiplexed through shared batches;
- :mod:`repro.shard.router` -- :class:`ShardRouter`: key -> owning
  shard's services, with structured :class:`WrongShardError` /
  :class:`CrossShardError` redirect hints (cross-shard commits are
  forbidden and measured, per ROADMAP).

Isolation is cryptographic, not just structural: every shard's config
carries a distinct ``GroupConfig.group_tag``, scoping its MAC keys,
shared-coin secrets, and RNG streams away from its co-hosted siblings.

See docs/SHARDING.md for usage and DESIGN.md §14 for the architecture.
"""

from repro.shard.node import ShardedNode, default_keystores, tag_unit
from repro.shard.ring import DEFAULT_VNODES, ShardMap
from repro.shard.router import (
    SINGLE_SHARD_NAME,
    CrossShardError,
    ShardRouter,
    WrongShardError,
)
from repro.shard.sim import ShardedLanSimulation, shard_names, sharded_configs

__all__ = [
    "DEFAULT_VNODES",
    "SINGLE_SHARD_NAME",
    "CrossShardError",
    "ShardMap",
    "ShardRouter",
    "ShardedLanSimulation",
    "ShardedNode",
    "WrongShardError",
    "default_keystores",
    "shard_names",
    "sharded_configs",
    "tag_unit",
]
