"""S independent RITAS groups on one discrete-event timeline.

Each shard is a full :class:`~repro.net.network.LanSimulation` -- its
own stacks, key material (scoped by ``GroupConfig.group_tag``), fault
plan, and link queues -- but every shard schedules on **one shared
EventLoop**, so the groups advance in a single global virtual-time
order and a test can interleave, partition, or compare them
deterministically.

Two placement models:

- **scale-out** (default): every shard gets its own ``n`` simulated
  hosts (S*n machines total).  Shard resources are independent, so
  aggregate ordered throughput scales with S -- the deployment the
  sharding benchmark measures.
- **colocate**: all shards contend on the *same* ``n`` hosts'
  CPU/NIC resources (``hosts=`` sharing).  This is the honest model for
  S groups stacked on one box: aggregate throughput stays roughly flat
  because the bottleneck -- host CPU -- is shared.

Invariants are asserted per shard: :meth:`attach_checkers` hangs one
:class:`~repro.check.invariants.InvariantChecker` per group off the
shared loop (the checkers chain on ``loop.on_event``).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Sequence

from repro.core.config import GroupConfig
from repro.net.faults import FaultPlan
from repro.net.network import LAN_2006, LanSimulation, NetworkParameters, _Host
from repro.net.simulator import EventLoop
from repro.obs.metrics import MetricsRegistry
from repro.shard.ring import DEFAULT_VNODES, ShardMap


def shard_names(num_shards: int) -> list[str]:
    """Default shard names: ``s0 .. s{S-1}``."""
    if num_shards < 1:
        raise ValueError("need at least one shard")
    return [f"s{i}" for i in range(num_shards)]


def sharded_configs(base: GroupConfig, names: Sequence[str]) -> list[GroupConfig]:
    """One :class:`GroupConfig` per shard: *base* with ``group_tag`` set
    to the shard name, so same-seed groups derive disjoint keys, coins,
    and RNG streams."""
    return [replace(base, group_tag=name) for name in names]


class ShardedLanSimulation:
    """S LAN simulations, one per shard, on a shared event loop.

    Args:
        num_shards: how many groups (or pass explicit ``names``).
        names: shard names; default ``s0..s{S-1}``.  They double as
            ``group_tag`` values and metric ``shard`` labels.
        config: per-group template (``group_tag`` is overwritten per
            shard); default ``GroupConfig(n)``.
        n: group size when no config template is given.
        seed: master seed shared by every shard -- the per-shard
            ``group_tag`` keeps their key/coin/RNG streams disjoint.
        colocate: all shards share the same ``n`` hosts' resources
            instead of each getting its own machines (see module doc).
        fault_plans: per-shard fault plans, keyed by shard index;
            missing entries run failure-free.  This is how the
            partition e2e test isolates one shard's group while the
            others keep ordering.
        params, ipsec, jitter_s, tie_break_seed, vnodes: as in
            :class:`LanSimulation` / :class:`ShardMap`.
    """

    def __init__(
        self,
        num_shards: int | None = None,
        *,
        names: Sequence[str] | None = None,
        config: GroupConfig | None = None,
        n: int = 4,
        seed: int = 0,
        colocate: bool = False,
        fault_plans: dict[int, FaultPlan] | None = None,
        params: NetworkParameters = LAN_2006,
        ipsec: bool = True,
        jitter_s: float = 0.0,
        tie_break_seed: int | None = None,
        vnodes: int = DEFAULT_VNODES,
    ):
        if names is None:
            if num_shards is None:
                raise ValueError("pass num_shards or names=...")
            names = shard_names(num_shards)
        elif num_shards is not None and num_shards != len(names):
            raise ValueError(f"num_shards={num_shards} but {len(names)} names")
        base = config if config is not None else GroupConfig(n)
        self.map = ShardMap(names, vnodes=vnodes)
        self.seed = seed
        self.colocate = colocate
        self.loop = EventLoop(
            tie_break_rng=(
                random.Random(f"{seed}/tie/{tie_break_seed}")
                if tie_break_seed is not None
                else None
            )
        )
        shared_hosts = (
            [_Host() for _ in range(base.num_processes)] if colocate else None
        )
        fault_plans = fault_plans or {}
        self.shards: list[LanSimulation] = []
        for index, shard_config in enumerate(sharded_configs(base, names)):
            self.shards.append(
                LanSimulation(
                    shard_config,
                    params=params,
                    ipsec=ipsec,
                    seed=seed,
                    fault_plan=fault_plans.get(index),
                    jitter_s=jitter_s,
                    loop=self.loop,
                    hosts=shared_hosts,
                )
            )
        self._registries: list[MetricsRegistry] = []

    @property
    def names(self) -> tuple[str, ...]:
        return self.map.names

    @property
    def config(self) -> GroupConfig:
        """Shard 0's config (every shard shares the same knobs)."""
        return self.shards[0].config

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, key_or_index: "str | bytes | int") -> LanSimulation:
        """The simulation owning a key (or at an explicit index)."""
        if isinstance(key_or_index, int):
            return self.shards[key_or_index]
        return self.shards[self.map.owner(key_or_index)]

    # -- observability -------------------------------------------------------

    def enable_metrics(self) -> list[MetricsRegistry]:
        """One shared registry per host position, with each shard's
        stack recording through a ``shard=<name>``-labeled view --
        exactly the layout a sharded process exports.
        """
        if not self._registries:
            self._registries = [
                MetricsRegistry(
                    clock=lambda: self.loop.now,
                    const_labels={"process": pid, "runtime": "sim"},
                )
                for pid in range(self.config.num_processes)
            ]
        for name, sim in zip(self.map.names, self.shards):
            sim.enable_metrics(
                registries=[
                    registry.labeled(shard=name) for registry in self._registries
                ]
            )
        return self._registries

    def attach_checkers(self, **kwargs) -> list:
        """One :class:`~repro.check.invariants.InvariantChecker` per
        shard, chained on the shared loop's ``on_event`` hook so every
        group's invariants are asserted after every event.  Call before
        creating protocol instances."""
        from repro.check.invariants import InvariantChecker

        return [InvariantChecker(sim, **kwargs) for sim in self.shards]

    def check_all(self, checkers: list) -> None:
        """Final full sweep across every shard's checker."""
        for checker in checkers:
            checker.check_all()

    # -- driving -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.now

    def run(
        self,
        until=None,
        max_time: float = 600.0,
        max_events: int | None = None,
    ) -> str:
        """Advance the shared loop; see :meth:`EventLoop.run`."""
        return self.loop.run(until=until, max_time=max_time, max_events=max_events)
