"""The routing tier: client operations onto the owning shard.

A gateway process hosts the replicated services of one or more shards
(usually all of them, via :class:`~repro.shard.node.ShardedNode`) and
routes every client operation by its key through the
:class:`~repro.shard.ring.ShardMap`.  Two failure shapes surface as
structured errors instead of silent misrouting:

- **wrong shard** -- the key's owner is a shard this process does not
  host.  The error carries the owner's index and name, so the gateway
  can answer the client with a redirect hint (``wrong-shard`` status)
  rather than a dead end.
- **cross-shard** -- a multi-key operation's keys span more than one
  shard.  Per the ROADMAP this is *forbidden and measured* first (no
  two-shard ordered commit yet): the error names every owner involved
  so clients and dashboards see exactly what a future cross-shard
  commit would have to coordinate.

The router is deliberately ignorant of what a "service" is -- it maps
``shard index -> anything`` -- so it carries
:class:`~repro.gateway.server.GatewayServices` without importing the
gateway (no dependency cycle), and tests can route onto plain dicts.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.shard.ring import ShardMap

#: Shard-map name used when a single unsharded service set is wrapped.
SINGLE_SHARD_NAME = "s0"


class WrongShardError(Exception):
    """The key's owning shard is not hosted here.

    Attributes:
        owner_index / owner_name: who does own the key -- the redirect
            hint the gateway forwards to the client.
    """

    def __init__(self, key: str, owner_index: int, owner_name: str):
        super().__init__(
            f"key {key!r} is owned by shard {owner_name!r} "
            f"(index {owner_index}), not hosted by this gateway"
        )
        self.key = key
        self.owner_index = owner_index
        self.owner_name = owner_name


class CrossShardError(WrongShardError):
    """A multi-key operation spans shards: forbidden (and measured).

    ``owner_index``/``owner_name`` carry the *first* key's owner as the
    redirect hint; :attr:`owners` lists every ``(index, name)`` involved.
    """

    def __init__(self, keys: Sequence[str], owners: Sequence[tuple[int, str]]):
        distinct = sorted(set(owners))
        Exception.__init__(
            self,
            f"cross-shard operation forbidden: {len(keys)} keys span "
            f"shards {[name for _, name in distinct]!r}",
        )
        self.key = keys[0] if keys else ""
        self.owner_index, self.owner_name = owners[0] if owners else (0, "")
        self.owners = distinct


class ShardRouter:
    """Key -> owning shard -> that shard's (locally hosted) services.

    Args:
        shard_map: the group's consistent-hash ring.  Index order must
            match the hosting transport's shard order
            (:attr:`ShardedNode.shard_stacks`).
        services: per-shard service objects, keyed by shard index.  A
            routing-only front (hosting nothing) passes ``{}``; a full
            host passes one entry per shard.
    """

    def __init__(self, shard_map: ShardMap, services: Mapping[int, Any]):
        for index in services:
            if not 0 <= index < len(shard_map):
                raise ValueError(
                    f"hosted shard index {index} out of range for "
                    f"{len(shard_map)} shards"
                )
        self.map = shard_map
        self.services: dict[int, Any] = dict(services)
        #: Operations refused for landing on an unhosted shard.
        self.wrong_shard_total = 0
        #: Multi-key operations refused for spanning shards.
        self.cross_shard_total = 0

    @classmethod
    def single(cls, services: Any) -> "ShardRouter":
        """Wrap one unsharded service set: every key owned, one shard."""
        return cls(ShardMap([SINGLE_SHARD_NAME]), {0: services})

    @property
    def is_single(self) -> bool:
        return len(self.map) == 1

    @property
    def hosted(self) -> list[int]:
        """Hosted shard indexes, ascending."""
        return sorted(self.services)

    def name_of(self, index: int) -> str:
        return self.map.names[index]

    def owner(self, key: str | bytes) -> int:
        return self.map.owner(key)

    def route(self, key: str) -> tuple[int, Any]:
        """The ``(shard index, services)`` owning *key*.

        Raises:
            WrongShardError: the owner is not hosted here (counted).
        """
        index = self.map.owner(key)
        services = self.services.get(index)
        if services is None:
            self.wrong_shard_total += 1
            raise WrongShardError(key, index, self.map.names[index])
        return index, services

    def route_many(self, keys: Sequence[str]) -> tuple[int, Any]:
        """Route a multi-key operation; every key must share one hosted
        owner.

        Raises:
            CrossShardError: the keys span shards (counted); the error
                lists every owner.
            WrongShardError: single owner, but not hosted here.
        """
        if not keys:
            raise ValueError("route_many needs at least one key")
        owners = [(self.map.owner(key), None) for key in keys]
        owners = [(index, self.map.names[index]) for index, _ in owners]
        if len({index for index, _ in owners}) > 1:
            self.cross_shard_total += 1
            raise CrossShardError(keys, owners)
        return self.route(keys[0])

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys-per-shard histogram (delegates to the map)."""
        return self.map.spread(keys)
