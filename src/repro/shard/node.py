"""One process hosting S RITAS stacks over shared TCP links.

A sharded deployment keeps the paper's topology -- n processes, one
authenticated link per ordered pair -- but each process runs one stack
*per shard*.  Everything heavy is shared: one listener socket, one
outbound connection and sender task per peer, one asyncio loop, one
:class:`~repro.obs.metrics.MetricsRegistry` (per-shard series live
behind a ``shard`` label), and one coalescing budget (the sender's
drain-batch merge packs *different shards'* units into the same batch
container, so S groups pay the per-write fixed costs once).

Wire multiplexing: shard 0's traffic flows untagged -- byte-identical
to a plain :class:`~repro.transport.tcp.RitasNode`, which also makes a
one-shard ``ShardedNode`` wire-compatible with unsharded peers -- and
shard i>0 units ride behind a 3-byte channel tag::

    0x53 ('S')  |  u16 shard index (big-endian)  |  stack channel unit

0x53 collides with neither ``FRAME_VERSION`` (0x01) nor the batch tag
(0x42), so the demultiplexer needs no length heuristics.  Inbound, the
host unpacks node-level batch containers itself and routes each member
to its owning stack; a member tagged for an unknown shard is dropped
and charged to the sending peer's misbehavior ledger (the link already
authenticated it).

Isolation between the hosted groups is the point: each shard's stack
has its own keystore, coin sequence, and RNG stream (all scoped by
``GroupConfig.group_tag``), so no shard can forge, replay, or bias
another's protocol traffic even though they share sockets.
"""

from __future__ import annotations

import asyncio
import random
import struct
import time
from typing import Sequence

from repro.core.config import GroupConfig
from repro.core.errors import ConfigurationError, WireFormatError
from repro.core.stack import ProtocolFactory, Stack
from repro.core.wire import decode_batch_views, is_batch
from repro.crypto.coin import CoinSource, SharedCoinDealer
from repro.crypto.keys import KeyStore, TrustedDealer
from repro.obs.metrics import MetricsRegistry
from repro.shard.sim import sharded_configs
from repro.transport.tcp import PeerAddress, RitasNode

#: First byte of a shard-tagged channel unit ('S'); must stay disjoint
#: from FRAME_VERSION (0x01) and the batch tag (0x42).
SHARD_TAG = 0x53
_TAG = struct.Struct(">BH")
_TAG_LEN = _TAG.size


def tag_unit(shard_index: int, unit: bytes) -> bytes:
    """Wrap a stack channel unit for transport to the peer's demux."""
    return _TAG.pack(SHARD_TAG, shard_index) + unit


def default_keystores(
    configs: Sequence[GroupConfig], seed: int, process_id: int
) -> list[KeyStore]:
    """Per-shard keystores from per-shard trusted dealers, seed-scoped by
    each config's ``group_tag`` (mirrors the simulator's dealer)."""
    return [
        TrustedDealer(
            config.num_processes,
            seed=config.scoped_seed_bytes(str(seed).encode()),
        ).keystore_for(process_id)
        for config in configs
    ]


class ShardedNode(RitasNode):
    """A :class:`RitasNode` hosting one stack per shard.

    ``self.stack`` remains shard 0's stack, so every single-stack
    consumer of the base class (gateway attachment, recovery, link
    gates) works unchanged against shard 0; the rest live in
    :attr:`shard_stacks`.

    Args:
        configs: one group config per shard -- same ``n`` and batching
            knobs, pairwise-distinct ``group_tag`` (build them with
            :func:`make_shard_configs`).
        process_id, addresses, connect_retry_s, seed: as in the base
            class.  The link codecs authenticate with shard 0's
            keystore (one link, one pairwise key; per-shard protocol
            MACs are inside the payload).
        keystores: per-shard protocol keystores; default derives them
            from *seed* via :func:`default_keystores`.
        factories: per-shard protocol registries (fault injection).
        coins: per-shard explicit coin sources; shards configured with
            ``bc_coin="shared"`` and no explicit coin derive their own
            tag-scoped dealer from *seed*, exactly like the base class.
    """

    def __init__(
        self,
        configs: Sequence[GroupConfig],
        process_id: int,
        addresses: list[PeerAddress],
        keystores: Sequence[KeyStore] | None = None,
        *,
        factories: "Sequence[ProtocolFactory | None] | None" = None,
        connect_retry_s: float | None = None,
        seed: int | None = None,
        coins: "Sequence[CoinSource | None] | None" = None,
    ):
        configs = list(configs)
        if not configs:
            raise ConfigurationError("a sharded node hosts at least one shard")
        tags = [config.group_tag for config in configs]
        if len(set(tags)) != len(tags):
            raise ConfigurationError(f"shard group_tags must be distinct: {tags!r}")
        for config in configs[1:]:
            if config.num_processes != configs[0].num_processes:
                raise ConfigurationError(
                    "every hosted shard must have the same group size"
                )
        if keystores is None:
            if seed is None:
                raise ConfigurationError(
                    "pass per-shard keystores or a seed to derive them from"
                )
            keystores = default_keystores(configs, seed, process_id)
        keystores = list(keystores)
        if len(keystores) != len(configs):
            raise ConfigurationError("need one keystore per shard")
        factories = list(factories) if factories is not None else [None] * len(configs)
        coins = list(coins) if coins is not None else [None] * len(configs)
        self.shard_names: tuple[str, ...] = tuple(
            tag if tag else f"s{index}" for index, tag in enumerate(tags)
        )
        super().__init__(
            configs[0],
            process_id,
            addresses,
            keystores[0],
            factory=factories[0],
            connect_retry_s=connect_retry_s,
            seed=seed,
            coin=coins[0],
        )
        #: One stack per shard; ``shard_stacks[0] is self.stack``.
        self.shard_stacks: list[Stack] = [self.stack]
        self._base_registry: MetricsRegistry | None = None
        #: Inbound units dropped for carrying an unknown shard index.
        self.frames_unknown_shard = 0
        for index in range(1, len(configs)):
            config = configs[index]
            coin = coins[index]
            if coin is None and config.bc_coin == "shared":
                if seed is None:
                    raise ConfigurationError(
                        "config.bc_coin='shared' needs either an explicit coin "
                        "or a seed to derive the group's dealer secret from"
                    )
                dealer = SharedCoinDealer(
                    secret=config.scoped_seed(
                        f"ritas-coin/{seed}/{config.num_processes}"
                    ).encode()
                )
                coin = dealer.coin_for(process_id)
            rng = (
                random.Random(
                    config.scoped_seed(
                        f"ritas/{seed}/{config.num_processes}/{process_id}"
                    )
                )
                if seed is not None
                else random.Random()
            )
            self.shard_stacks.append(
                Stack(
                    config,
                    process_id,
                    outbox=self._shard_outbox(index),
                    keystore=keystores[index],
                    clock=time.monotonic,
                    factory=factories[index],
                    rng=rng,
                    coin=coin,
                )
            )

    @property
    def num_shards(self) -> int:
        return len(self.shard_stacks)

    def stack_for(self, index: int) -> Stack:
        return self.shard_stacks[index]

    # -- outbound ------------------------------------------------------------

    def _shard_outbox(self, index: int):
        def outbox(dest: int, data: bytes) -> None:
            if self._closed:
                return
            stack = self.shard_stacks[index]
            if dest == self.process_id:
                # Loopback stays in-process and untagged, like the base.
                asyncio.get_event_loop().call_soon(
                    stack.receive, self.process_id, data
                )
                return
            self._enqueue_unit(stack, dest, tag_unit(index, data))

        return outbox

    # -- inbound -------------------------------------------------------------

    def _dispatch_inbound(self, src: int, payload: bytes) -> None:
        # Node-level batch containers may interleave units from several
        # shards (the sender merges across stacks); unpack here and
        # route each member.  Untagged members are shard 0's -- its
        # stack handles any *stack-level* batch nesting itself.
        if is_batch(payload):
            try:
                views = decode_batch_views(payload)
            except WireFormatError:
                self.frames_rejected += 1
                self._report_link_misbehavior(src)
                return
            for view in views:
                self._dispatch_unit(src, bytes(view))
        else:
            self._dispatch_unit(src, payload)

    def _dispatch_unit(self, src: int, unit: bytes) -> None:
        if unit[:1] == b"\x53" and len(unit) >= _TAG_LEN:
            _, index = _TAG.unpack_from(unit)
            if index >= len(self.shard_stacks):
                # An authenticated peer sent a shard we do not host:
                # misconfiguration or misbehavior either way.
                self.frames_unknown_shard += 1
                self.frames_rejected += 1
                self._report_link_misbehavior(src)
                return
            self.shard_stacks[index].receive(src, unit[_TAG_LEN:])
        else:
            self.stack.receive(src, unit)

    def _report_link_misbehavior(self, pid: int) -> None:
        # The link is shared infrastructure: a corrupted or hijacked
        # session threatens every hosted group equally, so each shard's
        # ledger records the offense.
        for stack in self.shard_stacks:
            stack.report_misbehavior(pid, "mac-failure")

    # -- metrics -------------------------------------------------------------

    def enable_metrics(
        self, sample_interval_s: float | None = None
    ) -> MetricsRegistry:
        """One registry for the whole process; each shard's stack
        records through a ``shard=<name>``-labeled view of it."""
        if self._base_registry is None and not self.stack.metrics.enabled:
            registry = MetricsRegistry(
                clock=time.monotonic,
                const_labels={"process": self.process_id, "runtime": "tcp"},
            )
            self._base_registry = registry
            for name, stack in zip(self.shard_names, self.shard_stacks):
                stack.metrics = registry.labeled(shard=name)
        if sample_interval_s is not None:
            self.add_ticker(sample_interval_s, self.sample_metrics)
        return (
            self._base_registry
            if self._base_registry is not None
            else self.stack.metrics
        )

    def sample_metrics(self) -> None:
        if not self.stack.metrics.enabled:
            return
        for stack in self.shard_stacks:
            stack.sample_gauges()
        registry = (
            self._base_registry
            if self._base_registry is not None
            else self.stack.metrics
        )
        for pid, channel in self._send_queues.items():
            registry.gauge("ritas_send_queue_frames", peer=pid).set(len(channel))
            registry.gauge("ritas_send_queue_bytes", peer=pid).set(channel.bytes)


def make_shard_configs(base: GroupConfig, names: Sequence[str]) -> list[GroupConfig]:
    """Per-shard configs for a :class:`ShardedNode` (re-export of
    :func:`repro.shard.sim.sharded_configs` for symmetry)."""
    return sharded_configs(base, names)
