"""The client gateway: thousands of sessions multiplexed onto one replica.

This is the front door the paper's evaluation never needed (its clients
were the harness itself) and the ROADMAP's "heavy traffic" story does:
an asyncio server riding on a :class:`~repro.transport.tcp.RitasNode`
that

- speaks the length-prefixed client protocol of
  :mod:`repro.gateway.protocol` to any number of concurrent sessions;
- pipelines each read-wakeup's worth of client operations into atomic
  broadcast through the stack's coalescing window, so a burst of client
  requests costs one batched submission, not one channel unit each;
- maps the replica's admission control (``config.ab_pending_cap`` ->
  :class:`~repro.core.errors.BackpressureError`) onto structured
  ``retry-after`` responses instead of letting overload grow queues;
- serves ``get`` either **ordered** (default: the read is a no-op
  command ordered through atomic broadcast and answered from the state
  at its serialization point -- every session sees reads and writes in
  one total order) or **local** (staleness-tolerant: answered from the
  local replica's current state, no ordering cost);
- exposes an HTTP status endpoint (:mod:`repro.gateway.http`) with the
  Prometheus exposition plus gateway gauges.

Write correlation uses the atomic-broadcast message id: every ordered
submission returns its ``(sender, rbid)`` and the state machine's
``on_applied`` hook reports that id back at apply time, so responses
are matched exactly -- never by submission order, which asynchrony is
allowed to permute.  The pending table keys the id together with the
service name, because the kv and lock RSMs ride independent AB
instances whose rbid counters overlap.  The id is echoed to the client in
every ``ok`` detail, which is what lets a load generator audit "zero
lost or duplicated acknowledged writes" against the replicated log.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.apps.kv_store import KvCommand, ReplicatedKvStore
from repro.apps.lock_service import DistributedLockService
from repro.apps.state_machine import Command, ReplicatedStateMachine
from repro.core.stack import Stack
from repro.gateway.protocol import (
    READ_OPS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_RETRY,
    STATUS_WRONG_SHARD,
    UNCORRELATED_ID,
    ClientProtocolError,
    FrameReader,
    decode_request,
    encode_response,
)
from repro.shard.ring import ShardMap
from repro.shard.router import ShardRouter, WrongShardError
from repro.transport.tcp import RitasNode

logger = logging.getLogger(__name__)

#: Gateway metric names (the ``gateway_*`` family; see docs/API.md).
METRIC_OPS = "gateway_ops_total"
METRIC_OP_LATENCY = "gateway_op_latency_seconds"
METRIC_SESSIONS_OPEN = "gateway_sessions_open"
METRIC_SESSIONS_TOTAL = "gateway_sessions_total"
METRIC_INFLIGHT = "gateway_inflight_ops"
METRIC_SEND_QUEUE = "gateway_send_queue_frames"
METRIC_SESSIONS_DROPPED = "gateway_sessions_dropped_total"
METRIC_INTERNAL_ERRORS = "gateway_internal_errors_total"

#: Path prefix of the gateway's replicated services on every replica's
#: stack (all replicas must host the same service instances).
SERVICE_PATH_KV = ("gw", "kv")
SERVICE_PATH_LOCK = ("gw", "lock")


@dataclass
class GatewayServices:
    """The replicated services a gateway fronts.

    Every replica of the group attaches the same services (writes apply
    group-wide); the gateway rides on one -- or several, each with its
    own gateway -- of them.
    """

    kv: ReplicatedKvStore
    locks: DistributedLockService

    @classmethod
    def attach(cls, node: RitasNode) -> "GatewayServices":
        return cls.attach_stack(node.stack)

    @classmethod
    def attach_stack(cls, stack: Stack) -> "GatewayServices":
        """Attach the service pair to one stack -- per shard stack on a
        sharded host (every shard's AB instances live at the same paths;
        the stacks are independent, so the paths never collide)."""
        return cls(
            kv=ReplicatedKvStore(stack.create("ab", SERVICE_PATH_KV)),
            locks=DistributedLockService(stack.create("ab", SERVICE_PATH_LOCK)),
        )


def attach_router(
    node: RitasNode,
    shard_map: ShardMap,
    hosted: "list[int] | None" = None,
) -> ShardRouter:
    """Attach gateway services to every hosted shard of *node* and wrap
    them in a :class:`~repro.shard.router.ShardRouter`.

    *node* is usually a :class:`~repro.shard.ShardedNode` whose shard
    order matches *shard_map*'s name order; a plain node hosts shard 0
    only.  *hosted* restricts which shards this gateway fronts (default:
    every stack the node runs) -- operations owned by unhosted shards
    are answered ``wrong-shard`` with the owner hint.
    """
    stacks: list[Stack] = getattr(node, "shard_stacks", None) or [node.stack]
    if len(stacks) > len(shard_map):
        raise ValueError(
            f"node hosts {len(stacks)} shards but the map names {len(shard_map)}"
        )
    if hosted is None:
        hosted = list(range(len(stacks)))
    services = {index: GatewayServices.attach_stack(stacks[index]) for index in hosted}
    return ShardRouter(shard_map, services)


class _Session:
    """One client connection: its stream, send queue and reader task."""

    __slots__ = (
        "sid",
        "reader",
        "writer",
        "frames",
        "sendq",
        "send_event",
        "inflight",
        "reader_task",
        "writer_task",
        "closed",
    )

    def __init__(self, sid: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.sid = sid
        self.reader = reader
        self.writer = writer
        self.frames = FrameReader()
        self.sendq: deque[bytes] = deque()
        self.send_event = asyncio.Event()
        self.inflight = 0
        self.reader_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        self.closed = False

    def send(self, data: bytes) -> None:
        if self.closed:
            return
        self.sendq.append(data)
        self.send_event.set()


class _PendingOp:
    """One ordered operation awaiting its totally-ordered apply."""

    __slots__ = ("sid", "request_id", "op", "key", "submitted_at")

    def __init__(self, sid: int, request_id: int, op: str, key: str | None, submitted_at: float):
        self.sid = sid
        self.request_id = request_id
        self.op = op
        self.key = key
        self.submitted_at = submitted_at


class ClientGateway:
    """The gateway server attached to one replica.

    Args:
        node: the replica this gateway rides on (must be started by the
            caller; the gateway shares its event loop and stack).  A
            :class:`~repro.shard.ShardedNode` hosts one stack per shard.
        services: the replicated services to front -- either one
            :class:`GatewayServices` (unsharded; attach the same
            services on every replica) or a
            :class:`~repro.shard.router.ShardRouter` (from
            :func:`attach_router`), in which case every client op is
            demultiplexed to the shard owning its key and ops owned by
            unhosted shards are answered ``wrong-shard`` with the
            ``[owner_index, owner_name, message]`` redirect hint.
            Multi-key ops (``mput``) whose keys span shards are
            *forbidden* and answered the same way (cross-shard commits
            are measured, not executed; see ROADMAP).
        local_reads: serve ``get`` from the local replica's current
            state instead of ordering it -- cheap but stale by up to the
            replica's delivery lag; see docs/GATEWAY.md for the caveats.
        max_sessions: admission bound on concurrent client sessions;
            connections past it are refused at accept.
        session_send_queue: per-session cap on queued response frames; a
            client that stops reading past it is disconnected (same
            memory-bounding posture as the replica send queues).
        op_timeout_s: ordered operations not applied within this window
            are answered ``error`` and dropped from the pending table
            (they may still apply later -- the id was admitted; this
            bounds gateway memory, not the protocol).
        retry_after_ms: base client backoff hint attached to
            ``retry-after`` responses, scaled by how overloaded the
            admission bound is.
    """

    def __init__(
        self,
        node: RitasNode,
        services: "GatewayServices | ShardRouter",
        *,
        local_reads: bool = False,
        max_sessions: int = 10_000,
        session_send_queue: int = 1024,
        op_timeout_s: float = 30.0,
        retry_after_ms: int = 50,
        sweep_interval_s: float = 1.0,
    ):
        self.node = node
        #: The routing tier; a plain service pair is wrapped as a
        #: single-shard router, so there is exactly one request path.
        self.router: ShardRouter = (
            services
            if isinstance(services, ShardRouter)
            else ShardRouter.single(services)
        )
        if not self.router.services:
            raise ValueError("gateway needs at least one hosted shard")
        #: First hosted shard's services (unsharded callers see their
        #: original object here).
        self.services: GatewayServices = self.router.services[self.router.hosted[0]]
        # The stacks whose coalescing windows bracket request handling;
        # on a sharded node each hosted shard contributes its own.
        node_stacks: list[Stack] = getattr(node, "shard_stacks", None) or [node.stack]
        self._hosted_stacks: list[Stack] = [
            node_stacks[index] if index < len(node_stacks) else node.stack
            for index in self.router.hosted
        ]
        self.local_reads = local_reads
        self.max_sessions = max_sessions
        self.session_send_queue = session_send_queue
        self.op_timeout_s = op_timeout_s
        self.retry_after_ms = retry_after_ms
        self.sweep_interval_s = sweep_interval_s
        self._server: asyncio.base_events.Server | None = None
        self._http_server: asyncio.base_events.Server | None = None
        self._sessions: dict[int, _Session] = {}
        #: Keyed by (shard index, service name, AB msg_id).  The service
        #: name matters: kv and locks are independent AtomicBroadcast
        #: instances whose rbid counters both start at 0, so a bare
        #: (sender, rbid) is NOT unique across them -- a pipelined first
        #: put and first acquire would collide and settle each other's
        #: requests.  The shard index matters for the same reason one
        #: level up: every shard's kv instance also numbers from 0.
        self._pending: dict[tuple[int, str, tuple[int, int]], _PendingOp] = {}
        self._next_sid = 0
        self._sweep_task: asyncio.Task | None = None
        self._closed = False
        #: Lifetime counters (served regardless of metrics being on).
        self.ops_ok = 0
        self.ops_retry_after = 0
        self.ops_error = 0
        self.ops_timeout = 0
        self.ops_wrong_shard = 0
        self.sessions_total = 0
        self.sessions_dropped = 0
        #: Failures attributed inside gateway plumbing (see
        #: :meth:`_internal_error`) -- never silently swallowed.
        self.internal_errors = 0
        self._logged_error_types: set[tuple[str, str]] = set()
        self._clock = time.monotonic
        for shard_index in self.router.hosted:
            shard_services = self.router.services[shard_index]
            self._chain_applied(shard_index, "kv", shard_services.kv.rsm)
            self._chain_applied(shard_index, "locks", shard_services.locks.rsm)

    # -- lifecycle ----------------------------------------------------------------

    async def listen(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the client listener; returns the bound port."""
        if self._server is not None:
            raise RuntimeError("gateway already listening")
        self._server = await asyncio.start_server(self._on_client, host=host, port=port)
        self._sweep_task = asyncio.create_task(self._sweep())
        return self._server.sockets[0].getsockname()[1]

    async def listen_http(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the HTTP status endpoint; returns the bound port."""
        from repro.gateway.http import serve_status

        if self._http_server is not None:
            raise RuntimeError("status endpoint already listening")
        self._http_server = await serve_status(self, host=host, port=port)
        return self._http_server.sockets[0].getsockname()[1]

    @property
    def bound_port(self) -> int:
        if self._server is None:
            raise RuntimeError("gateway is not listening yet")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, drop every session, cancel every task.

        Idempotent, and clean by design: every task the gateway created
        is cancelled and awaited, every stream closed -- no "task was
        destroyed but it is pending" at interpreter exit.
        """
        if self._closed:
            return
        self._closed = True
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
        if self._sweep_task is not None:
            self._sweep_task.cancel()
        tasks: list[asyncio.Task] = [self._sweep_task] if self._sweep_task else []
        for session in list(self._sessions.values()):
            tasks.extend(self._teardown_session(session))
        self._sessions.clear()
        self._pending.clear()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for server in (self._server, self._http_server):
            if server is not None:
                await server.wait_closed()
        self._server = None
        self._http_server = None

    async def __aenter__(self) -> "ClientGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- session management --------------------------------------------------------

    @property
    def sessions_open(self) -> int:
        return len(self._sessions)

    @property
    def inflight_ops(self) -> int:
        return len(self._pending)

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closed or len(self._sessions) >= self.max_sessions:
            # Session admission: refuse at accept rather than degrade
            # every established session.
            writer.close()
            return
        sid = self._next_sid
        self._next_sid += 1
        session = _Session(sid, reader, writer)
        self._sessions[sid] = session
        self.sessions_total += 1
        metrics = self.node.stack.metrics
        if metrics.enabled:
            metrics.counter(METRIC_SESSIONS_TOTAL).inc()
        session.writer_task = asyncio.create_task(self._session_writer(session))
        # The reader runs in the server's handler task itself.
        session.reader_task = asyncio.current_task()
        try:
            while not self._closed and not session.closed:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    frames = session.frames.feed(data)
                except ClientProtocolError as exc:
                    logger.debug("gateway s%d: bad framing: %s", sid, exc)
                    break
                if frames:
                    self._handle_frames(session, frames)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError):
            pass
        finally:
            for task in self._teardown_session(session):
                if task is not asyncio.current_task():
                    task.cancel()

    def _internal_error(self, context: str, exc: BaseException) -> None:
        """Account a failure inside gateway plumbing instead of
        swallowing it.

        Every occurrence increments :attr:`internal_errors` and the
        ``gateway_internal_errors_total`` counter (labeled by *context*
        and exception type); each distinct (context, type) pair is
        logged once with its detail, so a repeating failure is loud in
        the log exactly once and fully visible in the counters --
        silent drops are how the PR 7 correlation bug class hid.
        """
        self.internal_errors += 1
        error_type = type(exc).__name__
        metrics = self.node.stack.metrics
        if metrics.enabled:
            metrics.counter(
                METRIC_INTERNAL_ERRORS, context=context, error=error_type
            ).inc()
        key = (context, error_type)
        if key not in self._logged_error_types:
            self._logged_error_types.add(key)
            logger.warning(
                "gateway internal error in %s: %s: %s "
                "(logged once per error type; see %s)",
                context,
                error_type,
                exc,
                METRIC_INTERNAL_ERRORS,
            )

    def _teardown_session(self, session: _Session) -> list[asyncio.Task]:
        """Mark *session* closed and return its tasks for cancellation."""
        session.closed = True
        session.send_event.set()  # wake the writer so it can exit
        self._sessions.pop(session.sid, None)
        try:
            session.writer.close()
        except Exception as exc:
            # A transport refusing to close is survivable -- the session
            # is gone either way -- but never silently: attribute it.
            self._internal_error("session-teardown", exc)
        tasks = []
        for task in (session.reader_task, session.writer_task):
            if task is not None and not task.done():
                tasks.append(task)
        return tasks

    async def _session_writer(self, session: _Session) -> None:
        """Drain one session's response queue to its socket.

        Mirrors the replica transport's drain-once leaning: everything
        queued leaves in one flush, and the (possibly blocking)
        flow-control drain is awaited once per wakeup.
        """
        try:
            while not session.closed:
                await session.send_event.wait()
                if session.closed:
                    break
                while session.sendq:
                    session.writer.write(session.sendq.popleft())
                session.send_event.clear()
                await session.writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError):
            session.closed = True

    # -- request handling ------------------------------------------------------------

    def _handle_frames(self, session: _Session, frames: list[bytes]) -> None:
        """Process one read-wakeup's worth of pipelined requests.

        All submissions triggered here share one coalescing window per
        hosted shard, so each replica stack sends them as batched
        channel units -- this is where client pipelining turns into
        atomic-broadcast batching.  On a sharded node the windows of
        every hosted stack are opened together: one wakeup's requests
        batch per shard, and the transport's drain-batch merge then
        packs the *shards'* units into shared link batches.
        """
        with contextlib.ExitStack() as windows:
            for stack in self._hosted_stacks:
                windows.enter_context(stack.coalesce())
            for body in frames:
                self._handle_request(session, body)

    def _handle_request(self, session: _Session, body: bytes) -> None:
        now = self._clock()
        try:
            request_id, op, args = decode_request(body)
        except ClientProtocolError as exc:
            # Echo the recovered request id when the decoder salvaged
            # one; otherwise the reserved UNCORRELATED_ID sentinel --
            # never 0, which is a legitimate (and common) client id.
            rid = exc.request_id if exc.request_id is not None else UNCORRELATED_ID
            self._respond(session, rid, STATUS_ERROR, str(exc), op="?", started=now)
            return
        if op == "ping":
            self._respond(session, request_id, STATUS_OK, [None, None, "pong"], op=op, started=now)
            return
        try:
            shard, command, key, service, rsm = self._build_command(session, op, args)
        except WrongShardError as exc:
            # Forbid-and-measure: the op was NOT replicated.  The owner
            # hint lets the client redirect (or, for a cross-shard
            # multi-key op, split) instead of retrying blindly.
            detail = [exc.owner_index, exc.owner_name, str(exc)]
            self._respond(session, request_id, STATUS_WRONG_SHARD, detail, op=op, started=now)
            return
        except ClientProtocolError as exc:
            self._respond(session, request_id, STATUS_ERROR, str(exc), op=op, started=now)
            return
        if op in READ_OPS and self.local_reads:
            value = self.router.services[shard].kv.get(key)
            self._respond(session, request_id, STATUS_OK, [None, None, value], op=op, started=now)
            return
        msg_id = rsm.try_submit(command)
        if msg_id is None:
            pending, cap = rsm.admission()
            # Scale the backoff hint by how far past the bound the
            # replica is: a deeply backed-up replica asks for more air.
            # Admission is per shard -- one backed-up shard sheds its
            # own load while its siblings keep accepting.
            factor = 1 + (pending // cap if cap else 0)
            detail = [pending, cap, self.retry_after_ms * factor]
            self._respond(session, request_id, STATUS_RETRY, detail, op=op, started=now)
            return
        session.inflight += 1
        self._pending[(shard, service, msg_id)] = _PendingOp(
            session.sid, request_id, op, key, now
        )

    def _build_command(
        self, session: _Session, op: str, args: list[Any]
    ) -> tuple[int, Command, str | None, str, ReplicatedStateMachine]:
        """Translate one client request into a replicated command on the
        owning shard.

        Returns ``(shard, command, key, service, rsm)`` -- *shard* and
        *service* ("kv"/"locks") key the pending table alongside the AB
        msg_id, which is only unique per AB instance.  Lock names route
        exactly like KV keys (a lock lives on the shard owning its
        name), so lock safety stays single-stream per lock.

        Type errors are rejected *here*, with a message, rather than
        ordered and no-opped by the state machine's defensive apply;
        routing errors raise :class:`WrongShardError` (the caller turns
        them into ``wrong-shard`` responses, never submissions).
        """
        if op == "put":
            key, value = args
            if not isinstance(key, str) or not isinstance(value, bytes):
                raise ClientProtocolError("put takes (str key, bytes value)")
            shard, services = self.router.route(key)
            return shard, KvCommand.put(key, value), key, "kv", services.kv.rsm
        if op == "get":
            (key,) = args
            if not isinstance(key, str):
                raise ClientProtocolError("get takes (str key)")
            # Ordered read: an op the KV apply function treats as a
            # deterministic no-op; the gateway answers from the state at
            # its serialization point (total per shard -- exactly the
            # consistency sharding promises: per-key order, no
            # cross-shard order).
            shard, services = self.router.route(key)
            return shard, Command("get", [key]), key, "kv", services.kv.rsm
        if op == "delete":
            (key,) = args
            if not isinstance(key, str):
                raise ClientProtocolError("delete takes (str key)")
            shard, services = self.router.route(key)
            return shard, KvCommand.delete(key), key, "kv", services.kv.rsm
        if op == "cas":
            key, expected, value = args
            if (
                not isinstance(key, str)
                or not (expected is None or isinstance(expected, bytes))
                or not isinstance(value, bytes)
            ):
                raise ClientProtocolError("cas takes (str, bytes|None, bytes)")
            shard, services = self.router.route(key)
            return shard, KvCommand.cas(key, expected, value), key, "kv", services.kv.rsm
        if op == "mput":
            (pairs,) = args
            if (
                not isinstance(pairs, list)
                or not pairs
                or not all(
                    isinstance(pair, list)
                    and len(pair) == 2
                    and isinstance(pair[0], str)
                    and isinstance(pair[1], bytes)
                    for pair in pairs
                )
            ):
                raise ClientProtocolError(
                    "mput takes a non-empty list of [str key, bytes value] pairs"
                )
            keys = [pair[0] for pair in pairs]
            # All keys must share one hosted owner; spanning shards
            # raises CrossShardError (a WrongShardError) -- forbidden
            # and measured, never partially applied.
            shard, services = self.router.route_many(keys)
            command = KvCommand.mput([(k, v) for k, v in pairs])
            return shard, command, keys[0], "kv", services.kv.rsm
        if op in ("acquire", "release"):
            name, tag = args
            if not isinstance(name, str) or not isinstance(tag, str):
                raise ClientProtocolError(f"{op} takes (str name, str tag)")
            shard, services = self.router.route(name)
            locks = services.locks.rsm
            # Lock identity is (replica, tag); scope the tag to this
            # session so independent clients sharing the gateway never
            # alias each other's holdership.
            scoped = f"s{session.sid}:{tag}"
            command = Command(op, [name, locks.replica_id, scoped])
            return shard, command, name, "locks", locks
        raise ClientProtocolError(f"unknown op {op!r}")

    # -- completion ------------------------------------------------------------------

    def _chain_applied(
        self, shard: int, service: str, rsm: ReplicatedStateMachine
    ) -> None:
        """Hook *rsm*'s apply stream without displacing existing hooks
        (the lock service installs its own ``on_applied``).  *shard* and
        *service* disambiguate the pending table: each RSM's AB instance
        numbers its rbids independently, so msg_ids alone collide both
        across services and across shards.
        """
        previous = rsm.on_applied

        def on_applied(delivery, command: Command, result: Any) -> None:
            if previous is not None:
                previous(delivery, command, result)
            self._on_applied(shard, service, delivery, command, result)

        rsm.on_applied = on_applied

    def _on_applied(
        self, shard: int, service: str, delivery, command: Command, result: Any
    ) -> None:
        if delivery.sender != self.node.process_id:
            return
        pending = self._pending.pop((shard, service, delivery.msg_id), None)
        if pending is None:
            return
        session = self._sessions.get(pending.sid)
        if session is None:
            return
        session.inflight -= 1
        if pending.op == "get":
            # The read's serialization point is *this* apply: the owning
            # shard's local state now reflects every write ordered
            # before it on that shard's stream.
            result = self.router.services[shard].kv.get(pending.key)
        detail = [delivery.sender, delivery.rbid, result]
        self._respond(
            session,
            pending.request_id,
            STATUS_OK,
            detail,
            op=pending.op,
            started=pending.submitted_at,
        )

    def _respond(
        self,
        session: _Session,
        request_id: int,
        status: str,
        detail: Any,
        *,
        op: str,
        started: float,
    ) -> None:
        if status == STATUS_OK:
            self.ops_ok += 1
        elif status == STATUS_RETRY:
            self.ops_retry_after += 1
        elif status == STATUS_WRONG_SHARD:
            self.ops_wrong_shard += 1
        else:
            self.ops_error += 1
        metrics = self.node.stack.metrics
        if metrics.enabled:
            metrics.counter(METRIC_OPS, op=op, status=status).inc()
            metrics.histogram(METRIC_OP_LATENCY, op=op).observe(self._clock() - started)
        session.send(encode_response(request_id, status, detail))
        if len(session.sendq) > self.session_send_queue:
            # A client that stopped reading is shedding its own session,
            # not this process's memory.
            self.sessions_dropped += 1
            if metrics.enabled:
                metrics.counter(METRIC_SESSIONS_DROPPED).inc()
            for task in self._teardown_session(session):
                task.cancel()

    # -- maintenance -----------------------------------------------------------------

    async def _sweep(self) -> None:
        """Periodic upkeep: expire stuck ordered ops, refresh gauges."""
        try:
            while not self._closed:
                await asyncio.sleep(self.sweep_interval_s)
                self._expire_pending()
                self.sample_gauges()
        except asyncio.CancelledError:
            pass

    def _expire_pending(self) -> None:
        if not self._pending:
            return
        deadline = self._clock() - self.op_timeout_s
        expired = [
            (key, op) for key, op in self._pending.items()
            if op.submitted_at <= deadline
        ]
        for key, pending in expired:
            del self._pending[key]
            self.ops_timeout += 1
            session = self._sessions.get(pending.sid)
            if session is None:
                continue
            session.inflight -= 1
            self._respond(
                session,
                pending.request_id,
                STATUS_ERROR,
                "timeout",
                op=pending.op,
                started=pending.submitted_at,
            )

    def sample_gauges(self) -> None:
        """Refresh the gateway gauges (a no-op with metrics disabled)."""
        metrics = self.node.stack.metrics
        if not metrics.enabled:
            return
        metrics.gauge(METRIC_SESSIONS_OPEN).set(len(self._sessions))
        metrics.gauge(METRIC_INFLIGHT).set(len(self._pending))
        metrics.gauge(METRIC_SEND_QUEUE).set(
            sum(len(s.sendq) for s in self._sessions.values())
        )

    def status(self) -> dict[str, Any]:
        """JSON-ready snapshot served by the HTTP status endpoint."""

        # Admission is per (shard, service): every shard's kv and locks
        # ride independent AB instances, each with its own pending count
        # against the configured cap -- retry-afters come from whichever
        # refused, and one backed-up shard never throttles its siblings.
        def _admission(services: GatewayServices) -> dict[str, dict[str, int]]:
            return {
                service: dict(zip(("pending", "cap"), rsm.admission()))
                for service, rsm in (
                    ("kv", services.kv.rsm),
                    ("locks", services.locks.rsm),
                )
            }

        status: dict[str, Any] = {
            "process": self.node.process_id,
            "group_size": self.node.config.num_processes,
            "local_reads": self.local_reads,
            "sessions_open": len(self._sessions),
            "sessions_total": self.sessions_total,
            "sessions_dropped": self.sessions_dropped,
            "inflight_ops": len(self._pending),
            "ops_ok": self.ops_ok,
            "ops_retry_after": self.ops_retry_after,
            "ops_error": self.ops_error,
            "ops_timeout": self.ops_timeout,
            "internal_errors": self.internal_errors,
            # The first hosted shard's admission keeps the pre-sharding
            # shape (unsharded deployments are exactly this).
            "admission": _admission(self.services),
        }
        if not self.router.is_single:
            status["shards"] = {
                "names": list(self.router.map.names),
                "hosted": [self.router.name_of(i) for i in self.router.hosted],
                "ops_wrong_shard": self.ops_wrong_shard,
                "wrong_shard_total": self.router.wrong_shard_total,
                "cross_shard_total": self.router.cross_shard_total,
                "admission": {
                    self.router.name_of(index): _admission(services)
                    for index, services in sorted(self.router.services.items())
                },
            }
        return status
