"""HTTP status endpoint riding on the gateway.

A deliberately tiny HTTP/1.0-style responder (no framework, no
keep-alive) in the spirit of a monitoring web tier riding on an async
node: enough for a Prometheus scraper, a load balancer health check and
a human with ``curl``.

Routes::

    GET /metrics   Prometheus text exposition 0.0.4 of the replica's
                   registry -- protocol metrics plus the gateway_* family
                   (gauges freshly sampled per scrape)
    GET /status    JSON gateway snapshot (sessions, in-flight ops,
                   admission state)
    GET /healthz   200 "ok" while the gateway accepts sessions

Anything else is 404; non-GET methods are 405.  One request per
connection: parse, respond, close.
"""

from __future__ import annotations

import asyncio
import json
import logging

from repro.obs.export import to_prometheus

logger = logging.getLogger(__name__)

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 64


def _response(
    status: str, body: bytes, content_type: str = "text/plain; charset=utf-8"
) -> bytes:
    head = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def render(gateway, target: str, method: str = "GET") -> bytes:
    """Build the full HTTP response bytes for one request."""
    if method != "GET":
        return _response("405 Method Not Allowed", b"GET only\n")
    path = target.split("?", 1)[0]
    if path == "/metrics":
        gateway.node.sample_metrics()
        gateway.sample_gauges()
        registry = gateway.node.stack.metrics
        text = to_prometheus([registry]) if registry.enabled else ""
        return _response(
            "200 OK", text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )
    if path == "/status":
        body = json.dumps(gateway.status(), sort_keys=True).encode("utf-8") + b"\n"
        return _response("200 OK", body, "application/json")
    if path == "/healthz":
        return _response("200 OK", b"ok\n")
    return _response("404 Not Found", b"routes: /metrics /status /healthz\n")


async def _handle(gateway, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
    try:
        request_line = await reader.readline()
        if len(request_line) > _MAX_REQUEST_LINE:
            return
        parts = request_line.decode("latin-1", errors="replace").split()
        if len(parts) < 2:
            return
        method, target = parts[0], parts[1]
        # Drain (and ignore) the headers so well-behaved clients are not
        # surprised by a reset mid-request.
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        writer.write(render(gateway, target, method))
        await writer.drain()
    except asyncio.CancelledError:
        pass
    except (ConnectionError, OSError):
        pass
    except Exception:  # a scrape must never take the gateway down
        logger.exception("status endpoint request failed")
    finally:
        writer.close()


async def serve_status(
    gateway, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Start the status endpoint for *gateway*; returns the server."""

    async def handler(reader, writer):
        await _handle(gateway, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)
