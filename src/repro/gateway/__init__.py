"""``repro.gateway`` -- the high-concurrency client front door.

Two halves:

- :mod:`repro.gateway.server` -- an asyncio gateway riding on a
  :class:`~repro.transport.tcp.RitasNode`: length-prefixed client
  protocol, session management for thousands of concurrent connections,
  pipelining into atomic-broadcast batches, admission control mapped to
  ``retry-after`` responses, ordered or staleness-tolerant local reads,
  and an HTTP status/metrics endpoint.
- :mod:`repro.gateway.loadgen` -- a seeded open-loop load generator:
  Poisson arrivals, Zipf key skew, read/write mix, per-op latency into
  :mod:`repro.obs` histograms and a goodput/retry-after/timeout report.

``python -m repro.gateway {serve,load}`` drives both from the command
line; see docs/GATEWAY.md for a quickstart.
"""

from repro.gateway.loadgen import (
    ChurnEvent,
    ChurnPlan,
    LoadProfile,
    LoadReport,
    ScheduledOp,
    build_schedule,
    chaos_profile,
    run_load,
    run_load_with_churn,
)
from repro.gateway.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_RETRY,
    STATUS_WRONG_SHARD,
    ClientProtocolError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.gateway.server import ClientGateway, GatewayServices, attach_router

__all__ = [
    "ClientGateway",
    "GatewayServices",
    "ChurnEvent",
    "ChurnPlan",
    "LoadProfile",
    "LoadReport",
    "ScheduledOp",
    "build_schedule",
    "chaos_profile",
    "run_load",
    "run_load_with_churn",
    "ClientProtocolError",
    "encode_request",
    "encode_response",
    "decode_request",
    "decode_response",
    "STATUS_OK",
    "STATUS_RETRY",
    "STATUS_ERROR",
    "STATUS_WRONG_SHARD",
    "attach_router",
]
