"""Open-loop load generation against a gateway.

The experimental-methodology point this module exists for: a
*closed-loop* harness client (submit, wait, submit) can never drive a
system into the queueing regime, because its own waiting throttles the
arrival rate -- exactly the regime admission control and retry-after
exist for.  Here arrivals are a seeded **Poisson process**: operations
fire at their scheduled instants whether or not earlier ones have
completed, spread across a pool of concurrent sessions, with the key
popularity following a **Zipf** skew (the canonical shape of real KV
traffic) and a configurable read/write mix.

The schedule is built *ahead of time* as a pure function of the profile
(:func:`build_schedule`), so a seed fully determines the arrival
instants, the op kinds and the key sequence -- runs are replayable and
two generators with the same profile are comparable sample-for-sample.

Per-op latency lands in :mod:`repro.obs` histograms
(``gateway_client_op_latency_seconds``), and :class:`LoadReport` breaks
the outcome down into goodput / retry-after / timeout / error, plus the
acknowledged-write audit trail (every ``ok`` write's atomic-broadcast
message id) that lets a benchmark prove no acknowledged write was lost
or duplicated.

The chaos harness (:func:`run_load_with_churn` with a
:class:`ChurnPlan` and the :func:`chaos_profile`) runs the same
open-loop generator while scheduled fault actions -- crash a replica,
rejoin it through the recovery path -- fire mid-run, which is exactly
when the audit trail earns its keep.
"""

from __future__ import annotations

import asyncio
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any

from repro.gateway.protocol import (
    STATUS_OK,
    STATUS_RETRY,
    encode_request,
    decode_response,
    read_frame,
)
from repro.obs.metrics import Histogram, MetricsRegistry

#: Loadgen metric names (part of the ``gateway_*`` family).
METRIC_CLIENT_LATENCY = "gateway_client_op_latency_seconds"
METRIC_CLIENT_OPS = "gateway_client_ops_total"


@dataclass(frozen=True)
class LoadProfile:
    """Everything that determines a load run's schedule.

    Attributes:
        sessions: concurrent client connections.
        rate: mean arrival rate, operations/second (Poisson).
        ops: total operations in the schedule.
        read_fraction: probability an arrival is a ``get``.
        zipf_s: Zipf skew exponent over the key space (1.0 ≈ classic
            web skew; higher = hotter hot keys; 0 = uniform).
        key_space: number of distinct keys.
        value_bytes: size of written values.
        seed: master seed; same profile -> same schedule, bit for bit.
    """

    sessions: int = 100
    rate: float = 500.0
    ops: int = 1000
    read_fraction: float = 0.5
    zipf_s: float = 1.1
    key_space: int = 1000
    value_bytes: int = 32
    seed: int = 1


@dataclass(frozen=True)
class ScheduledOp:
    """One arrival: when, on which session, doing what."""

    at: float  # seconds from load start
    session: int
    op: str  # "get" or "put"
    key: str
    value: bytes | None


def _zipf_cdf(key_space: int, s: float) -> list[float]:
    """Cumulative weights of the (unnormalized) Zipf(s) distribution."""
    total = 0.0
    cdf = []
    for rank in range(1, key_space + 1):
        total += rank ** -s if s > 0 else 1.0
        cdf.append(total)
    return cdf


def build_schedule(profile: LoadProfile) -> list[ScheduledOp]:
    """The full, deterministic arrival schedule for *profile*.

    Inter-arrival gaps are exponential with mean ``1/rate`` (a Poisson
    process); each arrival draws its session uniformly, its kind from
    the read/write mix, and its key from the Zipf skew.  Values encode
    the op's schedule index, so every write is distinguishable.
    """
    rng = random.Random(f"gateway-load/{profile.seed}")
    cdf = _zipf_cdf(profile.key_space, profile.zipf_s)
    total = cdf[-1]
    schedule: list[ScheduledOp] = []
    now = 0.0
    pad = len(str(profile.key_space - 1))
    for index in range(profile.ops):
        now += rng.expovariate(profile.rate)
        session = rng.randrange(profile.sessions)
        rank = bisect_left(cdf, rng.random() * total)
        key = f"k{rank:0{pad}d}"
        if rng.random() < profile.read_fraction:
            schedule.append(ScheduledOp(now, session, "get", key, None))
        else:
            value = f"op{index}/".encode().ljust(profile.value_bytes, b".")
            schedule.append(ScheduledOp(now, session, "put", key, value))
    return schedule


@dataclass
class LoadReport:
    """Outcome of one load run."""

    profile: LoadProfile
    duration_s: float = 0.0
    sent: int = 0
    ok: int = 0
    retry_after: int = 0
    timeouts: int = 0
    errors: int = 0
    #: (sender, rbid) of every acknowledged ordered op, in ack order --
    #: the audit trail for lost/duplicated-write checks.
    acked_ids: list[tuple[int, int]] = field(default_factory=list)
    #: p50/p95/p99 over acknowledged-op latency, seconds.
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0

    @property
    def goodput_ops_s(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"open-loop load: {self.sent} ops over {self.duration_s:.2f}s "
            f"({self.profile.sessions} sessions, rate {self.profile.rate:.0f}/s, "
            f"seed {self.profile.seed})",
            f"  goodput     {self.goodput_ops_s:10.1f} acked ops/s",
            f"  ok          {self.ok:10d}",
            f"  retry-after {self.retry_after:10d}",
            f"  timeout     {self.timeouts:10d}",
            f"  error       {self.errors:10d}",
            f"  latency p50 {self.latency_p50_s * 1e3:10.2f} ms",
            f"  latency p95 {self.latency_p95_s * 1e3:10.2f} ms",
            f"  latency p99 {self.latency_p99_s * 1e3:10.2f} ms",
        ]
        return "\n".join(lines)


class _LoadSession:
    """One loadgen connection and its in-flight bookkeeping."""

    __slots__ = ("reader", "writer", "inflight", "task")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        #: request_id -> (op kind, send instant)
        self.inflight: dict[int, tuple[str, float]] = {}
        self.task: asyncio.Task | None = None


async def run_load(
    host: str,
    port: int,
    profile: LoadProfile,
    *,
    registry: MetricsRegistry | None = None,
    drain_timeout_s: float = 30.0,
) -> LoadReport:
    """Run *profile* against the gateway at ``host:port``.

    Open loop: every scheduled op is written at its arrival instant
    (never delayed by earlier ops' completion); responses are collected
    by per-session reader tasks.  After the last arrival, in-flight ops
    get *drain_timeout_s* to complete; stragglers count as timeouts.
    """
    loop = asyncio.get_event_loop()
    registry = registry if registry is not None else MetricsRegistry()
    latency = registry.histogram(METRIC_CLIENT_LATENCY)
    report = LoadReport(profile=profile)
    schedule = build_schedule(profile)
    sessions: list[_LoadSession] = []
    for _ in range(profile.sessions):
        reader, writer = await asyncio.open_connection(host, port)
        sessions.append(_LoadSession(reader, writer))
    done = asyncio.Event()
    outstanding = 0
    draining = False

    def settle(session: _LoadSession, request_id: int, status: str, detail: Any) -> None:
        nonlocal outstanding
        entry = session.inflight.pop(request_id, None)
        if entry is None:
            return
        op, sent_at = entry
        outstanding -= 1
        elapsed = loop.time() - sent_at
        if status == STATUS_OK:
            report.ok += 1
            latency.observe(elapsed)
            if registry.enabled:
                registry.counter(METRIC_CLIENT_OPS, op=op, outcome="ok").inc()
            if isinstance(detail, list) and len(detail) == 3 and detail[0] is not None:
                report.acked_ids.append((detail[0], detail[1]))
        elif status == STATUS_RETRY:
            report.retry_after += 1
            if registry.enabled:
                registry.counter(METRIC_CLIENT_OPS, op=op, outcome="retry-after").inc()
        else:
            report.errors += 1
            if registry.enabled:
                registry.counter(METRIC_CLIENT_OPS, op=op, outcome="error").inc()
        if draining and outstanding == 0:
            done.set()

    async def session_reader(session: _LoadSession) -> None:
        try:
            while True:
                body = await read_frame(session.reader)
                request_id, status, detail = decode_response(body)
                settle(session, request_id, status, detail)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass

    for session in sessions:
        session.task = asyncio.create_task(session_reader(session))

    start = loop.time()
    next_request_id = 0
    try:
        for scheduled in schedule:
            delay = start + scheduled.at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            session = sessions[scheduled.session]
            request_id = next_request_id
            next_request_id += 1
            if scheduled.op == "get":
                frame = encode_request(request_id, "get", [scheduled.key])
            else:
                frame = encode_request(request_id, "put", [scheduled.key, scheduled.value])
            session.inflight[request_id] = (scheduled.op, loop.time())
            outstanding += 1
            report.sent += 1
            session.writer.write(frame)
        # Flush every session's transport buffer once the schedule ends.
        await asyncio.gather(
            *(s.writer.drain() for s in sessions), return_exceptions=True
        )
        draining = True
        if outstanding:
            try:
                await asyncio.wait_for(done.wait(), timeout=drain_timeout_s)
            except asyncio.TimeoutError:
                pass
    finally:
        report.duration_s = loop.time() - start
        for session in sessions:
            if session.task is not None:
                session.task.cancel()
            session.writer.close()
        await asyncio.gather(
            *(s.task for s in sessions if s.task is not None), return_exceptions=True
        )
    report.timeouts = sum(len(s.inflight) for s in sessions)
    report.latency_p50_s = _finite(latency, 0.50)
    report.latency_p95_s = _finite(latency, 0.95)
    report.latency_p99_s = _finite(latency, 0.99)
    return report


def _finite(histogram: Histogram, q: float) -> float:
    value = histogram.quantile(q)
    return value if value == value else 0.0  # NaN -> 0.0 (no samples)


# -- chaos: load under replica churn -----------------------------------------------


def chaos_profile(*, seed: int = 1) -> LoadProfile:
    """The loadgen profile the churn tests run: write-heavy (the audit
    trail is the point), a small key space, and a modest op count so
    the crash and the rejoin both land *inside* the run."""
    return LoadProfile(
        sessions=20,
        rate=400.0,
        ops=250,
        read_fraction=0.3,
        key_space=64,
        value_bytes=24,
        seed=seed,
    )


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled fault action, *at* seconds from load start."""

    at: float
    replica: int
    action: str  # "crash" or "restart"


@dataclass(frozen=True)
class ChurnPlan:
    """A deterministic fault schedule run alongside an open-loop load."""

    events: tuple[ChurnEvent, ...]

    @classmethod
    def crash_restart(
        cls, replica: int, *, crash_at: float, restart_at: float
    ) -> "ChurnPlan":
        return cls(
            events=(
                ChurnEvent(crash_at, replica, "crash"),
                ChurnEvent(restart_at, replica, "restart"),
            )
        )


async def run_load_with_churn(
    host: str,
    port: int,
    profile: LoadProfile,
    *,
    plan: ChurnPlan,
    crash: Any,
    restart: Any,
    registry: MetricsRegistry | None = None,
    drain_timeout_s: float = 30.0,
) -> LoadReport:
    """Run *profile* while *plan*'s churn events fire on schedule.

    *crash* and *restart* are async callables ``(replica) -> None``
    supplied by the harness (closing a node, rebinding its port and
    rejoining it through the recovery path); the loadgen stays a pure
    client and never reaches into the group.  The returned report's
    ``acked_ids`` is the audit trail: zero lost and zero duplicated
    acknowledged writes under churn is the gateway's headline claim,
    and the chaos test asserts it against the replicas' applied log.
    """

    async def drive() -> None:
        loop = asyncio.get_event_loop()
        start = loop.time()
        for event in plan.events:
            delay = start + event.at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if event.action == "crash":
                await crash(event.replica)
            elif event.action == "restart":
                await restart(event.replica)
            else:
                raise ValueError(f"unknown churn action {event.action!r}")

    report, _ = await asyncio.gather(
        run_load(
            host, port, profile, registry=registry, drain_timeout_s=drain_timeout_s
        ),
        drive(),
    )
    return report
