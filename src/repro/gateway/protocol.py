"""The client wire protocol: length-prefixed frames over one TCP stream.

Layout of one frame (big-endian), mirroring the replica channel framing
in :mod:`repro.transport.framing` minus the HMAC trailer -- clients are
*outside* the replica trust domain, and the services they reach are
Byzantine-tolerant by construction, so the gateway treats every client
byte as untrusted input rather than authenticating it::

    u32  body length
    ...  canonically encoded value (repro.core.wire codec)

Requests are ``[request_id, op, args...]``; responses are
``[request_id, status, detail]``.  Request ids are chosen by the client
and only need to be unique per connection -- the gateway echoes them
back, which is what lets a session keep many operations in flight
(pipelining) over one stream.

Statuses:

- ``ok`` -- the operation completed; *detail* is the op result
  (``get`` -> value bytes or ``None``, writes -> the apply result,
  ``acquire``/``release`` -> the lock-table transition).
- ``retry-after`` -- admission refused by the replica's backpressure
  bound (:class:`repro.core.errors.BackpressureError`); *detail* is
  ``[pending, cap, retry_after_ms]``.  The operation was **not**
  replicated; the client should back off and resubmit.
- ``wrong-shard`` -- the key's owning shard is not hosted by this
  gateway, or a multi-key op spans shards (forbidden; see
  :mod:`repro.shard.router`).  *detail* is ``[owner_index, owner_name,
  message]`` -- the owner hint a client uses to redirect.  The
  operation was **not** replicated.
- ``error`` -- the request was malformed or named an unknown op;
  *detail* is a message string.

The codec is shared by the server, the load generator and the tests, so
there is exactly one definition of the wire format.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.errors import WireFormatError
from repro.core.wire import decode_value, encode_value

_LEN = struct.Struct(">I")

#: Bound on one client frame; far above any legitimate request (keys and
#: values are application-sized), far below anything that could balloon
#: gateway memory per connection.
MAX_CLIENT_FRAME = 4 * 1024 * 1024

#: Response statuses.
STATUS_OK = "ok"
STATUS_RETRY = "retry-after"
STATUS_ERROR = "error"
STATUS_WRONG_SHARD = "wrong-shard"

#: Request id echoed on ``error`` responses whose originating request id
#: could not be recovered (undecodable or shapeless body).  Reserved:
#: clients must choose non-negative ids, so a ``-1`` response can never
#: be mistaken for the settlement of a real in-flight operation.
UNCORRELATED_ID = -1

#: Ops the gateway accepts, with their argument arity.
OPS = {
    "put": 2,  # key, value
    "get": 1,  # key
    "delete": 1,  # key
    "cas": 3,  # key, expected, value
    "mput": 1,  # [[key, value], ...] -- atomic, must be single-shard
    "acquire": 2,  # lock name, client tag
    "release": 2,  # lock name, client tag
    "ping": 0,
}

#: Ops answered from local replica state when local reads are enabled
#: (staleness-tolerant); everything else orders through atomic broadcast.
READ_OPS = frozenset({"get", "ping"})


class ClientProtocolError(Exception):
    """A client frame was malformed (oversized, bad codec, bad shape).

    ``request_id`` carries the originating request's id when the decoder
    got far enough to recover it (wrong arity, unknown op, bad shape
    with an int leader), letting the server's ``error`` response
    correlate; it is ``None`` -- answered as :data:`UNCORRELATED_ID` --
    when nothing trustworthy could be read.
    """

    request_id: int | None = None


def encode_client_frame(value: Any) -> bytes:
    """One length-prefixed frame carrying *value*."""
    body = encode_value(value)
    if len(body) > MAX_CLIENT_FRAME:
        raise ClientProtocolError(f"frame too large ({len(body)} bytes)")
    return _LEN.pack(len(body)) + body


def encode_request(request_id: int, op: str, args: list[Any]) -> bytes:
    return encode_client_frame([request_id, op, list(args)])


def encode_response(request_id: int, status: str, detail: Any) -> bytes:
    return encode_client_frame([request_id, status, detail])


def decode_request(body: bytes) -> tuple[int, str, list[Any]]:
    """Decode and shape-check one request body.

    Raises:
        ClientProtocolError: undecodable body, wrong shape, unknown op,
            or wrong argument arity -- the gateway answers ``error``
            (with the request id when one could be recovered) rather
            than dropping the connection.
    """
    try:
        decoded = decode_value(body)
    except WireFormatError as exc:
        raise ClientProtocolError(f"undecodable request: {exc}") from None
    # Recover the request id whenever the leading element parses as one,
    # even if the rest of the shape is wrong -- an error the client can
    # correlate beats an UNCORRELATED_ID it can only log.
    recovered: int | None = None
    if isinstance(decoded, list) and decoded and isinstance(decoded[0], int):
        recovered = decoded[0]
    if (
        not isinstance(decoded, list)
        or len(decoded) != 3
        or not isinstance(decoded[0], int)
        or not isinstance(decoded[1], str)
        or not isinstance(decoded[2], list)
    ):
        exc = ClientProtocolError("request must be [request_id, op, args]")
        exc.request_id = recovered
        raise exc
    request_id, op, args = decoded
    arity = OPS.get(op)
    if arity is None:
        exc = ClientProtocolError(f"unknown op {op!r}")
        exc.request_id = request_id
        raise exc
    if len(args) != arity:
        exc = ClientProtocolError(f"op {op!r} takes {arity} args, got {len(args)}")
        exc.request_id = request_id
        raise exc
    return request_id, op, args


def decode_response(body: bytes) -> tuple[int, str, Any]:
    try:
        decoded = decode_value(body)
    except WireFormatError as exc:
        raise ClientProtocolError(f"undecodable response: {exc}") from None
    if (
        not isinstance(decoded, list)
        or len(decoded) != 3
        or not isinstance(decoded[0], int)
        or not isinstance(decoded[1], str)
    ):
        raise ClientProtocolError("response must be [request_id, status, detail]")
    return decoded[0], decoded[1], decoded[2]


class FrameReader:
    """Incremental frame splitter for one direction of a stream.

    Feed it raw socket bytes; it yields complete frame bodies.  Keeping
    this sans-IO (like the protocol stack itself) is what lets the
    server process *every* complete frame in one read wakeup -- the
    pipelining window the gateway coalesces into a single atomic-
    broadcast batch.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append *data*; return every now-complete frame body."""
        self._buffer += data
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_CLIENT_FRAME:
                raise ClientProtocolError(f"implausible frame length {length}")
            end = _LEN.size + length
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[_LEN.size : end]))
            del self._buffer[:end]


async def read_frame(reader) -> bytes:
    """Read one frame body from an :class:`asyncio.StreamReader`."""
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_CLIENT_FRAME:
        raise ClientProtocolError(f"implausible frame length {length}")
    return await reader.readexactly(length)
