"""``python -m repro.gateway`` -- serve a gateway or generate load.

Subcommands::

    python -m repro.gateway serve group.json keys/process-0.keys.json \\
        --client-port 9000 --http-port 9100 [--local-reads]

    python -m repro.gateway load --port 9000 --sessions 200 --rate 500 \\
        --ops 2000 --seed 7 [--snapshot load-metrics.jsonl]

``serve`` starts one replica of the group (like ``ritas-node``) plus the
client gateway and the HTTP status endpoint on top of it; Ctrl-C shuts
the sockets down cleanly.  ``load`` runs the open-loop generator against
a gateway and prints the goodput/latency report; ``--snapshot`` also
writes the client-side metric registry as a JSONL snapshot that
``python -m repro.obs summary`` can render.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from repro.gateway.loadgen import LoadProfile, run_load
from repro.gateway.server import ClientGateway, GatewayServices
from repro.obs.export import write_jsonl_path
from repro.obs.metrics import MetricsRegistry


async def _serve(args: argparse.Namespace) -> int:
    from repro.transport.bootstrap import load_session_config
    from repro.transport.tcp import RitasNode

    session_config = load_session_config(args.descriptor, args.key_file)
    node = RitasNode(
        session_config.config,
        session_config.process_id,
        session_config.addresses,
        session_config.keystore,
    )
    await node.start()
    node.enable_metrics()
    services = GatewayServices.attach(node)
    gateway = ClientGateway(node, services, local_reads=args.local_reads)
    try:
        client_port = await gateway.listen(host=args.host, port=args.client_port)
        http_port = await gateway.listen_http(host=args.host, port=args.http_port)
        print(
            f"gateway on replica p{session_config.process_id}: "
            f"clients {args.host}:{client_port}, status http://{args.host}:{http_port} "
            f"(reads: {'local' if args.local_reads else 'ordered'})",
            flush=True,
        )
        await asyncio.Event().wait()  # serve until cancelled (Ctrl-C)
    except asyncio.CancelledError:
        pass
    finally:
        # Sockets closed, tasks cancelled and awaited -- a Ctrl-C exit
        # leaves nothing pending behind.
        await gateway.close()
        await node.close()
    return 0


async def _load(args: argparse.Namespace) -> int:
    profile = LoadProfile(
        sessions=args.sessions,
        rate=args.rate,
        ops=args.ops,
        read_fraction=args.read_fraction,
        zipf_s=args.zipf_s,
        key_space=args.key_space,
        value_bytes=args.value_bytes,
        seed=args.seed,
    )
    registry = MetricsRegistry(const_labels={"component": "loadgen"})
    report = await run_load(
        args.host, args.port, profile, registry=registry,
        drain_timeout_s=args.drain_timeout,
    )
    print(report.summary(), flush=True)
    if args.snapshot:
        count = write_jsonl_path(
            args.snapshot, [registry], meta={"runtime": "loadgen", "seed": profile.seed}
        )
        print(f"wrote {count} records to {args.snapshot}", flush=True)
    return 0 if report.timeouts == 0 and report.errors == 0 else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Client gateway and open-loop load generator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run a gateway on one replica of a group")
    p_serve.add_argument("descriptor", type=Path, help="group descriptor JSON")
    p_serve.add_argument("key_file", type=Path, help="this replica's key file")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--client-port", type=int, default=9000)
    p_serve.add_argument("--http-port", type=int, default=9100)
    p_serve.add_argument(
        "--local-reads",
        action="store_true",
        help="serve GETs from local replica state (stale by up to the "
        "delivery lag) instead of ordering them",
    )
    p_serve.set_defaults(fn=_serve)

    p_load = sub.add_parser("load", help="open-loop load against a gateway")
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=9000)
    p_load.add_argument("--sessions", type=int, default=100)
    p_load.add_argument("--rate", type=float, default=500.0, help="mean ops/sec (Poisson)")
    p_load.add_argument("--ops", type=int, default=1000)
    p_load.add_argument("--read-fraction", type=float, default=0.5)
    p_load.add_argument("--zipf-s", type=float, default=1.1, help="key skew exponent")
    p_load.add_argument("--key-space", type=int, default=1000)
    p_load.add_argument("--value-bytes", type=int, default=32)
    p_load.add_argument("--seed", type=int, default=1)
    p_load.add_argument("--drain-timeout", type=float, default=30.0)
    p_load.add_argument("--snapshot", help="write loadgen metrics JSONL here")
    p_load.set_defaults(fn=_load)

    args = parser.parse_args(argv)
    try:
        return asyncio.run(args.fn(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
