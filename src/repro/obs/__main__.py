"""``python -m repro.obs`` -- render metric snapshots from the command line.

Subcommands::

    python -m repro.obs summary snapshot.jsonl          # histogram summaries
    python -m repro.obs summary snapshot.jsonl --metric ritas_instance_latency_seconds
    python -m repro.obs demo --out snapshot.jsonl       # produce a snapshot
    python -m repro.obs prom snapshot.jsonl             # (re)render as Prometheus text

``summary`` renders every histogram in a JSONL snapshot as a
p50/p95/p99 table with an ASCII sketch of the bucket distribution;
counters and gauges are listed underneath.  ``demo`` runs a small
failure-free simulated burst with metrics enabled and writes its
snapshot -- a quick way to produce a real input file (CI uploads one as
an artifact).
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Any, TextIO

from repro.obs.export import read_jsonl

_BAR_BLOCKS = " ▁▂▃▄▅▆▇█"


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:8.3f}s "
    if value >= 1e-3:
        return f"{value * 1e3:8.3f}ms"
    return f"{value * 1e6:8.1f}µs"


def _fmt_labels(labels: dict[str, Any]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _spark(buckets: list[list[Any]], width: int = 24) -> str:
    """Compress the sparse bucket list into a fixed-width sparkline."""
    if not buckets:
        return ""
    counts = [count for _, count in buckets]
    if len(counts) > width:
        # Merge adjacent buckets down to *width* cells.
        merged = [0] * width
        for index, count in enumerate(counts):
            merged[index * width // len(counts)] += count
        counts = merged
    peak = max(counts)
    return "".join(
        _BAR_BLOCKS[min(len(_BAR_BLOCKS) - 1, (c * (len(_BAR_BLOCKS) - 1) + peak - 1) // peak)]
        if c
        else _BAR_BLOCKS[0]
        for c in counts
    )


def _family(name: str) -> str:
    """The metric-family prefix a name belongs to (``gateway_ops_total``
    -> ``gateway``); names without an underscore are their own family."""
    return name.split("_", 1)[0]


def render_summary(
    records: list[dict[str, Any]], metric: str | None = None, out: TextIO = sys.stdout
) -> None:
    histograms = [
        r
        for r in records
        if r.get("record") == "metric" and r.get("type") == "histogram"
        if metric is None or r["name"] == metric
    ]
    scalars = [
        r
        for r in records
        if r.get("record") == "metric" and r.get("type") in ("counter", "gauge")
        if metric is None or r["name"] == metric
    ]
    metas = [r for r in records if r.get("record") == "meta"]
    if metas:
        dropped = sum(m.get("dropped_events", 0) for m in metas)
        out.write(
            f"snapshot: {len(metas)} registr{'y' if len(metas) == 1 else 'ies'}, "
            f"{len(histograms)} histograms, {len(scalars)} scalars"
            + (f", {dropped} dropped trace events" if dropped else "")
            + "\n"
        )
    # Group by metric-family prefix, so e.g. the gateway_* family reads
    # as one block instead of interleaving with the protocol metrics.
    hist_by_family: dict[str, dict[str, list[dict[str, Any]]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for record in histograms:
        hist_by_family[_family(record["name"])][record["name"]].append(record)
    scalars_by_family: dict[str, list[dict[str, Any]]] = defaultdict(list)
    for record in scalars:
        scalars_by_family[_family(record["name"])].append(record)
    for family in sorted(set(hist_by_family) | set(scalars_by_family)):
        out.write(f"\n== {family} ==\n")
        by_name = hist_by_family.get(family, {})
        for name in sorted(by_name):
            out.write(f"\n{name}\n")
            out.write(
                f"  {'labels':<44}{'count':>7}{'p50':>11}{'p95':>11}{'p99':>11}"
                f"{'max':>11}  distribution\n"
            )
            for record in sorted(by_name[name], key=lambda r: _fmt_labels(r["labels"])):
                if not record.get("count"):
                    continue
                out.write(
                    f"  {_fmt_labels(record['labels']):<44}{record['count']:>7}"
                    f"{_fmt_seconds(record.get('p50')):>11}"
                    f"{_fmt_seconds(record.get('p95')):>11}"
                    f"{_fmt_seconds(record.get('p99')):>11}"
                    f"{_fmt_seconds(record.get('max')):>11}"
                    f"  {_spark(record.get('buckets', []))}"
                    + ("" if record.get("exact", True) else " (interpolated)")
                    + "\n"
                )
        family_scalars = scalars_by_family.get(family, [])
        if family_scalars:
            out.write("\nscalars\n")
            for record in sorted(
                family_scalars, key=lambda r: (r["name"], _fmt_labels(r["labels"]))
            ):
                value = record["value"]
                rendered = (
                    str(int(value)) if float(value).is_integer() else f"{value:.6g}"
                )
                out.write(
                    f"  {record['name']:<40}{_fmt_labels(record['labels']):<40}"
                    f"{rendered:>12}  ({record['type']})\n"
                )


def _cmd_summary(args: argparse.Namespace) -> int:
    with open(args.snapshot, encoding="utf-8") as handle:
        records = read_jsonl(handle)
    render_summary(records, metric=args.metric)
    return 0


def _cmd_prom(args: argparse.Namespace) -> int:
    """Rebuild a Prometheus-style exposition from a JSONL snapshot.

    Snapshot records already carry everything the text format needs, so
    this is a pure re-rendering (no registry required).
    """
    import math

    with open(args.snapshot, encoding="utf-8") as handle:
        records = read_jsonl(handle)
    from repro.obs.export import _format_value, _label_string, _metric_name

    families: dict[str, tuple[str, list[str]]] = {}
    for record in records:
        if record.get("record") != "metric":
            continue
        name = _metric_name(record["name"])
        kind, lines = families.setdefault(name, (record["type"], []))
        labels = record["labels"]
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_label_string(labels)} {_format_value(record['value'])}")
        else:
            cumulative = 0
            for le, count in record.get("buckets", []):
                cumulative += count
                bound = math.inf if le is None else le
                lines.append(
                    f"{name}_bucket{_label_string(labels, {'le': _format_value(bound)})}"
                    f" {cumulative}"
                )
            if record.get("buckets") is None or (
                not record.get("buckets") or record["buckets"][-1][0] is not None
            ):
                lines.append(
                    f"{name}_bucket{_label_string(labels, {'le': '+Inf'})}"
                    f" {record.get('count', 0)}"
                )
            lines.append(f"{name}_sum{_label_string(labels)} {_format_value(record['sum'])}")
            lines.append(f"{name}_count{_label_string(labels)} {record['count']}")
    for family_name in sorted(families):
        kind, lines = families[family_name]
        print(f"# TYPE {family_name} {kind}")
        for line in lines:
            print(line)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.net.network import LanSimulation
    from repro.obs.export import write_jsonl_path

    sim = LanSimulation(n=args.n, seed=args.seed)
    registries = sim.enable_metrics()
    for pid in sim.config.process_ids:
        sim.stacks[pid].create("ab", ("demo",))
    for pid in sim.config.process_ids:
        ab = sim.stacks[pid].instance_at(("demo",))
        with sim.stacks[pid].coalesce():
            for _ in range(args.k // sim.config.num_processes):
                ab.broadcast(b"demo-payload")
    observer = sim.stacks[0].instance_at(("demo",))
    sim.run(until=lambda: observer.delivered_count >= args.k, max_time=120.0)
    sim.sample_metrics()
    count = write_jsonl_path(
        args.out,
        registries,
        meta={"runtime": "sim", "scenario": "demo", "n": args.n, "seed": args.seed},
    )
    print(f"wrote {count} records to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render RITAS metric snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="render histogram summaries (p50/p95/p99)")
    p_summary.add_argument("snapshot", help="JSONL snapshot file")
    p_summary.add_argument("--metric", help="only this metric name")
    p_summary.set_defaults(fn=_cmd_summary)

    p_prom = sub.add_parser("prom", help="render a snapshot as Prometheus text")
    p_prom.add_argument("snapshot", help="JSONL snapshot file")
    p_prom.set_defaults(fn=_cmd_prom)

    p_demo = sub.add_parser("demo", help="run a small simulated burst, write its snapshot")
    p_demo.add_argument("--out", default="obs-snapshot.jsonl")
    p_demo.add_argument("--n", type=int, default=4)
    p_demo.add_argument("--k", type=int, default=32, help="burst size")
    p_demo.add_argument("--seed", type=int, default=1)
    p_demo.set_defaults(fn=_cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
