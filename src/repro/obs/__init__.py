"""Runtime observability: per-layer latency histograms, queue gauges
and machine-readable exporters.

The paper's Section 4 is entirely measurement; this package makes the
same quantities -- and their *distributions* -- visible on a live run:

- :mod:`repro.obs.metrics` -- Counter/Gauge/Histogram primitives and
  the per-stack :class:`MetricsRegistry` (``NULL_REGISTRY`` when off,
  so the disabled hot path is one attribute check);
- :mod:`repro.obs.export` -- JSONL snapshots and Prometheus text
  exposition;
- ``python -m repro.obs`` -- renders histogram summaries (p50/p95/p99)
  from a snapshot.

Enable on a runtime, not per stack::

    sim = LanSimulation(n=4, seed=1)
    registries = sim.enable_metrics()
    ... run ...
    sim.sample_metrics()                       # refresh queue gauges
    write_jsonl_path("run.jsonl", registries)

or, on the TCP runtime, ``node.enable_metrics(sample_interval_s=1.0)``.
"""

from repro.obs.export import (
    read_jsonl,
    snapshot_records,
    to_prometheus,
    write_jsonl,
    write_jsonl_path,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LabeledRegistry,
    MetricsRegistry,
)

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledRegistry",
    "MetricsRegistry",
    "read_jsonl",
    "snapshot_records",
    "to_prometheus",
    "write_jsonl",
    "write_jsonl_path",
]
