"""Machine-readable exports of metric registries.

Two formats, both produced from the same snapshots:

- **JSONL** -- one JSON object per line: a ``meta`` record per registry
  (schema version, clock, incarnation, constant labels) followed by one
  ``metric`` record per metric.  Snapshots from any number of registries
  (all processes of a group, or of several runs) concatenate into one
  file; the per-registry constant labels keep them distinguishable.
  ``python -m repro.obs summary`` renders these files.
- **Prometheus text exposition** (version 0.0.4) -- for scraping a live
  process or pushing through a gateway.  Histograms follow the standard
  encoding: cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
  ``_count``.
"""

from __future__ import annotations

import json
import math
import re
from typing import IO, Any, Iterable

from repro.obs.metrics import MetricsRegistry

SNAPSHOT_VERSION = "repro.obs/v1"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def snapshot_records(
    registries: Iterable[MetricsRegistry], meta: dict[str, Any] | None = None
) -> list[dict[str, Any]]:
    """All JSONL records for *registries*: one ``meta`` record each,
    then the metric records.  *meta* adds caller context (runtime name,
    scenario, seed) to every meta record."""
    records: list[dict[str, Any]] = []
    for registry in registries:
        head: dict[str, Any] = {
            "record": "meta",
            "version": SNAPSHOT_VERSION,
            "time": registry.now(),
            "incarnation": registry.incarnation,
            "labels": dict(registry.const_labels),
        }
        if meta:
            head.update(meta)
        records.append(head)
        for record in registry.snapshot():
            record["record"] = "metric"
            records.append(record)
    return records


def write_jsonl(
    out: IO[str],
    registries: Iterable[MetricsRegistry],
    meta: dict[str, Any] | None = None,
) -> int:
    """Write the JSONL snapshot to *out*; returns the record count."""
    records = snapshot_records(registries, meta)
    for record in records:
        out.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def write_jsonl_path(
    path: str,
    registries: Iterable[MetricsRegistry],
    meta: dict[str, Any] | None = None,
) -> int:
    with open(path, "w", encoding="utf-8") as out:
        return write_jsonl(out, registries, meta)


def read_jsonl(lines: Iterable[str]) -> list[dict[str, Any]]:
    """Parse a JSONL snapshot back into records (blank lines skipped)."""
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# -- Prometheus text exposition ---------------------------------------------


def _metric_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _label_string(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_LABEL_NAME_RE.sub("_", k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registries: Iterable[MetricsRegistry]) -> str:
    """Render every registry as one Prometheus text exposition.

    Metric families are grouped (one ``# TYPE`` line per name) across
    registries; per-registry constant labels keep series distinct.
    """
    families: dict[str, tuple[str, list[str]]] = {}
    for registry in registries:
        for metric in registry.metrics():
            record = metric.snapshot()
            name = _metric_name(record["name"])
            kind = record["type"]
            labels = record["labels"]
            family = families.setdefault(name, (kind, []))
            if family[0] != kind:
                raise ValueError(
                    f"metric {name!r} registered as both {family[0]} and {kind}"
                )
            lines = family[1]
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_label_string(labels)} {_format_value(record['value'])}"
                )
                continue
            # Histogram: cumulative buckets, then sum and count.
            cumulative = 0
            bucket_counts = {
                (math.inf if le is None else le): count
                for le, count in record.get("buckets", [])
            }
            for bound in list(metric.bounds) + [math.inf]:
                cumulative += bucket_counts.get(bound, 0)
                lines.append(
                    f"{name}_bucket"
                    f"{_label_string(labels, {'le': _format_value(bound)})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_sum{_label_string(labels)} {_format_value(record['sum'])}"
            )
            lines.append(f"{name}_count{_label_string(labels)} {record['count']}")
    out: list[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")
