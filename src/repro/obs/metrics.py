"""Metric primitives: counters, gauges, histograms and the registry.

The evaluation section of the paper is entirely *measurement* --
per-protocol isolated latency (Table 1), burst latency and throughput
under three faultloads (Figures 4-6), agreement cost (Figure 7) -- and
distributions, not averages, are what distinguish these protocols in
practice.  This module gives every stack an optional
:class:`MetricsRegistry` holding three metric types:

- :class:`Counter` -- monotonically increasing count;
- :class:`Gauge` -- point-in-time level (queue depths, pending work);
- :class:`Histogram` -- distribution over fixed **log-scale buckets**
  plus *exact* p50/p95/p99 while the number of observations stays
  within a bounded sample window (past the window, quantiles fall back
  to log-bucket interpolation -- still monotone and bounded by one
  bucket's width of error).

Cheap when off, by construction: the stack's default registry is
:data:`NULL_REGISTRY`, whose ``enabled`` is ``False`` and whose metric
handles are shared no-ops -- exactly the :data:`~repro.core.trace.NULL_TRACER`
pattern.  Instrumented code guards with ``if metrics.enabled:`` so the
disabled hot path costs one attribute load and a branch.

Registries are **per stack** (one process, one registry); group-wide
views are produced by the exporters in :mod:`repro.obs.export`, which
take any number of registries and keep them distinguishable through
each registry's constant labels (e.g. ``process="2"``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable

#: Default log-scale bucket boundaries for latency histograms, in
#: seconds: 5 buckets per decade from 1 microsecond to 1000 seconds.
#: Fixed (not adaptive) so histograms from different processes, runs and
#: runtimes merge bucket-for-bucket.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 5.0), 12) for exponent in range(-30, 16)
)

#: Log-scale boundaries for size/count histograms: 5 per decade, 1..1e9.
COUNT_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 5.0), 6) for exponent in range(0, 46)
)

#: Exact quantiles are computed while a histogram holds at most this
#: many samples; past it, new samples update only the buckets.
DEFAULT_SAMPLE_CAP = 4096

#: Quantiles stamped into snapshots and rendered by the CLI.
SNAPSHOT_QUANTILES = (0.5, 0.95, 0.99)

LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: dict[str, Any]) -> LabelItems:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A level that can go up and down (queue depth, pending work)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Distribution over fixed log-scale buckets with exact bounded-sample
    quantiles.

    Args:
        name: metric name.
        labels: canonical label items.
        buckets: ascending upper bounds; an implicit ``+inf`` bucket
            catches everything above the last bound.
        sample_cap: observations kept verbatim for exact quantiles; 0
            disables the sample window (bucket interpolation only).
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "_samples",
        "_sample_cap",
        "_samples_sorted",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        sample_cap: int = DEFAULT_SAMPLE_CAP,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # +1 for +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._sample_cap = sample_cap
        self._samples_sorted = True

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        if len(self._samples) < self._sample_cap:
            if self._samples and value < self._samples[-1]:
                self._samples_sorted = False
            self._samples.append(value)

    @property
    def exact(self) -> bool:
        """True while every observation is retained in the sample window
        (quantiles are then exact order statistics)."""
        return self.count <= len(self._samples)

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Requires identical bucket bounds (the module-level constants
        guarantee this across processes, runs and runtimes).  Bucket
        counts add element-wise; retained samples concatenate up to the
        sample cap, so merged quantiles stay exact as long as every
        source was exact and the union fits the window.
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        if other.count == 0:
            return
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        room = self._sample_cap - len(self._samples)
        if room > 0 and other._samples:
            self._samples.extend(other._samples[:room])
            self._samples_sorted = False

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0 <= q <= 1) of the observed distribution.

        Exact (nearest-rank over retained samples) while :attr:`exact`
        holds; otherwise interpolated within the log-scale buckets.
        Returns ``nan`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        if self.exact:
            if not self._samples_sorted:
                self._samples.sort()
                self._samples_sorted = True
            rank = min(len(self._samples) - 1, max(0, int(q * len(self._samples))))
            return self._samples[rank]
        return self._bucket_quantile(q)

    def _bucket_quantile(self, q: float) -> float:
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                if upper <= lower:
                    return upper
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
        }
        if self.count:
            record["min"] = self.min
            record["max"] = self.max
            record["exact"] = self.exact
            for q in SNAPSHOT_QUANTILES:
                record[f"p{int(q * 100)}"] = self.quantile(q)
            # Sparse non-cumulative buckets: [upper_bound, count] pairs,
            # +inf encoded as null (JSON has no infinity).
            record["buckets"] = [
                [self.bounds[i] if i < len(self.bounds) else None, c]
                for i, c in enumerate(self.bucket_counts)
                if c
            ]
        return record


class MetricsRegistry:
    """Per-stack metric store, following the ``NULL_TRACER`` pattern.

    Args:
        clock: time source stamped into snapshots (runtimes inject the
            simulated or monotonic clock; defaults to 0.0).
        const_labels: labels merged into every metric created here --
            the exporters rely on these to tell processes, runtimes and
            faultloads apart (e.g. ``process="0", runtime="sim"``).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        const_labels: dict[str, Any] | None = None,
    ):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.const_labels = {k: str(v) for k, v in (const_labels or {}).items()}
        self._metrics: dict[tuple[str, LabelItems], Counter | Gauge | Histogram] = {}
        #: Incarnation of the stack this registry is attached to (see
        #: :meth:`rebind`); stamped into snapshot metadata so metrics
        #: recorded after a restart are distinguishable.
        self.incarnation = 0

    def rebind(
        self,
        clock: Callable[[], float] | None = None,
        incarnation: int | None = None,
    ) -> None:
        """Re-attach this registry to a new runtime context.

        Mirrors :meth:`repro.core.trace.Tracer.rebind`: a registry
        created before a process restart keeps the dead incarnation's
        clock closure; ``restart_process`` calls this so post-restart
        samples carry the right time and incarnation number.
        """
        if clock is not None:
            self._clock = clock
        if incarnation is not None:
            self.incarnation = incarnation

    def now(self) -> float:
        return self._clock()

    # -- metric factories (get-or-create, keyed on name + labels) -----------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_items({**self.const_labels, **labels}))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], buckets=buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = (name, _label_items({**self.const_labels, **labels}))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def labeled(self, **labels: Any) -> "LabeledRegistry":
        """A view of this registry with extra const labels.

        Every metric created through the view lands in *this* registry
        with ``labels`` merged in -- one shared store, many label
        scopes.  A sharded host hands each stack
        ``registry.labeled(shard="users-2")`` so per-shard series stay
        distinguishable while exporters, snapshots, and the HTTP
        endpoint keep seeing a single registry.
        """
        return LabeledRegistry(self, labels)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        """All registered metrics, in stable (name, labels) order."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> list[dict[str, Any]]:
        """One JSON-ready record per metric (see each type's
        ``snapshot``), stamped with the registry clock and incarnation."""
        time = self.now()
        records = []
        for metric in self.metrics():
            record = metric.snapshot()
            record["time"] = time
            if self.incarnation:
                record["incarnation"] = self.incarnation
            records.append(record)
        return records


class LabeledRegistry:
    """Delegating view over a :class:`MetricsRegistry` (see
    :meth:`MetricsRegistry.labeled`).

    Quacks like a registry -- ``enabled``/``counter``/``gauge``/
    ``histogram``/``rebind``/``snapshot`` -- but owns no metric store:
    every factory call forwards to the base registry with this view's
    labels merged in (explicit per-call labels still win on conflict).
    ``rebind`` forwards too, so a restarted shard re-stamps the shared
    clock and incarnation exactly as a private registry would.
    """

    enabled = True

    def __init__(self, base: "MetricsRegistry | LabeledRegistry", labels: dict[str, Any]):
        self._base = base
        self._labels = {k: str(v) for k, v in labels.items()}

    @property
    def const_labels(self) -> dict[str, str]:
        return {**self._base.const_labels, **self._labels}

    @property
    def incarnation(self) -> int:
        return self._base.incarnation

    def rebind(
        self,
        clock: Callable[[], float] | None = None,
        incarnation: int | None = None,
    ) -> None:
        self._base.rebind(clock, incarnation)

    def now(self) -> float:
        return self._base.now()

    def labeled(self, **labels: Any) -> "LabeledRegistry":
        return LabeledRegistry(self, labels)

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._base.counter(name, **{**self._labels, **labels})

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._base.gauge(name, **{**self._labels, **labels})

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._base.histogram(name, buckets=buckets, **{**self._labels, **labels})

    def __len__(self) -> int:
        return len(self._base)

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        return self._base.metrics()

    def snapshot(self) -> list[dict[str, Any]]:
        return self._base.snapshot()


class _NullMetric:
    """Shared no-op metric handle: observing costs one dynamic call."""

    __slots__ = ()
    name = "null"
    labels: LabelItems = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def snapshot(self) -> dict[str, Any]:
        return {}


_NULL_METRIC = _NullMetric()


class _NullRegistry:
    """Metrics disabled: every factory returns the shared no-op handle.

    Instrumented code guards hot paths with ``if metrics.enabled:``;
    unguarded calls still work (and do nothing).
    """

    enabled = False
    const_labels: dict[str, str] = {}
    incarnation = 0

    def rebind(
        self,
        clock: Callable[[], float] | None = None,
        incarnation: int | None = None,
    ) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **kwargs: Any) -> _NullMetric:
        return _NULL_METRIC

    def __len__(self) -> int:
        return 0

    def metrics(self) -> list:
        return []

    def snapshot(self) -> list:
        return []


#: Shared inert registry instance (the stack default).
NULL_REGISTRY = _NullRegistry()
