"""The RITAS protocol stack -- the paper's primary contribution.

Layer map (bottom to top), mirroring Figure 1 of the paper:

========================  ==========================================
Module                    Protocol
========================  ==========================================
``stack``                 RITAS channel: ids, demux, control blocks
``reliable_broadcast``    Bracha reliable broadcast
``echo_broadcast``        matrix echo broadcast
``binary_consensus``      randomized (Ben-Or/Bracha) binary consensus
``multivalued_consensus`` multi-valued consensus
``vector_consensus``      vector consensus
``atomic_broadcast``      atomic broadcast (total order)
========================  ==========================================

All protocols are sans-IO control blocks executed by a runtime from
:mod:`repro.net` (simulation) or :mod:`repro.transport` (real TCP).
"""

from repro.core.atomic_broadcast import AbDelivery, AtomicBroadcast
from repro.core.binary_consensus import BinaryConsensus
from repro.core.config import GroupConfig, max_faulty
from repro.core.echo_broadcast import EchoBroadcast
from repro.core.errors import (
    BackpressureError,
    ConfigurationError,
    InstanceDestroyedError,
    ProtocolStallError,
    ProtocolViolationError,
    RitasError,
    WireFormatError,
)
from repro.core.ledger import MisbehaviorLedger
from repro.core.mbuf import Mbuf
from repro.core.multivalued_consensus import MultiValuedConsensus
from repro.core.ooc import OocTable
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.sendq import BoundedSendQueue
from repro.core.stack import ControlBlock, ProtocolFactory, Stack
from repro.core.stats import PURPOSE_AGREEMENT, PURPOSE_APP, PURPOSE_PAYLOAD, StackStats
from repro.core.vector_consensus import VectorConsensus

__all__ = [
    "AbDelivery",
    "AtomicBroadcast",
    "BackpressureError",
    "BinaryConsensus",
    "BoundedSendQueue",
    "ConfigurationError",
    "ControlBlock",
    "EchoBroadcast",
    "GroupConfig",
    "InstanceDestroyedError",
    "Mbuf",
    "MisbehaviorLedger",
    "MultiValuedConsensus",
    "OocTable",
    "ProtocolFactory",
    "ProtocolStallError",
    "ProtocolViolationError",
    "PURPOSE_AGREEMENT",
    "PURPOSE_APP",
    "PURPOSE_PAYLOAD",
    "ReliableBroadcast",
    "RitasError",
    "Stack",
    "StackStats",
    "VectorConsensus",
    "WireFormatError",
    "max_faulty",
]
