"""Exception hierarchy for the RITAS stack."""

from __future__ import annotations


class RitasError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(RitasError):
    """A group or stack was configured inconsistently (e.g. n < 3f+1)."""


class WireFormatError(RitasError):
    """An incoming frame could not be decoded.

    Malformed frames from peers are *reported*, never trusted: the stack
    catches this error, records the offender in the statistics and drops
    the frame -- a corrupt process must not be able to crash a correct
    one by sending garbage.
    """


class ProtocolViolationError(RitasError):
    """A peer's message violates the protocol in a detectable way.

    Like :class:`WireFormatError`, this is caught at the routing layer and
    converted into a drop + statistics entry.
    """


class InstanceDestroyedError(RitasError):
    """An operation was attempted on a destroyed protocol instance."""


class BackpressureError(RitasError):
    """Admission refused: the local pending-work bound is full.

    Raised by :meth:`AtomicBroadcast.broadcast` when
    ``GroupConfig.ab_pending_cap`` locally submitted messages are still
    undelivered.  The caller should retry after deliveries drain -- the
    replicated services expose ``try_*`` variants that translate this
    into a ``False``/``None`` result instead of an exception.

    Carries the admission state that produced the refusal, so callers
    that surface backpressure to *their* clients (the gateway's
    ``retry-after`` responses) can say how loaded the replica is
    without parsing the message text:

    Attributes:
        pending: locally submitted messages still undelivered.
        cap: the configured bound (``GroupConfig.ab_pending_cap``).
    """

    def __init__(self, message: str, *, pending: int = 0, cap: int = 0):
        super().__init__(message)
        self.pending = pending
        self.cap = cap


class ProtocolStallError(RitasError):
    """A protocol exhausted a bound theory says it cannot exhaust.

    Raised, for instance, if vector consensus runs past its round cap
    ``f`` (see the liveness caveats in DESIGN.md); surfacing the
    diagnostic beats hanging forever.
    """
