"""Wire encoding for RITAS frames and structured values.

Every frame carries ``(path, mtype, payload)``:

- *path* is the hierarchical protocol-instance identifier produced by
  control-block chaining (Section 3.3 of the paper) -- a tuple of small
  ints and short strings;
- *mtype* is the message kind within the protocol (INIT/ECHO/READY/...);
- *payload* is a structured value.

The value codec is a small canonical binary format covering exactly the
types the protocols exchange: ``None`` (the paper's ⊥ default value),
bools, ints, bytes, strs, and lists thereof.  It is canonical --
equal values encode to equal bytes -- which the consensus layers rely on
to compare "the same value v" across processes.

Besides single frames, the channel may carry *batch* containers
(:func:`encode_batch`): several frames destined for the same peer,
coalesced so the transport below pays its fixed per-message costs once
per batch instead of once per frame (the dominant term in the paper's
Table 1 cost decomposition).

Decoding is defensive: any malformed input raises
:class:`~repro.core.errors.WireFormatError`, never an arbitrary Python
exception, so corrupt peers cannot crash the stack.

Hot-path notes (the per-frame CPU cost here is the fixed cost the
paper's Table 1 decomposition says dominates LAN latency):

- decoders accept any bytes-like object (``bytes``, ``bytearray``,
  ``memoryview``), and :func:`decode_batch_views` splits a batch into
  zero-copy :class:`memoryview` members so nested frames are decoded in
  place, never re-materialized;
- :func:`decode_frame_ex` also returns the *raw encoded payload* slice;
  since the codec is canonical, those bytes are exactly what
  ``encode_value(payload)`` would produce, so receivers can digest or
  MAC a payload without re-encoding it;
- the u32 length codec is a pre-compiled :class:`struct.Struct`, small
  non-negative ints encode through a precomputed table, and
  :func:`encode_frame_from_prefix` lets the stack reuse one encoded
  path prefix per instance instead of re-encoding the path every send.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Any, Sequence

from repro.core.errors import WireFormatError

FRAME_VERSION = 1

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_BYTES = 0x04
_T_STR = 0x05
_T_LIST = 0x06
#: Leading byte of a batch container (distinct from FRAME_VERSION, so a
#: receiver can tell batches from plain frames by the first byte).
_T_BATCH = 0x42

_MAX_DEPTH = 16
_MAX_LEN = 64 * 1024 * 1024  # defensive cap on any single field

#: Frames allowed in one batch container -- a corrupt peer must not be
#: able to make a receiver allocate unbounded frame lists.
MAX_BATCH_FRAMES = 4096
#: Batches nested inside batches beyond this depth are rejected.
MAX_BATCH_DEPTH = 4

_U32 = struct.Struct(">I")
_pack_u32 = _U32.pack
_unpack_u32_from = _U32.unpack_from

#: Precomputed encodings of the small non-negative ints that dominate
#: real traffic (path components, sequence numbers, vector indices).
_SMALL_INT_ENC = tuple(
    b"\x03" + _pack_u32(len(raw := i.to_bytes((i.bit_length() + 8) // 8 + 1, "big"))) + raw
    for i in range(256)
)


def encode_value(value: Any) -> bytes:
    """Canonically encode a structured value."""
    out = bytearray()
    _encode_into(out, value, 0)
    return bytes(out)


def _encode_into(out: bytearray, value: Any, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise ValueError("value nesting too deep to encode")
    cls = value.__class__
    if cls is int:
        if 0 <= value < 256:
            out += _SMALL_INT_ENC[value]
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
            out.append(_T_INT)
            out += _pack_u32(len(raw))
            out += raw
    elif cls is bytes:
        out.append(_T_BYTES)
        out += _pack_u32(len(value))
        out += value
    elif value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif cls is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_u32(len(raw))
        out += raw
    elif cls is list or cls is tuple:
        out.append(_T_LIST)
        out += _pack_u32(len(value))
        depth += 1
        for item in value:
            _encode_into(out, item, depth)
    # Subclass / alternate-buffer fallbacks, in the seed's order so the
    # accepted type set is unchanged (note bool is an int subclass but
    # was matched by identity above).
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        out.append(_T_INT)
        out += _pack_u32(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        out.append(_T_BYTES)
        out += _pack_u32(len(value))
        out += value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_u32(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += _pack_u32(len(value))
        depth += 1
        for item in value:
            _encode_into(out, item, depth)
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")


# Bounded memo for canonical encodings.  The INIT/ECHO/READY hot path
# re-encodes the same payload once per arriving vote (to digest it);
# memoizing by *structure* (not identity) makes those lookups cheap and
# stays correct even if the caller mutates its list afterwards.
_ENCODE_MEMO_MAX = 256
_encode_memo: "OrderedDict[Any, bytes]" = OrderedDict()

#: Structural-key budget: a memo *miss* must never cost more than the
#: encode it failed to avoid, so keys stop at this many nodes / this
#: much copied buffer and the value is simply encoded uncached.
_MEMO_KEY_MAX_NODES = 64
_MEMO_KEY_MAX_COPY = 4096

_UNCACHEABLE = object()


def _memo_key(value: Any, _budget: list[int] | None = None) -> Any:
    """A hashable structural key that never conflates distinct encodings.

    The class is part of the key because ``True == 1`` and
    ``hash(True) == hash(1)`` while their encodings differ.  Returns
    :data:`_UNCACHEABLE` when building the key would exceed the size
    budget (huge nested lists, big non-``bytes`` buffers): the caller
    then skips the memo instead of paying more than an encode.
    """
    if _budget is None:
        _budget = [_MEMO_KEY_MAX_NODES]
    _budget[0] -= 1
    if _budget[0] < 0:
        return _UNCACHEABLE
    if isinstance(value, (list, tuple)):
        if len(value) > _budget[0]:
            return _UNCACHEABLE
        items = []
        for item in value:
            key = _memo_key(item, _budget)
            if key is _UNCACHEABLE:
                return _UNCACHEABLE
            items.append(key)
        return (tuple, tuple(items))
    if isinstance(value, (bytearray, memoryview)):
        if len(value) > _MEMO_KEY_MAX_COPY:
            return _UNCACHEABLE
        return (bytes, bytes(value))
    return (value.__class__, value)


def encode_value_cached(value: Any) -> bytes:
    """:func:`encode_value` with a small bounded structural memo.

    Use on hot paths that repeatedly encode the same payload (digesting
    ECHO/READY votes, MAC verification).  Falls back to a plain encode
    whenever the value cannot be keyed (unhashable, or over the
    structural-key budget).
    """
    try:
        key = _memo_key(value)
        if key is _UNCACHEABLE:
            return encode_value(value)
        cached = _encode_memo.get(key)
    except TypeError:
        return encode_value(value)
    if cached is not None:
        _encode_memo.move_to_end(key)
        return cached
    encoded = encode_value(value)
    _encode_memo[key] = encoded
    if len(_encode_memo) > _ENCODE_MEMO_MAX:
        _encode_memo.popitem(last=False)
    return encoded


def encode_memo_clear() -> None:
    """Drop all memoized encodings (test isolation hook)."""
    _encode_memo.clear()


def decode_value(data: bytes) -> Any:
    """Decode a value produced by :func:`encode_value`.

    Accepts any bytes-like object.

    Raises:
        WireFormatError: on any malformed input, including trailing bytes.
    """
    value, offset = _decode_from(data, 0, 0)
    if offset != len(data):
        raise WireFormatError("trailing bytes after encoded value")
    return value


def _decode_from(data, offset: int, depth: int) -> tuple[Any, int]:
    size = len(data)
    if offset >= size:
        raise WireFormatError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_INT or tag == _T_BYTES or tag == _T_STR:
        if offset + 4 > size:
            raise WireFormatError("truncated length field")
        (length,) = _unpack_u32_from(data, offset)
        if length > _MAX_LEN:
            raise WireFormatError(f"field length {length} exceeds cap")
        offset += 4
        end = offset + length
        if end > size:
            raise WireFormatError("truncated value body")
        raw = data[offset:end]
        if tag == _T_BYTES:
            # bytes() of a bytes slice is identity; of a memoryview
            # slice it is the single copy that materializes the leaf.
            return bytes(raw), end
        if tag == _T_INT:
            if not length:
                raise WireFormatError("empty int encoding")
            return int.from_bytes(raw, "big", signed=True), end
        try:
            return str(raw, "utf-8"), end
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid utf-8 in string") from exc
    if tag == _T_LIST:
        if depth >= _MAX_DEPTH:
            raise WireFormatError("value nesting too deep")
        if offset + 4 > size:
            raise WireFormatError("truncated length field")
        (count,) = _unpack_u32_from(data, offset)
        if count > _MAX_LEN:
            raise WireFormatError(f"field length {count} exceeds cap")
        offset += 4
        items = []
        append = items.append
        depth += 1
        for _ in range(count):
            # Leaf members are decoded inline: most list members are
            # leaves, and one recursive call per member dominates decode
            # profiles otherwise.
            if offset >= size:
                raise WireFormatError("truncated value")
            member_tag = data[offset]
            if member_tag == _T_INT or member_tag == _T_BYTES or member_tag == _T_STR:
                start = offset + 1
                if start + 4 > size:
                    raise WireFormatError("truncated length field")
                (length,) = _unpack_u32_from(data, start)
                if length > _MAX_LEN:
                    raise WireFormatError(f"field length {length} exceeds cap")
                start += 4
                end = start + length
                if end > size:
                    raise WireFormatError("truncated value body")
                raw = data[start:end]
                if member_tag == _T_BYTES:
                    append(bytes(raw))
                elif member_tag == _T_INT:
                    if not length:
                        raise WireFormatError("empty int encoding")
                    append(int.from_bytes(raw, "big", signed=True))
                else:
                    try:
                        append(str(raw, "utf-8"))
                    except UnicodeDecodeError as exc:
                        raise WireFormatError("invalid utf-8 in string") from exc
                offset = end
            elif member_tag == _T_NONE:
                append(None)
                offset += 1
            elif member_tag == _T_TRUE:
                append(True)
                offset += 1
            elif member_tag == _T_FALSE:
                append(False)
                offset += 1
            else:
                item, offset = _decode_from(data, offset, depth)
                append(item)
        return items, offset
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    raise WireFormatError(f"unknown value tag 0x{tag:02x}")


def _skip_value(data, offset: int) -> int:
    """Return the offset one past the encoded value at *offset*.

    Iterative (a pending-node counter instead of recursion), touching
    only tags and length fields -- the skeleton walk behind the interned
    demux key and :func:`peek_path`.
    """
    size = len(data)
    remaining = 1
    while remaining:
        if offset >= size:
            raise WireFormatError("truncated value")
        tag = data[offset]
        offset += 1
        remaining -= 1
        if tag <= _T_TRUE:  # NONE / FALSE / TRUE: tag only
            continue
        if offset + 4 > size:
            raise WireFormatError("truncated length field")
        (length,) = _unpack_u32_from(data, offset)
        if length > _MAX_LEN:
            raise WireFormatError(f"field length {length} exceeds cap")
        offset += 4
        if tag == _T_LIST:
            remaining += length
        elif tag == _T_INT or tag == _T_BYTES or tag == _T_STR:
            offset += length
        else:
            raise WireFormatError(f"unknown value tag 0x{tag:02x}")
    if offset > size:
        raise WireFormatError("truncated value body")
    return offset


def _validate_value(data, offset: int) -> int:
    """Validate the encoded value at *offset* without building objects.

    Enforces exactly the checks :func:`_decode_from` applies at the
    frame-payload depth (the payload is element 3 of the outer frame
    list, i.e. depth 1): tags, length caps, truncation, nesting depth,
    utf-8 in strings, non-empty ints.  Returns the end offset.

    The point of the exact match is the contract the lazy
    :class:`~repro.core.mbuf.Mbuf` payload relies on: once a region
    validates, decoding it cannot fail.  Weaker validation here would
    let a Byzantine sender craft a payload that relays cleanly but
    blows up when some later hop finally decodes it -- and that hop
    would charge the *relay* with misbehavior.
    """
    return _validate_from(data, offset, 1)


def _validate_from(data, offset: int, depth: int) -> int:
    """Recursive body of :func:`_validate_value` -- the same shape as
    :func:`_decode_from` (inline leaf handling, recursion only for
    nested lists) so the two traversals accept exactly the same inputs,
    just without building any objects."""
    size = len(data)
    if offset >= size:
        raise WireFormatError("truncated value")
    tag = data[offset]
    offset += 1
    if tag <= _T_TRUE:  # NONE / FALSE / TRUE: tag only
        return offset
    if offset + 4 > size:
        raise WireFormatError("truncated length field")
    (length,) = _unpack_u32_from(data, offset)
    if length > _MAX_LEN:
        raise WireFormatError(f"field length {length} exceeds cap")
    offset += 4
    if tag == _T_BYTES:
        end = offset + length
        if end > size:
            raise WireFormatError("truncated value body")
        return end
    if tag == _T_INT:
        if not length:
            raise WireFormatError("empty int encoding")
        end = offset + length
        if end > size:
            raise WireFormatError("truncated value body")
        return end
    if tag == _T_STR:
        end = offset + length
        if end > size:
            raise WireFormatError("truncated value body")
        try:
            str(data[offset:end], "utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid utf-8 in string") from exc
        return end
    if tag == _T_LIST:
        if depth >= _MAX_DEPTH:
            raise WireFormatError("value nesting too deep")
        depth += 1
        for _ in range(length):
            if offset >= size:
                raise WireFormatError("truncated value")
            member_tag = data[offset]
            if (
                member_tag == _T_INT
                or member_tag == _T_BYTES
                or member_tag == _T_STR
            ):
                start = offset + 1
                if start + 4 > size:
                    raise WireFormatError("truncated length field")
                (member_len,) = _unpack_u32_from(data, start)
                if member_len > _MAX_LEN:
                    raise WireFormatError(f"field length {member_len} exceeds cap")
                start += 4
                end = start + member_len
                if end > size:
                    raise WireFormatError("truncated value body")
                if member_tag == _T_INT:
                    if not member_len:
                        raise WireFormatError("empty int encoding")
                elif member_tag == _T_STR:
                    try:
                        str(data[start:end], "utf-8")
                    except UnicodeDecodeError as exc:
                        raise WireFormatError("invalid utf-8 in string") from exc
                offset = end
            elif member_tag <= _T_TRUE:
                offset += 1
            else:
                offset = _validate_from(data, offset, depth)
        return offset
    raise WireFormatError(f"unknown value tag 0x{tag:02x}")


def _read_length(data, offset: int) -> tuple[int, int]:
    if offset + 4 > len(data):
        raise WireFormatError("truncated length field")
    (length,) = _unpack_u32_from(data, offset)
    if length > _MAX_LEN:
        raise WireFormatError(f"field length {length} exceeds cap")
    return length, offset + 4


# -- frames ------------------------------------------------------------------

PathComponent = int | str
Path = tuple[PathComponent, ...]

#: ``FRAME_VERSION`` byte followed by the outer 3-element list header --
#: every well-formed plain frame starts with these 6 bytes.
_FRAME_HEAD = bytes([FRAME_VERSION, _T_LIST]) + _pack_u32(3)


def encode_frame(path: Path, mtype: int, payload: Any) -> bytes:
    """Encode one protocol frame (path + message type + payload)."""
    return encode_frame_from_prefix(encode_frame_prefix(path), mtype, payload)


def encode_frame_prefix(path: Path) -> bytes:
    """The constant leading bytes of every frame of one instance.

    Concatenating this with the encodings of ``mtype`` and ``payload``
    is byte-identical to :func:`encode_frame`; the stack caches one
    prefix per live instance so the path is encoded once, not per send.
    """
    out = bytearray(_FRAME_HEAD)
    _encode_into(out, list(path), 1)
    return bytes(out)


def encode_frame_from_prefix(prefix: bytes, mtype: int, payload: Any) -> bytes:
    """Encode a frame from a precomputed :func:`encode_frame_prefix`."""
    if not 0 <= mtype <= 0xFF:
        raise ValueError(f"mtype {mtype} out of range")
    out = bytearray(prefix)
    out += _SMALL_INT_ENC[mtype]
    _encode_into(out, payload, 1)
    return bytes(out)


def frame_path_key(data) -> bytes | None:
    """The raw encoded-path bytes of a plain frame, or ``None``.

    Equal to ``encode_value(list(path))`` by canonicality, so it is a
    ready-made demux key: the stack interns one per live instance and
    dispatches frames without decoding the path into Python objects.
    ``None`` means "not a plain frame with a well-formed path skeleton"
    -- callers fall back to the full (validating) decode.
    """
    if len(data) < 7 or data[0] != FRAME_VERSION or data[1] != _T_LIST:
        return None
    (count,) = _unpack_u32_from(data, 2)
    if count != 3 or data[6] != _T_LIST:
        return None
    try:
        end = _skip_value(data, 6)
    except WireFormatError:
        return None
    return bytes(data[6:end])


def decode_frame(data) -> tuple[Path, int, Any]:
    """Decode a frame into ``(path, mtype, payload)``.

    Raises:
        WireFormatError: malformed frame or unsupported version.
    """
    path, mtype, payload, _raw = decode_frame_ex(data)
    return path, mtype, payload


def decode_frame_ex(data) -> tuple[Path, int, Any, Any]:
    """:func:`decode_frame` plus the raw encoded-payload slice.

    Returns ``(path, mtype, payload, raw_payload)`` where
    ``raw_payload`` is the bytes-like region of *data* holding the
    encoded payload -- by canonicality, exactly
    ``encode_value(payload)``.  Receivers digest / MAC payloads from it
    without re-encoding (a :class:`memoryview` input yields a zero-copy
    slice that stays valid only while the backing buffer does).
    """
    if not len(data):
        raise WireFormatError("empty frame")
    if data[0] != FRAME_VERSION:
        raise WireFormatError(f"unsupported frame version {data[0]}")
    decoded, end = _decode_from(data, 1, 0)
    if end != len(data):
        raise WireFormatError("trailing bytes after encoded value")
    if not isinstance(decoded, list) or len(decoded) != 3:
        raise WireFormatError("frame body is not a 3-element list")
    raw_path, mtype, payload = decoded
    if not isinstance(raw_path, list) or not isinstance(mtype, int):
        raise WireFormatError("malformed frame header")
    if not 0 <= mtype <= 0xFF:
        raise WireFormatError(f"mtype {mtype} out of range")
    path: list[PathComponent] = []
    for component in raw_path:
        if not isinstance(component, (int, str)) or isinstance(component, bool):
            raise WireFormatError("path components must be ints or strings")
        path.append(component)
    # The payload is the third element of the outer list: it ends where
    # the frame ends, and starts right after the path and mtype fields.
    try:
        payload_start = _skip_value(data, _skip_value(data, 6))
    except WireFormatError as exc:  # pragma: no cover - decoded above
        raise WireFormatError("malformed frame header") from exc
    return tuple(path), mtype, payload, data[payload_start:end]


def decode_frame_tail(data, offset: int) -> tuple[int, Any, Any]:
    """Decode ``(mtype, payload, raw_payload)`` of a plain frame whose
    encoded path ends at *offset* (i.e. ``6 + len(frame_path_key())``).

    The demux fast path pairs this with :func:`frame_path_key`: the
    interned key already identified the instance, so only the remainder
    of the frame is decoded.

    Raises:
        WireFormatError: malformed tail, non-int mtype, trailing bytes.
    """
    mtype, payload_start = _decode_from(data, offset, 1)
    if not isinstance(mtype, int) or not 0 <= mtype <= 0xFF:
        raise WireFormatError("malformed frame mtype")
    payload, end = _decode_from(data, payload_start, 1)
    if end != len(data):
        raise WireFormatError("trailing bytes after encoded value")
    return mtype, payload, data[payload_start:end]


def decode_frame_tail_lazy(data, offset: int) -> tuple[int, Any]:
    """Validating variant of :func:`decode_frame_tail` that leaves the
    payload encoded.

    Returns ``(mtype, raw_payload)``.  The payload region is fully
    validated (:func:`_validate_value`) but not materialized into Python
    objects -- decoding it later is guaranteed to succeed, so an
    :class:`~repro.core.mbuf.Mbuf` built from it can defer the decode
    until (unless) somebody reads ``.payload``.

    Raises:
        WireFormatError: exactly when :func:`decode_frame_tail` would.
    """
    mtype, payload_start = _decode_from(data, offset, 1)
    if not isinstance(mtype, int) or not 0 <= mtype <= 0xFF:
        raise WireFormatError("malformed frame mtype")
    end = _validate_value(data, payload_start)
    if end != len(data):
        raise WireFormatError("trailing bytes after encoded value")
    return mtype, data[payload_start:end]


# Content-addressed parse memo for the demux fast path.  A broadcast
# hands the *identical* frame bytes to every destination, and in-process
# runs (the simulator, tests) deliver them to n stacks -- so the same
# frame is parsed and validated n times.  Keying by the full frame bytes
# makes the memo trivially sound (equal bytes parse identically) and
# unpoisonable (the key IS the attacker-controlled input).  Entries are
# ``(path_key, mtype, raw_payload)`` for a fully validated plain frame,
# or ``None`` for anything else -- callers fall back to the validating
# slow path, which reproduces the unmemoized behavior exactly.
_FASTPATH_MEMO_MAX = 1024
_fastpath_memo: "OrderedDict[bytes, tuple[bytes, int, bytes] | None]" = OrderedDict()
_MEMO_MISS = object()


def frame_fastpath(data) -> tuple[bytes, int, bytes] | None:
    """Parse-and-validate a plain frame, memoized by its bytes.

    Returns ``(path_key, mtype, raw_payload)`` -- the interned demux key
    (:func:`frame_path_key`), the message type, and the *validated*
    canonical payload encoding (decoding it cannot fail, see
    :func:`_validate_value`) -- or ``None`` when *data* is not a fully
    well-formed plain frame (batches, malformed input, frames the
    validating slow path must judge).

    Repeat frames (the other n-1 copies of a broadcast, re-deliveries
    in multi-stack processes) hit the memo and skip the whole walk; the
    returned ``raw_payload`` is then the *same* bytes object every time,
    so downstream digest caches keyed on it amortize too.
    """
    frame = data if type(data) is bytes else bytes(data)
    memo = _fastpath_memo
    hit = memo.get(frame, _MEMO_MISS)
    if hit is not _MEMO_MISS:
        return hit
    result = None
    key = frame_path_key(frame)
    if key is not None:
        try:
            mtype, payload_start = _decode_from(frame, 6 + len(key), 1)
            if isinstance(mtype, int) and 0 <= mtype <= 0xFF:
                end = _validate_value(frame, payload_start)
                if end == len(frame):
                    result = (key, mtype, frame[payload_start:])
        except WireFormatError:
            result = None
    memo[frame] = result
    if len(memo) > _FASTPATH_MEMO_MAX:
        memo.popitem(last=False)
    return result


def fastpath_memo_clear() -> None:
    """Drop all memoized frame parses (test isolation hook)."""
    _fastpath_memo.clear()


def encode_frame_from_prefix_raw(prefix: bytes, mtype: int, raw) -> bytes:
    """Splice a frame from a prefix and an *already encoded* payload.

    By canonicality the result is byte-identical to
    ``encode_frame_from_prefix(prefix, mtype, decode_value(raw))`` --
    this is how a receiver relays a payload (reliable broadcast's
    ECHO/READY amplification) without ever decoding it.  *raw* must be a
    validated encoded-value region (e.g. ``Mbuf.raw_payload`` from the
    receive path); it is spliced verbatim.
    """
    if not 0 <= mtype <= 0xFF:
        raise ValueError(f"mtype {mtype} out of range")
    out = bytearray(prefix)
    out += _SMALL_INT_ENC[mtype]
    out += raw
    return bytes(out)


# -- batch containers ---------------------------------------------------------
#
# Layout (big-endian)::
#
#     u8   _T_BATCH
#     u32  frame count
#     (u32 frame length | frame bytes) * count
#
# A batch is itself a valid channel unit, so it may (rarely) appear
# inside another batch -- e.g. the TCP sender merging queue entries that
# the stack already coalesced.  Receivers bound that nesting with
# MAX_BATCH_DEPTH.


def is_batch(data) -> bool:
    """True if *data* is a batch container rather than a plain frame."""
    return bool(len(data)) and data[0] == _T_BATCH


def encode_batch(frames: Sequence[bytes]) -> bytes:
    """Coalesce several channel units into one batch container."""
    if not frames:
        raise ValueError("cannot encode an empty batch")
    if len(frames) > MAX_BATCH_FRAMES:
        raise ValueError(f"batch of {len(frames)} exceeds cap {MAX_BATCH_FRAMES}")
    out = bytearray(b"\x42")
    out += _pack_u32(len(frames))
    for frame in frames:
        size = len(frame)
        if not size:
            raise ValueError("cannot batch an empty frame")
        if size > _MAX_LEN:
            raise ValueError(f"frame of {size} bytes exceeds cap")
        out += _pack_u32(size)
        out += frame
    return bytes(out)


def decode_batch(data) -> list[bytes]:
    """Split a batch container back into its channel units (as copies).

    Raises:
        WireFormatError: not a batch, malformed lengths, an empty or
            over-cap member, a count over :data:`MAX_BATCH_FRAMES`, or
            trailing bytes.
    """
    return [bytes(member) for member in decode_batch_views(data)]


def decode_batch_views(data) -> list[memoryview]:
    """Split a batch container into zero-copy :class:`memoryview` members.

    The views alias *data*: no member is re-materialized, so receivers
    decode nested frames straight out of the container buffer.  Each
    view stays valid only while *data* does.  Validation is identical
    to :func:`decode_batch`.
    """
    if not is_batch(data):
        raise WireFormatError("not a batch container")
    view = data if type(data) is memoryview else memoryview(data)
    size = len(view)
    if size < 5:
        raise WireFormatError("truncated batch count")
    (count,) = _unpack_u32_from(view, 1)
    if count == 0:
        raise WireFormatError("empty batch")
    if count > MAX_BATCH_FRAMES:
        raise WireFormatError(f"batch count {count} exceeds cap {MAX_BATCH_FRAMES}")
    offset = 5
    frames: list[memoryview] = []
    append = frames.append
    for _ in range(count):
        if offset + 4 > size:
            raise WireFormatError("truncated length field")
        (length,) = _unpack_u32_from(view, offset)
        if length > _MAX_LEN:
            raise WireFormatError(f"field length {length} exceeds cap")
        if length == 0:
            raise WireFormatError("empty frame in batch")
        offset += 4
        end = offset + length
        if end > size:
            raise WireFormatError("truncated frame in batch")
        append(view[offset:end])
        offset = end
    if offset != size:
        raise WireFormatError("trailing bytes after batch")
    return frames


# -- priority classification ---------------------------------------------------
#
# When an outbound queue must shed (GroupConfig.send_queue_max_frames),
# not all frames are equal: losing an agreement-layer vote can stall the
# whole group for a round, while a shed payload retransmission or bulk
# state-transfer chunk only costs the sender a retry.  Classification
# reads just enough of the frame header to find the path -- the payload
# is never decoded.

#: Bulk transfers (checkpoint / state transfer) and anything malformed.
PRIORITY_BULK = 0
#: Application payload dissemination (AB_MSG broadcasts) -- the default.
PRIORITY_PAYLOAD = 1
#: Agreement-layer frames: consensus votes and the broadcasts under them.
PRIORITY_AGREEMENT = 2

#: Path components that mark an agreement subtree: atomic broadcast's
#: per-round vector consensus ("vect") and the consensus protocols
#: themselves (multi-valued, binary, vector).
_AGREEMENT_COMPONENTS = frozenset({"vect", "mvc", "bc", "vc"})

#: Path heads that mark bulk transfers: the checkpoint / state-transfer
#: protocol mounts at ("rec",) by convention ("ckpt" kept for custom
#: mount points named after the protocol kind).
_BULK_HEADS = frozenset({"rec", "ckpt"})


def peek_path(data) -> Path | None:
    """Extract a plain frame's path without decoding its payload.

    Returns ``None`` for batches, malformed frames, or anything else
    that is not a well-formed single frame header -- callers use this
    for best-effort classification, never for protocol decisions.
    """
    if len(data) < 6 or data[0] != FRAME_VERSION or data[1] != _T_LIST:
        return None
    (count,) = _unpack_u32_from(data, 2)
    if count != 3:
        return None
    try:
        raw_path, _ = _decode_from(data, 6, 1)
    except WireFormatError:
        return None
    if not isinstance(raw_path, list):
        return None
    path: list[PathComponent] = []
    for component in raw_path:
        if not isinstance(component, (int, str)) or isinstance(component, bool):
            return None
        path.append(component)
    return tuple(path)


def frame_priority(data, _depth: int = 0) -> int:
    """Shedding priority of one channel unit (higher survives longer).

    Batches take the highest priority of their members, so coalescing
    never demotes an agreement vote riding with payload frames.
    Members are walked as zero-copy views with an early exit once the
    maximum class is reached.
    """
    if is_batch(data):
        if _depth >= MAX_BATCH_DEPTH:
            return PRIORITY_BULK
        try:
            members = decode_batch_views(data)
        except WireFormatError:
            return PRIORITY_BULK
        best = PRIORITY_BULK
        for member in members:
            priority = frame_priority(member, _depth + 1)
            if priority == PRIORITY_AGREEMENT:
                return PRIORITY_AGREEMENT
            if priority > best:
                best = priority
        return best
    path = peek_path(data)
    if path is None:
        return PRIORITY_BULK
    if path and path[0] in _BULK_HEADS:
        return PRIORITY_BULK
    for component in path:
        if component in _AGREEMENT_COMPONENTS:
            return PRIORITY_AGREEMENT
    return PRIORITY_PAYLOAD
