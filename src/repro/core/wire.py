"""Wire encoding for RITAS frames and structured values.

Every frame carries ``(path, mtype, payload)``:

- *path* is the hierarchical protocol-instance identifier produced by
  control-block chaining (Section 3.3 of the paper) -- a tuple of small
  ints and short strings;
- *mtype* is the message kind within the protocol (INIT/ECHO/READY/...);
- *payload* is a structured value.

The value codec is a small canonical binary format covering exactly the
types the protocols exchange: ``None`` (the paper's ⊥ default value),
bools, ints, bytes, strs, and lists thereof.  It is canonical --
equal values encode to equal bytes -- which the consensus layers rely on
to compare "the same value v" across processes.

Decoding is defensive: any malformed input raises
:class:`~repro.core.errors.WireFormatError`, never an arbitrary Python
exception, so corrupt peers cannot crash the stack.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.errors import WireFormatError

FRAME_VERSION = 1

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_BYTES = 0x04
_T_STR = 0x05
_T_LIST = 0x06

_MAX_DEPTH = 16
_MAX_LEN = 64 * 1024 * 1024  # defensive cap on any single field


def encode_value(value: Any) -> bytes:
    """Canonically encode a structured value."""
    out = bytearray()
    _encode_into(out, value, 0)
    return bytes(out)


def _encode_into(out: bytearray, value: Any, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise ValueError("value nesting too deep to encode")
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        out.append(_T_INT)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_into(out, item, depth + 1)
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes) -> Any:
    """Decode a value produced by :func:`encode_value`.

    Raises:
        WireFormatError: on any malformed input, including trailing bytes.
    """
    value, offset = _decode_from(data, 0, 0)
    if offset != len(data):
        raise WireFormatError("trailing bytes after encoded value")
    return value


def _decode_from(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise WireFormatError("value nesting too deep")
    if offset >= len(data):
        raise WireFormatError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag in (_T_INT, _T_BYTES, _T_STR):
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise WireFormatError("truncated value body")
        raw = data[offset:end]
        if tag == _T_INT:
            if not raw:
                raise WireFormatError("empty int encoding")
            return int.from_bytes(raw, "big", signed=True), end
        if tag == _T_BYTES:
            return raw, end
        try:
            return raw.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid utf-8 in string") from exc
    if tag == _T_LIST:
        count, offset = _read_length(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset, depth + 1)
            items.append(item)
        return items, offset
    raise WireFormatError(f"unknown value tag 0x{tag:02x}")


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(data):
        raise WireFormatError("truncated length field")
    (length,) = struct.unpack_from(">I", data, offset)
    if length > _MAX_LEN:
        raise WireFormatError(f"field length {length} exceeds cap")
    return length, offset + 4


# -- frames ------------------------------------------------------------------

PathComponent = int | str
Path = tuple[PathComponent, ...]


def encode_frame(path: Path, mtype: int, payload: Any) -> bytes:
    """Encode one protocol frame (path + message type + payload)."""
    if not 0 <= mtype <= 0xFF:
        raise ValueError(f"mtype {mtype} out of range")
    body = encode_value([list(path), mtype, payload])
    return bytes([FRAME_VERSION]) + body


def decode_frame(data: bytes) -> tuple[Path, int, Any]:
    """Decode a frame into ``(path, mtype, payload)``.

    Raises:
        WireFormatError: malformed frame or unsupported version.
    """
    if not data:
        raise WireFormatError("empty frame")
    if data[0] != FRAME_VERSION:
        raise WireFormatError(f"unsupported frame version {data[0]}")
    decoded = decode_value(data[1:])
    if not isinstance(decoded, list) or len(decoded) != 3:
        raise WireFormatError("frame body is not a 3-element list")
    raw_path, mtype, payload = decoded
    if not isinstance(raw_path, list) or not isinstance(mtype, int):
        raise WireFormatError("malformed frame header")
    if not 0 <= mtype <= 0xFF:
        raise WireFormatError(f"mtype {mtype} out of range")
    path: list[PathComponent] = []
    for component in raw_path:
        if not isinstance(component, (int, str)) or isinstance(component, bool):
            raise WireFormatError("path components must be ints or strings")
        path.append(component)
    return tuple(path), mtype, payload
