"""Wire encoding for RITAS frames and structured values.

Every frame carries ``(path, mtype, payload)``:

- *path* is the hierarchical protocol-instance identifier produced by
  control-block chaining (Section 3.3 of the paper) -- a tuple of small
  ints and short strings;
- *mtype* is the message kind within the protocol (INIT/ECHO/READY/...);
- *payload* is a structured value.

The value codec is a small canonical binary format covering exactly the
types the protocols exchange: ``None`` (the paper's ⊥ default value),
bools, ints, bytes, strs, and lists thereof.  It is canonical --
equal values encode to equal bytes -- which the consensus layers rely on
to compare "the same value v" across processes.

Besides single frames, the channel may carry *batch* containers
(:func:`encode_batch`): several frames destined for the same peer,
coalesced so the transport below pays its fixed per-message costs once
per batch instead of once per frame (the dominant term in the paper's
Table 1 cost decomposition).

Decoding is defensive: any malformed input raises
:class:`~repro.core.errors.WireFormatError`, never an arbitrary Python
exception, so corrupt peers cannot crash the stack.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Any, Sequence

from repro.core.errors import WireFormatError

FRAME_VERSION = 1

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_BYTES = 0x04
_T_STR = 0x05
_T_LIST = 0x06
#: Leading byte of a batch container (distinct from FRAME_VERSION, so a
#: receiver can tell batches from plain frames by the first byte).
_T_BATCH = 0x42

_MAX_DEPTH = 16
_MAX_LEN = 64 * 1024 * 1024  # defensive cap on any single field

#: Frames allowed in one batch container -- a corrupt peer must not be
#: able to make a receiver allocate unbounded frame lists.
MAX_BATCH_FRAMES = 4096
#: Batches nested inside batches beyond this depth are rejected.
MAX_BATCH_DEPTH = 4


def encode_value(value: Any) -> bytes:
    """Canonically encode a structured value."""
    out = bytearray()
    _encode_into(out, value, 0)
    return bytes(out)


def _encode_into(out: bytearray, value: Any, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise ValueError("value nesting too deep to encode")
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        out.append(_T_INT)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_into(out, item, depth + 1)
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")


# Bounded memo for canonical encodings.  The INIT/ECHO/READY hot path
# re-encodes the same payload once per arriving vote (to digest it);
# memoizing by *structure* (not identity) makes those lookups cheap and
# stays correct even if the caller mutates its list afterwards.
_ENCODE_MEMO_MAX = 256
_encode_memo: "OrderedDict[Any, bytes]" = OrderedDict()


def _memo_key(value: Any) -> Any:
    """A hashable structural key that never conflates distinct encodings.

    The class is part of the key because ``True == 1`` and
    ``hash(True) == hash(1)`` while their encodings differ.
    """
    if isinstance(value, (list, tuple)):
        return (tuple, tuple(_memo_key(item) for item in value))
    if isinstance(value, (bytearray, memoryview)):
        return (bytes, bytes(value))
    return (value.__class__, value)


def encode_value_cached(value: Any) -> bytes:
    """:func:`encode_value` with a small bounded structural memo.

    Use on hot paths that repeatedly encode the same payload (digesting
    ECHO/READY votes, MAC verification).  Falls back to a plain encode
    whenever the value cannot be keyed.
    """
    try:
        key = _memo_key(value)
        cached = _encode_memo.get(key)
    except TypeError:
        return encode_value(value)
    if cached is not None:
        _encode_memo.move_to_end(key)
        return cached
    encoded = encode_value(value)
    _encode_memo[key] = encoded
    if len(_encode_memo) > _ENCODE_MEMO_MAX:
        _encode_memo.popitem(last=False)
    return encoded


def encode_memo_clear() -> None:
    """Drop all memoized encodings (test isolation hook)."""
    _encode_memo.clear()


def decode_value(data: bytes) -> Any:
    """Decode a value produced by :func:`encode_value`.

    Raises:
        WireFormatError: on any malformed input, including trailing bytes.
    """
    value, offset = _decode_from(data, 0, 0)
    if offset != len(data):
        raise WireFormatError("trailing bytes after encoded value")
    return value


def _decode_from(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise WireFormatError("value nesting too deep")
    if offset >= len(data):
        raise WireFormatError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag in (_T_INT, _T_BYTES, _T_STR):
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise WireFormatError("truncated value body")
        raw = data[offset:end]
        if tag == _T_INT:
            if not raw:
                raise WireFormatError("empty int encoding")
            return int.from_bytes(raw, "big", signed=True), end
        if tag == _T_BYTES:
            return raw, end
        try:
            return raw.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid utf-8 in string") from exc
    if tag == _T_LIST:
        count, offset = _read_length(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset, depth + 1)
            items.append(item)
        return items, offset
    raise WireFormatError(f"unknown value tag 0x{tag:02x}")


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(data):
        raise WireFormatError("truncated length field")
    (length,) = struct.unpack_from(">I", data, offset)
    if length > _MAX_LEN:
        raise WireFormatError(f"field length {length} exceeds cap")
    return length, offset + 4


# -- frames ------------------------------------------------------------------

PathComponent = int | str
Path = tuple[PathComponent, ...]


def encode_frame(path: Path, mtype: int, payload: Any) -> bytes:
    """Encode one protocol frame (path + message type + payload)."""
    if not 0 <= mtype <= 0xFF:
        raise ValueError(f"mtype {mtype} out of range")
    body = encode_value([list(path), mtype, payload])
    return bytes([FRAME_VERSION]) + body


def decode_frame(data: bytes) -> tuple[Path, int, Any]:
    """Decode a frame into ``(path, mtype, payload)``.

    Raises:
        WireFormatError: malformed frame or unsupported version.
    """
    if not data:
        raise WireFormatError("empty frame")
    if data[0] != FRAME_VERSION:
        raise WireFormatError(f"unsupported frame version {data[0]}")
    decoded = decode_value(data[1:])
    if not isinstance(decoded, list) or len(decoded) != 3:
        raise WireFormatError("frame body is not a 3-element list")
    raw_path, mtype, payload = decoded
    if not isinstance(raw_path, list) or not isinstance(mtype, int):
        raise WireFormatError("malformed frame header")
    if not 0 <= mtype <= 0xFF:
        raise WireFormatError(f"mtype {mtype} out of range")
    path: list[PathComponent] = []
    for component in raw_path:
        if not isinstance(component, (int, str)) or isinstance(component, bool):
            raise WireFormatError("path components must be ints or strings")
        path.append(component)
    return tuple(path), mtype, payload


# -- batch containers ---------------------------------------------------------
#
# Layout (big-endian)::
#
#     u8   _T_BATCH
#     u32  frame count
#     (u32 frame length | frame bytes) * count
#
# A batch is itself a valid channel unit, so it may (rarely) appear
# inside another batch -- e.g. the TCP sender merging queue entries that
# the stack already coalesced.  Receivers bound that nesting with
# MAX_BATCH_DEPTH.


def is_batch(data: bytes) -> bool:
    """True if *data* is a batch container rather than a plain frame."""
    return bool(data) and data[0] == _T_BATCH


def encode_batch(frames: Sequence[bytes]) -> bytes:
    """Coalesce several channel units into one batch container."""
    if not frames:
        raise ValueError("cannot encode an empty batch")
    if len(frames) > MAX_BATCH_FRAMES:
        raise ValueError(f"batch of {len(frames)} exceeds cap {MAX_BATCH_FRAMES}")
    out = bytearray([_T_BATCH])
    out += struct.pack(">I", len(frames))
    for frame in frames:
        if not frame:
            raise ValueError("cannot batch an empty frame")
        if len(frame) > _MAX_LEN:
            raise ValueError(f"frame of {len(frame)} bytes exceeds cap")
        out += struct.pack(">I", len(frame))
        out += frame
    return bytes(out)


def decode_batch(data: bytes) -> list[bytes]:
    """Split a batch container back into its channel units.

    Raises:
        WireFormatError: not a batch, malformed lengths, an empty or
            over-cap member, a count over :data:`MAX_BATCH_FRAMES`, or
            trailing bytes.
    """
    if not is_batch(data):
        raise WireFormatError("not a batch container")
    offset = 1
    if offset + 4 > len(data):
        raise WireFormatError("truncated batch count")
    (count,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if count == 0:
        raise WireFormatError("empty batch")
    if count > MAX_BATCH_FRAMES:
        raise WireFormatError(f"batch count {count} exceeds cap {MAX_BATCH_FRAMES}")
    frames: list[bytes] = []
    for _ in range(count):
        length, offset = _read_length(data, offset)
        if length == 0:
            raise WireFormatError("empty frame in batch")
        end = offset + length
        if end > len(data):
            raise WireFormatError("truncated frame in batch")
        frames.append(data[offset:end])
        offset = end
    if offset != len(data):
        raise WireFormatError("trailing bytes after batch")
    return frames


# -- priority classification ---------------------------------------------------
#
# When an outbound queue must shed (GroupConfig.send_queue_max_frames),
# not all frames are equal: losing an agreement-layer vote can stall the
# whole group for a round, while a shed payload retransmission or bulk
# state-transfer chunk only costs the sender a retry.  Classification
# reads just enough of the frame header to find the path -- the payload
# is never decoded.

#: Bulk transfers (checkpoint / state transfer) and anything malformed.
PRIORITY_BULK = 0
#: Application payload dissemination (AB_MSG broadcasts) -- the default.
PRIORITY_PAYLOAD = 1
#: Agreement-layer frames: consensus votes and the broadcasts under them.
PRIORITY_AGREEMENT = 2

#: Path components that mark an agreement subtree: atomic broadcast's
#: per-round vector consensus ("vect") and the consensus protocols
#: themselves (multi-valued, binary, vector).
_AGREEMENT_COMPONENTS = frozenset({"vect", "mvc", "bc", "vc"})

#: Path heads that mark bulk transfers: the checkpoint / state-transfer
#: protocol mounts at ("rec",) by convention ("ckpt" kept for custom
#: mount points named after the protocol kind).
_BULK_HEADS = frozenset({"rec", "ckpt"})


def peek_path(data: bytes) -> Path | None:
    """Extract a plain frame's path without decoding its payload.

    Returns ``None`` for batches, malformed frames, or anything else
    that is not a well-formed single frame header -- callers use this
    for best-effort classification, never for protocol decisions.
    """
    if len(data) < 6 or data[0] != FRAME_VERSION or data[1] != _T_LIST:
        return None
    (count,) = struct.unpack_from(">I", data, 2)
    if count != 3:
        return None
    try:
        raw_path, _ = _decode_from(data, 6, 1)
    except WireFormatError:
        return None
    if not isinstance(raw_path, list):
        return None
    path: list[PathComponent] = []
    for component in raw_path:
        if not isinstance(component, (int, str)) or isinstance(component, bool):
            return None
        path.append(component)
    return tuple(path)


def frame_priority(data: bytes, _depth: int = 0) -> int:
    """Shedding priority of one channel unit (higher survives longer).

    Batches take the highest priority of their members, so coalescing
    never demotes an agreement vote riding with payload frames.
    """
    if is_batch(data):
        if _depth >= MAX_BATCH_DEPTH:
            return PRIORITY_BULK
        try:
            members = decode_batch(data)
        except WireFormatError:
            return PRIORITY_BULK
        return max(frame_priority(member, _depth + 1) for member in members)
    path = peek_path(data)
    if path is None:
        return PRIORITY_BULK
    if path and path[0] in _BULK_HEADS:
        return PRIORITY_BULK
    if any(component in _AGREEMENT_COMPONENTS for component in path):
        return PRIORITY_AGREEMENT
    return PRIORITY_PAYLOAD
