"""Bracha's reliable broadcast (Section 2.2 of the paper).

Guarantees, with up to ``f = floor((n-1)/3)`` Byzantine processes:

1. all correct processes deliver the same message (or none);
2. if the sender is correct, the message is delivered.

Protocol, for sender *s* and message *m*:

- *s* sends ``(INIT, m)`` to all;
- on ``INIT``, a process sends ``(ECHO, m)`` to all;
- on ``floor((n+f)/2)+1`` ECHOs *or* ``f+1`` READYs for the same *m*, a
  process sends ``(READY, m)`` to all (once);
- on ``2f+1`` READYs for the same *m*, it delivers *m*.

One :class:`ReliableBroadcast` control block handles one broadcast by
one sender.  Equivocation (a corrupt sender or echoer sending different
messages to different processes) is handled by counting ECHO/READY
support per message digest and per source process.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.trace import KIND_BROADCAST
from repro.core.wire import Path, decode_value, encode_value_cached
from repro.crypto.hashing import hash_bytes
from repro.obs.metrics import COUNT_BUCKETS

MSG_INIT = 0
MSG_ECHO = 1
MSG_READY = 2

# Content-addressed payload-digest memo, shared across instances: the
# same encoded payload is digested once per arriving ECHO/READY vote on
# every process (n-1 times per phase per broadcast), and the receive
# fast path hands repeat frames the *same* raw bytes object, so the
# dict lookup amortizes to a cached-hash probe.  Sound because the key
# is the exact bytes being digested.
_DIGEST_MEMO_MAX = 512
_digest_memo: "OrderedDict[bytes, bytes]" = OrderedDict()


def _digest_of_raw(raw) -> tuple[bytes, bytes]:
    """``(digest, canonical_bytes)`` of a raw encoded payload, memoized."""
    key = raw if type(raw) is bytes else bytes(raw)
    memo = _digest_memo
    digest = memo.get(key)
    if digest is None:
        digest = hash_bytes(key)
        memo[key] = digest
        if len(memo) > _DIGEST_MEMO_MAX:
            memo.popitem(last=False)
    return digest, key


class ReliableBroadcast(ControlBlock):
    """One Bracha broadcast instance (one sender, one message)."""

    protocol = "rb"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
        *,
        sender: int,
    ):
        super().__init__(stack, path, parent, purpose)
        if sender not in self.config.process_ids:
            raise ValueError(f"sender {sender} not in group")
        self.sender = sender
        self.delivered = False
        self.delivered_value: Any = None
        self._init_seen = False
        self._echo_sent = False
        self._ready_sent = False
        # digest -> decoded payload (kept so delivery can hand the value
        # up); populated lazily -- vote handling works on digests and
        # raw encodings alone, so a payload is decoded at most once per
        # digest, at delivery or when relayed without its encoding.
        self._payloads: dict[bytes, Any] = {}
        # digest -> canonical payload encoding, straight off the wire.
        # ECHO/READY amplification splices these back into outgoing
        # frames (send_all_raw) without ever building the Python value.
        self._raws: dict[bytes, bytes] = {}
        # digest -> set of source pids, one vote per source per phase.
        self._echoes: dict[bytes, set[int]] = {}
        self._readies: dict[bytes, set[int]] = {}
        # Sources already counted in each phase (equivocation guard).
        self._echo_sources: set[int] = set()
        self._ready_sources: set[int] = set()

    # -- sending ----------------------------------------------------------------

    def broadcast(self, payload: Any) -> None:
        """Start the broadcast.  Only the designated sender may call this."""
        if self.me != self.sender:
            raise ProtocolViolationError(
                f"p{self.me} cannot broadcast on instance owned by p{self.sender}"
            )
        self.stack.stats.record_broadcast(self.protocol, self.purpose)
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(
                self.me, KIND_BROADCAST, self.path, protocol=self.protocol
            )
        if self.stack.metrics.enabled:
            self.stack.metrics.histogram(
                "ritas_broadcast_payload_bytes",
                buckets=COUNT_BUCKETS,
                protocol=self.protocol,
                purpose=self.purpose,
            ).observe(len(encode_value_cached(payload)))
        self.send_all(MSG_INIT, payload)

    # -- introspection -----------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["sender"] = self.sender
        state["delivered"] = self.delivered
        if self.delivered:
            # A digest, not the value: cheap to compare across processes
            # and hashable regardless of the payload's shape.
            state["value_digest"] = self._digest_of(self.delivered_value)
        return state

    # -- receiving ----------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        if self.destroyed:
            return
        # Tuple-indexed dispatch: INIT/ECHO/READY are the densest vote
        # path in the stack (every broadcast crosses it n^2 times).
        mtype = mbuf.mtype
        if 0 <= mtype <= 2:
            _RB_HANDLERS[mtype](self, mbuf)
        else:
            raise ProtocolViolationError(f"unknown rb mtype {mbuf.mtype}")

    def _on_init(self, mbuf: Mbuf) -> None:
        if mbuf.src != self.sender:
            raise ProtocolViolationError(
                f"INIT from p{mbuf.src} on broadcast owned by p{self.sender}"
            )
        if self._init_seen:
            return  # duplicate / equivocating INIT: only the first counts
        self._init_seen = True
        if not self._echo_sent:
            self._echo_sent = True
            raw = mbuf.raw_payload
            if raw is not None:
                # Relay the INIT's canonical encoding verbatim -- no
                # decode of the inbound payload, no re-encode outbound,
                # identical bytes on the wire.
                self.send_all_raw(MSG_ECHO, raw)
            else:
                self.send_all(MSG_ECHO, mbuf.payload)

    def _on_echo(self, mbuf: Mbuf) -> None:
        if mbuf.src in self._echo_sources:
            return
        self._echo_sources.add(mbuf.src)
        digest = self._digest_of_mbuf(mbuf)
        self._echoes.setdefault(digest, set()).add(mbuf.src)
        self._check_progress(digest)

    def _on_ready(self, mbuf: Mbuf) -> None:
        if mbuf.src in self._ready_sources:
            return
        self._ready_sources.add(mbuf.src)
        digest = self._digest_of_mbuf(mbuf)
        self._readies.setdefault(digest, set()).add(mbuf.src)
        self._check_progress(digest)

    def _digest_of_mbuf(self, mbuf: Mbuf) -> bytes:
        # The frame already carries the canonical payload encoding:
        # digest it straight from the wire slice instead of re-encoding
        # the decoded value (identical digest, the codec is canonical).
        # The decoded value is deliberately NOT touched here -- for a
        # lazy mbuf that would force the decode this fast path exists to
        # avoid; _value_of materializes it at most once per digest.
        raw = mbuf.raw_payload
        if raw is not None:
            digest, canonical = _digest_of_raw(raw)
            if digest not in self._raws and digest not in self._payloads:
                self._raws[digest] = canonical
            return digest
        return self._digest_of(mbuf.payload)

    def _digest_of(self, payload: Any) -> bytes:
        # Cached: the same payload is re-encoded once per arriving
        # ECHO/READY vote, n-1 times per well-behaved broadcast.
        digest = hash_bytes(encode_value_cached(payload))
        self._payloads.setdefault(digest, payload)
        return digest

    def _value_of(self, digest: bytes) -> Any:
        """The decoded payload for *digest*, materialized at most once.

        The raw encoding was validated by the receive path, so the
        decode cannot fail.
        """
        try:
            return self._payloads[digest]
        except KeyError:
            value = decode_value(self._raws[digest])
            self._payloads[digest] = value
            return value

    def _check_progress(self, digest: bytes) -> None:
        cfg = self.config
        echoes = len(self._echoes.get(digest, ()))
        readies = len(self._readies.get(digest, ()))
        if not self._ready_sent and (
            echoes >= cfg.echo_quorum or readies >= cfg.ready_amplify
        ):
            self._ready_sent = True
            raw = self._raws.get(digest)
            if raw is not None:
                self.send_all_raw(MSG_READY, raw)
            else:
                self.send_all(MSG_READY, self._payloads[digest])
        if not self.delivered and readies >= cfg.ready_quorum:
            self.delivered = True
            self.delivered_value = self._value_of(digest)
            self.deliver(self.delivered_value)


#: INIT/ECHO/READY handlers indexed by mtype (see ReliableBroadcast.input).
_RB_HANDLERS = (
    ReliableBroadcast._on_init,
    ReliableBroadcast._on_echo,
    ReliableBroadcast._on_ready,
)
