"""Bracha's reliable broadcast (Section 2.2 of the paper).

Guarantees, with up to ``f = floor((n-1)/3)`` Byzantine processes:

1. all correct processes deliver the same message (or none);
2. if the sender is correct, the message is delivered.

Protocol, for sender *s* and message *m*:

- *s* sends ``(INIT, m)`` to all;
- on ``INIT``, a process sends ``(ECHO, m)`` to all;
- on ``floor((n+f)/2)+1`` ECHOs *or* ``f+1`` READYs for the same *m*, a
  process sends ``(READY, m)`` to all (once);
- on ``2f+1`` READYs for the same *m*, it delivers *m*.

One :class:`ReliableBroadcast` control block handles one broadcast by
one sender.  Equivocation (a corrupt sender or echoer sending different
messages to different processes) is handled by counting ECHO/READY
support per message digest and per source process.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.trace import KIND_BROADCAST
from repro.core.wire import Path, encode_value_cached
from repro.crypto.hashing import hash_bytes
from repro.obs.metrics import COUNT_BUCKETS

MSG_INIT = 0
MSG_ECHO = 1
MSG_READY = 2


class ReliableBroadcast(ControlBlock):
    """One Bracha broadcast instance (one sender, one message)."""

    protocol = "rb"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
        *,
        sender: int,
    ):
        super().__init__(stack, path, parent, purpose)
        if sender not in self.config.process_ids:
            raise ValueError(f"sender {sender} not in group")
        self.sender = sender
        self.delivered = False
        self.delivered_value: Any = None
        self._init_seen = False
        self._echo_sent = False
        self._ready_sent = False
        # digest -> payload (kept so delivery can hand the value up).
        self._payloads: dict[bytes, Any] = {}
        # digest -> set of source pids, one vote per source per phase.
        self._echoes: dict[bytes, set[int]] = {}
        self._readies: dict[bytes, set[int]] = {}
        # Sources already counted in each phase (equivocation guard).
        self._echo_sources: set[int] = set()
        self._ready_sources: set[int] = set()

    # -- sending ----------------------------------------------------------------

    def broadcast(self, payload: Any) -> None:
        """Start the broadcast.  Only the designated sender may call this."""
        if self.me != self.sender:
            raise ProtocolViolationError(
                f"p{self.me} cannot broadcast on instance owned by p{self.sender}"
            )
        self.stack.stats.record_broadcast(self.protocol, self.purpose)
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(
                self.me, KIND_BROADCAST, self.path, protocol=self.protocol
            )
        if self.stack.metrics.enabled:
            self.stack.metrics.histogram(
                "ritas_broadcast_payload_bytes",
                buckets=COUNT_BUCKETS,
                protocol=self.protocol,
                purpose=self.purpose,
            ).observe(len(encode_value_cached(payload)))
        self.send_all(MSG_INIT, payload)

    # -- introspection -----------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["sender"] = self.sender
        state["delivered"] = self.delivered
        if self.delivered:
            # A digest, not the value: cheap to compare across processes
            # and hashable regardless of the payload's shape.
            state["value_digest"] = self._digest_of(self.delivered_value)
        return state

    # -- receiving ----------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        if self.destroyed:
            return
        if mbuf.mtype == MSG_INIT:
            self._on_init(mbuf)
        elif mbuf.mtype == MSG_ECHO:
            self._on_echo(mbuf)
        elif mbuf.mtype == MSG_READY:
            self._on_ready(mbuf)
        else:
            raise ProtocolViolationError(f"unknown rb mtype {mbuf.mtype}")

    def _on_init(self, mbuf: Mbuf) -> None:
        if mbuf.src != self.sender:
            raise ProtocolViolationError(
                f"INIT from p{mbuf.src} on broadcast owned by p{self.sender}"
            )
        if self._init_seen:
            return  # duplicate / equivocating INIT: only the first counts
        self._init_seen = True
        if not self._echo_sent:
            self._echo_sent = True
            self.send_all(MSG_ECHO, mbuf.payload)

    def _on_echo(self, mbuf: Mbuf) -> None:
        if mbuf.src in self._echo_sources:
            return
        self._echo_sources.add(mbuf.src)
        digest = self._digest_of(mbuf.payload)
        self._echoes.setdefault(digest, set()).add(mbuf.src)
        self._check_progress(digest)

    def _on_ready(self, mbuf: Mbuf) -> None:
        if mbuf.src in self._ready_sources:
            return
        self._ready_sources.add(mbuf.src)
        digest = self._digest_of(mbuf.payload)
        self._readies.setdefault(digest, set()).add(mbuf.src)
        self._check_progress(digest)

    def _digest_of(self, payload: Any) -> bytes:
        # Cached: the same payload is re-encoded once per arriving
        # ECHO/READY vote, n-1 times per well-behaved broadcast.
        digest = hash_bytes(encode_value_cached(payload))
        self._payloads.setdefault(digest, payload)
        return digest

    def _check_progress(self, digest: bytes) -> None:
        cfg = self.config
        echoes = len(self._echoes.get(digest, ()))
        readies = len(self._readies.get(digest, ()))
        if not self._ready_sent and (
            echoes >= cfg.echo_quorum or readies >= cfg.ready_amplify
        ):
            self._ready_sent = True
            self.send_all(MSG_READY, self._payloads[digest])
        if not self.delivered and readies >= cfg.ready_quorum:
            self.delivered = True
            self.delivered_value = self._payloads[digest]
            self.deliver(self.delivered_value)
