"""Message buffers (*mbufs*) -- the unit of exchange between layers.

Modeled on the data structure of the same name in the original C
implementation (itself inspired by the Net/3 kernel): one mbuf holds
exactly one message plus the metadata the stack needs to route and
account for it.  Layers communicate by passing mbuf references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.wire import Path


@dataclass(slots=True)
class Mbuf:
    """One in-flight message.

    Attributes:
        src: process id of the sender (as reported by the reliable
            channel, which authenticates the link -- a corrupt process
            cannot spoof another's id).
        path: protocol-instance path the message is addressed to.
        mtype: protocol-specific message kind.
        payload: decoded structured payload.
        wire_size: size in bytes of the encoded frame, excluding
            transport headers; used by the network model and statistics.
        recv_time: local clock value when the frame was received, or
            ``None`` for locally originated mbufs.
    """

    src: int
    path: Path
    mtype: int
    payload: Any
    wire_size: int = 0
    recv_time: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Short human-readable summary, for logs and assertion messages."""
        path = "/".join(str(c) for c in self.path)
        return f"mbuf(src=p{self.src}, path={path}, mtype={self.mtype}, {self.wire_size}B)"
