"""Message buffers (*mbufs*) -- the unit of exchange between layers.

Modeled on the data structure of the same name in the original C
implementation (itself inspired by the Net/3 kernel): one mbuf holds
exactly one message plus the metadata the stack needs to route and
account for it.  Layers communicate by passing mbuf references.

On the demux fast path the payload is *lazy*: the stack validates the
encoded-payload region (:func:`repro.core.wire.decode_frame_tail_lazy`)
and builds the mbuf with :meth:`Mbuf.lazy`, deferring object
construction until somebody actually reads ``.payload``.  Reliable
broadcast's ECHO/READY amplification relays the raw region verbatim, so
most hot-path mbufs are never decoded at all.  Validation up front makes
the deferred decode infallible -- reading ``.payload`` cannot raise.
"""

from __future__ import annotations

from typing import Any

from repro.core.wire import Path, decode_value

_UNDECODED = object()


class Mbuf:
    """One in-flight message.

    Attributes:
        src: process id of the sender (as reported by the reliable
            channel, which authenticates the link -- a corrupt process
            cannot spoof another's id).
        path: protocol-instance path the message is addressed to.
        mtype: protocol-specific message kind.
        payload: decoded structured payload.  For mbufs built with
            :meth:`lazy` the first read decodes ``raw_payload`` (the
            region was validated at receive time, so this cannot fail).
        wire_size: size in bytes of the encoded frame, excluding
            transport headers; used by the network model and statistics.
        recv_time: local clock value when the frame was received, or
            ``None`` for locally originated mbufs.
        raw_payload: the encoded-payload slice of the received frame
            (canonically equal to ``encode_value(payload)``), letting
            receivers digest, MAC, or relay the payload without
            re-encoding it.  ``None`` for locally originated mbufs; may
            alias the inbound channel buffer, so the stack nulls it
            before parking an mbuf out-of-context.
    """

    __slots__ = (
        "src",
        "path",
        "mtype",
        "_payload",
        "wire_size",
        "recv_time",
        "raw_payload",
    )

    def __init__(
        self,
        src: int,
        path: Path,
        mtype: int,
        payload: Any,
        wire_size: int = 0,
        recv_time: float | None = None,
        raw_payload: Any = None,
    ) -> None:
        self.src = src
        self.path = path
        self.mtype = mtype
        self._payload = payload
        self.wire_size = wire_size
        self.recv_time = recv_time
        self.raw_payload = raw_payload

    @classmethod
    def lazy(
        cls,
        src: int,
        path: Path,
        mtype: int,
        raw_payload: Any,
        wire_size: int = 0,
        recv_time: float | None = None,
    ) -> "Mbuf":
        """An mbuf whose payload decodes on first access.

        *raw_payload* must be a validated encoded-value region (the
        fast-path contract); it may alias the channel buffer.
        """
        mbuf = cls.__new__(cls)
        mbuf.src = src
        mbuf.path = path
        mbuf.mtype = mtype
        mbuf._payload = _UNDECODED
        mbuf.wire_size = wire_size
        mbuf.recv_time = recv_time
        mbuf.raw_payload = raw_payload
        return mbuf

    @property
    def payload(self) -> Any:
        payload = self._payload
        if payload is _UNDECODED:
            payload = self._payload = decode_value(self.raw_payload)
        return payload

    @payload.setter
    def payload(self, value: Any) -> None:
        self._payload = value

    def describe(self) -> str:
        """Short human-readable summary, for logs and assertion messages."""
        path = "/".join(str(c) for c in self.path)
        return f"mbuf(src=p{self.src}, path={path}, mtype={self.mtype}, {self.wire_size}B)"
