"""Process-group configuration shared by every protocol instance.

Section 2 of the paper: the system is a group of *n* processes
``P = {p_0 .. p_{n-1}}`` of which at most ``f = floor((n-1)/3)`` may be
corrupt, hence ``n >= 3f + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.core.errors import ConfigurationError


def max_faulty(num_processes: int) -> int:
    """Optimal resilience: ``f = floor((n-1)/3)``."""
    return (num_processes - 1) // 3


@dataclass(frozen=True)
class GroupConfig:
    """Static description of the process group.

    Attributes:
        num_processes: total number of processes, *n*.
        num_faulty: number of tolerated corrupt processes, *f*.  Defaults
            to the optimal ``floor((n-1)/3)``; a smaller value may be
            configured (a *larger* one violates ``n >= 3f+1`` and is
            rejected).
        batching: coalesce frames destined for the same peer within a
            flush window into one batch channel unit, so the transport
            pays its fixed per-message costs once per batch.  Off, the
            stack's outbox traffic is byte-identical to the unbatched
            (seed) behaviour.
        batch_max_frames: most frames one batch container may carry;
            longer windows are split into consecutive batches.
        batch_window_s: extra time the real transport's sender may wait
            for more same-peer frames before flushing a batch.  0 keeps
            coalescing purely opportunistic (no added latency): only
            frames already queued are merged.
        checkpoint_interval: delivered commands between authenticated
            checkpoints of a replicated state machine (see
            :mod:`repro.recovery`).  Every replica checkpoints at the
            same global delivery positions, so the interval must be
            identical group-wide.
        recovery_join_margin: agreement rounds a recovering replica
            fast-forwards *past* the most advanced peer it heard from,
            so the join round is still in every peer's future when its
            first AB_VECT goes out.
        recovery_request_base_s: initial delay between state-transfer /
            payload-fetch request waves; doubles per unanswered wave.
        recovery_request_max_s: cap on that request backoff.
        reconnect_base_s: first delay after a failed outbound TCP
            connection attempt; doubles per consecutive failure.
        reconnect_max_s: cap on the reconnect backoff.
        reconnect_jitter: random factor added on top of the reconnect
            delay (delay * uniform(0, jitter)), de-synchronising the
            group's retries after a common-mode outage.
        reconnect_retry_budget: consecutive failed connection attempts
            after which the sender drops the frames queued toward the
            dead peer (bounding memory) and keeps probing at the capped
            rate.  0 never drops.
        ooc_capacity: total out-of-context messages a stack may park
            (Section 3.4's bounded hash table).
        ooc_peer_quota: most OOC entries parked on behalf of any one
            peer; storing past it evicts that peer's own oldest entry.
            0 disables the per-peer quota (the global capacity with
            fair eviction still applies).
        quarantine_threshold: misbehavior score at which a peer is
            quarantined (its frames dropped at demultiplex).  0 -- the
            default -- disables quarantine; scores are still recorded
            in the stack's :class:`~repro.core.ledger.MisbehaviorLedger`.
        quarantine_probation_s: seconds a quarantined peer stays muted
            before probational release (score halved; a persistent
            offender is re-quarantined almost immediately).
        ab_pending_cap: most locally submitted atomic-broadcast
            messages that may be undelivered at once; past it,
            ``broadcast`` raises
            :class:`~repro.core.errors.BackpressureError` instead of
            admitting more.  0 never refuses.
        ab_msg_window: per-sender cap on open receiver-side AB message
            instances (dynamic demultiplexing window).
        send_queue_max_frames: per-peer outbound queue bound in the
            runtimes (TCP sender queues, simulator link buffers).  Past
            it the lowest-priority, oldest queued frame is shed --
            consensus-critical frames outlive payload and bulk
            transfers.  0 never sheds.
        bc_engine: binary-consensus algorithm every stack in the group
            runs -- a name registered in :mod:`repro.core.bc_engine`
            ("bracha": the paper's Bracha-style rounds; "crain": the
            Crain 2020 O(1)-expected-round algorithm, which requires
            ``bc_coin="shared"``).  Must be identical group-wide.
        bc_coin: default coin source for stacks built without an
            explicit coin.  "local": an independent per-process coin
            derived from the stack's seeded RNG stream (the paper's
            Ben-Or coin); "shared": the runtimes deal a Rabin-style
            shared coin so every correct process sees the same toss per
            (instance, round).  Must be identical group-wide.
        group_tag: name scoping this group's cryptographic material and
            seeded RNG streams when several independent groups (shards)
            coexist in one process or share one seed.  Two groups with
            the same ``(seed, n)`` but different tags get disjoint MAC
            keys, coin sequences, and RNG streams.  The empty default
            leaves every derivation byte-identical to the untagged
            behaviour, so single-group deployments and deterministic
            replays are unaffected.  Must be identical group-wide and
            must not contain ``/`` (the seed-derivation separator).
    """

    num_processes: int
    num_faulty: int = field(default=-1)
    batching: bool = True
    batch_max_frames: int = 64
    batch_window_s: float = 0.0
    checkpoint_interval: int = 64
    recovery_join_margin: int = 2
    recovery_request_base_s: float = 0.05
    recovery_request_max_s: float = 1.0
    reconnect_base_s: float = 0.2
    reconnect_max_s: float = 5.0
    reconnect_jitter: float = 0.1
    reconnect_retry_budget: int = 0
    ooc_capacity: int = 65536
    ooc_peer_quota: int = 0
    quarantine_threshold: float = 0.0
    quarantine_probation_s: float = 5.0
    ab_pending_cap: int = 0
    ab_msg_window: int = 65536
    send_queue_max_frames: int = 0
    bc_engine: str = "bracha"
    bc_coin: str = "local"
    group_tag: str = ""

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ConfigurationError("group needs at least one process")
        if self.num_faulty == -1:
            object.__setattr__(self, "num_faulty", max_faulty(self.num_processes))
        if self.num_faulty < 0:
            raise ConfigurationError("num_faulty must be non-negative")
        if self.num_processes < 3 * self.num_faulty + 1:
            raise ConfigurationError(
                f"n={self.num_processes} cannot tolerate f={self.num_faulty}: "
                "Byzantine resilience requires n >= 3f + 1"
            )
        if self.batch_max_frames < 1:
            raise ConfigurationError("batch_max_frames must be >= 1")
        if self.batch_window_s < 0.0:
            raise ConfigurationError("batch_window_s must be >= 0")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.recovery_join_margin < 1:
            raise ConfigurationError("recovery_join_margin must be >= 1")
        if self.recovery_request_base_s <= 0.0:
            raise ConfigurationError("recovery_request_base_s must be > 0")
        if self.recovery_request_max_s < self.recovery_request_base_s:
            raise ConfigurationError(
                "recovery_request_max_s must be >= recovery_request_base_s"
            )
        if self.reconnect_base_s <= 0.0:
            raise ConfigurationError("reconnect_base_s must be > 0")
        if self.reconnect_max_s < self.reconnect_base_s:
            raise ConfigurationError("reconnect_max_s must be >= reconnect_base_s")
        if self.reconnect_jitter < 0.0:
            raise ConfigurationError("reconnect_jitter must be >= 0")
        if self.reconnect_retry_budget < 0:
            raise ConfigurationError("reconnect_retry_budget must be >= 0")
        if self.ooc_capacity < 1:
            raise ConfigurationError("ooc_capacity must be >= 1")
        if self.ooc_peer_quota < 0:
            raise ConfigurationError("ooc_peer_quota must be >= 0")
        if self.quarantine_threshold < 0.0:
            raise ConfigurationError("quarantine_threshold must be >= 0")
        if self.quarantine_probation_s <= 0.0:
            raise ConfigurationError("quarantine_probation_s must be > 0")
        if self.ab_pending_cap < 0:
            raise ConfigurationError("ab_pending_cap must be >= 0")
        if self.ab_msg_window < 1:
            raise ConfigurationError("ab_msg_window must be >= 1")
        if self.send_queue_max_frames < 0:
            raise ConfigurationError("send_queue_max_frames must be >= 0")
        if not isinstance(self.bc_engine, str) or not self.bc_engine:
            raise ConfigurationError("bc_engine must be a non-empty engine name")
        if self.bc_coin not in ("local", "shared"):
            raise ConfigurationError(
                f"bc_coin must be 'local' or 'shared', got {self.bc_coin!r}"
            )
        if not isinstance(self.group_tag, str):
            raise ConfigurationError("group_tag must be a string")
        if "/" in self.group_tag:
            raise ConfigurationError(
                "group_tag must not contain '/' (seed-derivation separator)"
            )
        if self.bc_engine == "crain" and self.bc_coin != "shared":
            # The stack also enforces requires_common_coin generically at
            # build time; failing here catches the known-bad combination
            # before any runtime is spun up.
            raise ConfigurationError(
                "bc_engine='crain' needs a common coin: set bc_coin='shared'"
            )

    def scoped_seed(self, base: str) -> str:
        """Scope a seed-derivation string to this group.

        Returns ``base`` untouched for an untagged group (preserving
        byte-identical derivations with pre-sharding deployments) and
        ``"{base}/g:{group_tag}"`` otherwise, so same-seed groups with
        different tags draw disjoint keys, coins, and RNG streams.
        """
        if not self.group_tag:
            return base
        return f"{base}/g:{self.group_tag}"

    def scoped_seed_bytes(self, base: bytes) -> bytes:
        """Bytes flavour of :meth:`scoped_seed` for key-material seeds."""
        if not self.group_tag:
            return base
        return base + b"/g:" + self.group_tag.encode()

    @property
    def n(self) -> int:
        return self.num_processes

    @property
    def f(self) -> int:
        return self.num_faulty

    @cached_property
    def process_ids(self) -> range:
        # Cached: the send path iterates this once per broadcast; the
        # config is frozen, so one range object serves the lifetime.
        return range(self.num_processes)

    # -- quorum thresholds used across the stack ----------------------------

    @property
    def echo_quorum(self) -> int:
        """Reliable broadcast: ECHOs needed before sending READY,
        ``floor((n+f)/2) + 1``."""
        return (self.n + self.f) // 2 + 1

    @property
    def ready_amplify(self) -> int:
        """Reliable broadcast: READYs that substitute for the ECHO quorum,
        ``f + 1`` (at least one from a correct process)."""
        return self.f + 1

    @property
    def ready_quorum(self) -> int:
        """Reliable broadcast: READYs needed to deliver, ``2f + 1``."""
        return 2 * self.f + 1

    @property
    def wait_quorum(self) -> int:
        """Messages a process can safely wait for, ``n - f``."""
        return self.n - self.f

    @property
    def value_quorum(self) -> int:
        """Multi-valued consensus: identical values needed to back a
        proposal, ``n - 2f``."""
        return self.n - 2 * self.f

    @property
    def mat_quorum(self) -> int:
        """Echo broadcast: correct MAC entries needed to deliver, ``f + 1``."""
        return self.f + 1

    @property
    def certificate_quorum(self) -> int:
        """Checkpoint stability: matching attestations needed, ``f + 1``
        (at least one from a correct replica, so the digest is the state
        every correct replica holds at that position)."""
        return self.f + 1
