"""Matrix echo broadcast (Section 2.3 of the paper).

A cheaper, weaker cousin of reliable broadcast, derived from Reiter's
echo multicast with digital signatures replaced by *vectors of hashes*
(pairwise-keyed MACs).  If the sender is corrupt, not every correct
process need deliver -- but those that do deliver the same message.

Protocol, for sender *s* and message *m*:

- *s* sends ``(INIT, m)`` to all;
- each receiver ``p_i`` builds the vector ``V_i[j] = H(m, s_ij)`` and
  sends ``(VECT, i, V_i)`` back to *s*;
- *s* gathers ``n - f`` vectors into a matrix (vector ``V_i`` is row
  *i*) and sends each ``p_j`` the message ``(MAT, V'_j)``, where
  ``V'_j`` is *column j* of the matrix;
- ``p_j`` verifies the column entries against its own keys and delivers
  *m* if at least ``f + 1`` hashes check out (so at least one correct
  process vouched for exactly this *m*).

Three communication steps, 2(n-1) + n messages -- versus the O(n²) of
reliable broadcast -- and no expensive cryptography.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.trace import KIND_BROADCAST
from repro.core.wire import Path, encode_value_cached
from repro.crypto.hashing import HASH_LEN, hash_bytes
from repro.crypto.mac import mac_vector, verify_mac_batch
from repro.obs.metrics import COUNT_BUCKETS

MSG_INIT = 0
MSG_VECT = 1
MSG_MAT = 2


class EchoBroadcast(ControlBlock):
    """One matrix echo broadcast instance (one sender, one message)."""

    protocol = "eb"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
        *,
        sender: int,
    ):
        super().__init__(stack, path, parent, purpose)
        if sender not in self.config.process_ids:
            raise ValueError(f"sender {sender} not in group")
        self.sender = sender
        self.delivered = False
        self.delivered_value: Any = None
        self._init_payload: Any = None
        self._init_encoded: bytes | None = None
        self._init_seen = False
        self._vect_sent = False
        # Sender-side state: row index -> MAC vector.
        self._rows: dict[int, list[bytes]] = {}
        self._mat_sent = False
        # Receiver-side: a MAT that arrived before the INIT (possible only
        # with a corrupt sender, since the channel is FIFO per pair).
        self._pending_mat: list[list[Any]] | None = None
        self._mat_seen = False

    # -- sending -------------------------------------------------------------

    def broadcast(self, payload: Any) -> None:
        """Start the broadcast.  Only the designated sender may call this."""
        if self.me != self.sender:
            raise ProtocolViolationError(
                f"p{self.me} cannot broadcast on instance owned by p{self.sender}"
            )
        self.stack.stats.record_broadcast(self.protocol, self.purpose)
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(
                self.me, KIND_BROADCAST, self.path, protocol=self.protocol
            )
        if self.stack.metrics.enabled:
            self.stack.metrics.histogram(
                "ritas_broadcast_payload_bytes",
                buckets=COUNT_BUCKETS,
                protocol=self.protocol,
                purpose=self.purpose,
            ).observe(len(encode_value_cached(payload)))
        self.send_all(MSG_INIT, payload)

    # -- introspection ---------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["sender"] = self.sender
        state["delivered"] = self.delivered
        if self.delivered:
            state["value_digest"] = hash_bytes(encode_value_cached(self.delivered_value))
        return state

    # -- receiving -------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        if self.destroyed:
            return
        if mbuf.mtype == MSG_INIT:
            self._on_init(mbuf)
        elif mbuf.mtype == MSG_VECT:
            self._on_vect(mbuf)
        elif mbuf.mtype == MSG_MAT:
            self._on_mat(mbuf)
        else:
            raise ProtocolViolationError(f"unknown eb mtype {mbuf.mtype}")

    def _on_init(self, mbuf: Mbuf) -> None:
        if mbuf.src != self.sender:
            raise ProtocolViolationError(
                f"INIT from p{mbuf.src} on broadcast owned by p{self.sender}"
            )
        if self._init_seen:
            return
        self._init_seen = True
        self._init_payload = mbuf.payload
        # The frame already carries the canonical payload encoding; keep
        # a materialized copy so VECT and MAT verification never
        # re-encode the payload (identical bytes, the codec is
        # canonical).
        raw = mbuf.raw_payload
        self._init_encoded = bytes(raw) if raw is not None else None
        if not self._vect_sent:
            self._vect_sent = True
            vector = mac_vector(self._encoded_init(), self.stack.keystore)
            self.send(self.sender, MSG_VECT, vector)
        if self._pending_mat is not None:
            pending, self._pending_mat = self._pending_mat, None
            self._verify_column(pending)

    def _on_vect(self, mbuf: Mbuf) -> None:
        if self.me != self.sender:
            return  # only the sender collects vectors
        if self._mat_sent or mbuf.src in self._rows:
            return
        vector = mbuf.payload
        if not self._valid_vector(vector):
            raise ProtocolViolationError(f"malformed VECT from p{mbuf.src}")
        self._rows[mbuf.src] = vector
        if len(self._rows) >= self.config.wait_quorum:
            self._mat_sent = True
            for j in self.config.process_ids:
                column = [[i, row[j]] for i, row in sorted(self._rows.items())]
                self.send(j, MSG_MAT, column)

    def _valid_vector(self, vector: Any) -> bool:
        return (
            isinstance(vector, list)
            and len(vector) == self.config.num_processes
            and all(isinstance(tag, bytes) and len(tag) == HASH_LEN for tag in vector)
        )

    def _on_mat(self, mbuf: Mbuf) -> None:
        if mbuf.src != self.sender or self._mat_seen:
            return
        column = mbuf.payload
        if not self._valid_column(column):
            raise ProtocolViolationError(f"malformed MAT from p{mbuf.src}")
        self._mat_seen = True
        if not self._init_seen:
            # FIFO channels mean a correct sender's INIT always precedes
            # its MAT; stash it in case the INIT is merely reordered by a
            # corrupt sender replaying through another instance.
            self._pending_mat = column
            return
        self._verify_column(column)

    def _valid_column(self, column: Any) -> bool:
        if not isinstance(column, list):
            return False
        seen_rows: set[int] = set()
        for entry in column:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or entry[0] not in self.config.process_ids
                or entry[0] in seen_rows
                or not isinstance(entry[1], bytes)
                or len(entry[1]) != HASH_LEN
            ):
                return False
            seen_rows.add(entry[0])
        return True

    def _encoded_init(self) -> bytes:
        if self._init_encoded is None:
            self._init_encoded = encode_value_cached(self._init_payload)
        return self._init_encoded

    def _verify_column(self, column: list[list[Any]]) -> None:
        if self.delivered:
            return
        key_for = self.stack.keystore.key_for
        checks = [(key_for(row_index), tag) for row_index, tag in column]
        valid = sum(verify_mac_batch(self._encoded_init(), checks))
        if valid >= self.config.mat_quorum:
            self.delivered = True
            self.delivered_value = self._init_payload
            self.deliver(self.delivered_value)
        else:
            # A correct sender's column always carries >= f+1 MACs from
            # correct vector senders over the INIT it actually sent, so
            # falling short of the quorum convicts the sender itself --
            # the column came over its own authenticated link (_on_mat
            # checks mbuf.src == sender), never an innocent relay.
            self.stack.report_misbehavior(self.sender, "mac-failure")
