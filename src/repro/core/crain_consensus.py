"""Crain 2020 binary consensus over a common coin (the "crain" engine).

The signature-free, O(1)-expected-round binary consensus of Crain
(arXiv 2002.04393, 2002.08765), in the round structure introduced by
Mostéfaoui-Moumen-Raynal: instead of Bracha-style rounds of three
reliable broadcasts (O(n³) messages per round), each round exchanges
three kinds of *direct* authenticated frames -- O(n²) messages total --
and finishes on a common coin:

1. **EST (BV-broadcast).**  Every process broadcasts its round estimate.
   A value received from ``f + 1`` distinct senders is echoed (so a
   value backed by at least one correct process reaches everyone); a
   value received from ``2f + 1`` distinct senders enters the local
   ``bin_values`` set.  No value only Byzantine processes sent can ever
   enter ``bin_values`` -- this is the justification mechanism, playing
   the role of Bracha's congruence validation.
2. **AUX.**  When ``bin_values`` first becomes non-empty, broadcast one
   of its members.  Wait for ``n - f`` AUX values that are all inside
   ``bin_values`` (late justification is fine: an AUX for a value not
   yet in ``bin_values`` stays pending and is re-examined as
   ``bin_values`` grows).
3. **CONF + coin.**  Broadcast the *set* of values seen in that AUX
   quorum (a singleton or {0, 1}); wait for ``n - f`` CONF sets that
   are subsets of ``bin_values``.  Let ``V`` be their union and ``s``
   the round's common coin: if ``V = {v}`` and ``v = s``, **decide**
   *v*; if ``V = {v}`` but ``v != s``, keep estimate *v*; else take the
   coin as the next estimate.

The CONF exchange (Crain's addition to the original MMR round) is what
makes the decide rule safe against an adversary that chooses the
message schedule after seeing the coin: any two ``n - f`` CONF quorums
intersect in a correct process, so a decided singleton ``{v}`` forces
every other correct process's ``V`` to contain *v*, and the common coin
pushes all estimates to *v* in the same round.

**The common coin is load-bearing.**  With *independent local* coins
the decide rule is unsafe: a process with ``V = {0, 1}`` adopts its own
coin, which may be ``1 - v`` while another process decided *v* -- one
round later ``1 - v`` can be decided.  The engine therefore declares
``requires_common_coin`` and the stack refuses to build it over a
non-common coin source (``GroupConfig(bc_engine="crain")`` requires
``bc_coin="shared"``).

A process that decides cannot stop: a peer whose ``V`` was ``{0, 1}``
-- or whose singleton missed the coin -- needs more rounds, and each
needs ``n - f`` participants.  Deciders therefore *arm* the next round
and join it lazily when a frame for it arrives (re-arming after every
joined round), so in the common case -- every correct process decides
in the same round -- no extra round is ever transmitted.

Wire layout: each round's frames are addressed to a per-round child
block at ``path + (round,)``.  Frames for rounds this process has not
started yet park in the bounded out-of-context table and drain when the
round starts -- the same flood-bounded machinery Bracha's per-round
reliable-broadcast children ride on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.bc_engine import BCEngine, register_bc_engine
from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.trace import KIND_ROUND
from repro.core.wire import Path

#: Frame types inside one round.
MSG_EST = 1
MSG_AUX = 2
MSG_CONF = 3

#: CONF payload masks (bit 0 = value 0 in the set, bit 1 = value 1).
_MASKS = {1: frozenset((0,)), 2: frozenset((1,)), 3: frozenset((0, 1))}


def _mask_of(values: frozenset[int]) -> int:
    return (1 if 0 in values else 0) | (2 if 1 in values else 0)


@dataclass
class _CrainRoundState:
    """Book-keeping for one EST/AUX/CONF round."""

    est: int | None = None
    #: Distinct senders seen per EST value (a sender may legitimately
    #: appear under both values: initial broadcast plus an echo).
    est_senders: dict[int, set[int]] = field(
        default_factory=lambda: {0: set(), 1: set()}
    )
    #: EST values this process has broadcast (initial or echo).
    est_echoed: set[int] = field(default_factory=set)
    #: Values backed by 2f+1 distinct EST senders, in insertion order.
    bin_values: list[int] = field(default_factory=list)
    #: First AUX value per sender.
    aux_from: dict[int, int] = field(default_factory=dict)
    aux_sent: bool = False
    #: First CONF set per sender.
    conf_from: dict[int, frozenset[int]] = field(default_factory=dict)
    conf_sent: bool = False
    done: bool = False


class _CrainRound(ControlBlock):
    """Addressing block for one round's direct frames.

    Exists so that frames for not-yet-started rounds have no resolvable
    instance and park out-of-context (bounded, fairly evicted), exactly
    like frames for Bracha's not-yet-created round broadcasts.
    """

    protocol = "bcr"

    def input(self, mbuf: Mbuf) -> None:
        parent = self.parent
        if parent is None or parent.destroyed:
            return
        parent._on_frame(self.path[-1], mbuf)  # type: ignore[attr-defined]


class CrainBinaryConsensus(BCEngine):
    """One Crain 2020 binary-consensus instance."""

    engine_name = "crain"
    requires_common_coin = True

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
    ):
        super().__init__(stack, path, parent, purpose)
        self._rounds: dict[int, _CrainRoundState] = {}
        #: Post-decision lazy round (see module docstring); unlike
        #: Bracha's single extra round this re-arms until traffic stops.
        self._armed_round: int | None = None
        self._round_started_at: dict[int, float] = {}

    def _begin(self, value: int) -> None:
        self._start_round(1, self._step_value(1, 1, value))

    # -- round lifecycle -----------------------------------------------------------

    def _round_state(self, round_number: int) -> _CrainRoundState:
        state = self._rounds.get(round_number)
        if state is None:
            state = _CrainRoundState()
            self._rounds[round_number] = state
            # Direct construction (not make_child): the round block is
            # engine wiring, not a protocol layer the factory may swap.
            self.stack._begin_construction()
            try:
                _CrainRound(self.stack, self.path + (round_number,), parent=self)
            finally:
                self.stack._end_construction()
        return state

    def _start_round(self, round_number: int, value: int | None) -> None:
        if self.destroyed:
            return
        self.rounds_executed = max(self.rounds_executed, round_number)
        if self.stack.metrics.enabled:
            self._round_started_at[round_number] = self.stack.clock()
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(self.me, KIND_ROUND, self.path, round=round_number)
        state = self._round_state(round_number)
        if value not in (0, 1):
            value = 0  # a corrupt hook returned junk; stay in-domain
        state.est = value
        self._sent_values[(round_number, 1)] = value
        self._send_est(round_number, state, value)
        self._react(round_number, state)

    def _send_est(self, round_number: int, state: _CrainRoundState, value: int) -> None:
        if value in state.est_echoed:
            return
        state.est_echoed.add(value)
        child = self.children.get(self.path + (round_number,))
        if child is not None and not child.destroyed:
            child.send_all(MSG_EST, value)

    # -- receiving ------------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        # All round traffic is addressed to the per-round child blocks;
        # a frame aimed at the engine itself is bogus.
        raise ProtocolViolationError("binary consensus accepts no direct frames")

    def accept_orphan(self, mbuf: Mbuf) -> bool:
        """Join the armed post-decision round when somebody needs it."""
        if self._armed_round is None or self.destroyed:
            return False
        suffix = mbuf.path[len(self.path) :]
        if len(suffix) != 1 or suffix[0] != self._armed_round:
            return False
        self._join_armed_round()
        return True

    def _join_armed_round(self) -> None:
        round_number = self._armed_round
        if round_number is None:
            return
        self._armed_round = None
        assert self.decision is not None
        self._start_round(
            round_number, self._step_value(round_number, 1, self.decision)
        )

    def _on_frame(self, round_number: int, mbuf: Mbuf) -> None:
        if self.destroyed:
            return
        state = self._rounds.get(round_number)
        if state is None:
            return  # round block outlived its state (cannot happen today)
        mtype, payload, sender = mbuf.mtype, mbuf.payload, mbuf.src
        if mtype == MSG_EST:
            if payload not in (0, 1):
                raise ProtocolViolationError(f"EST value out of domain: {payload!r}")
            state.est_senders[payload].add(sender)
        elif mtype == MSG_AUX:
            if payload not in (0, 1):
                raise ProtocolViolationError(f"AUX value out of domain: {payload!r}")
            state.aux_from.setdefault(sender, payload)
        elif mtype == MSG_CONF:
            values = _MASKS.get(payload) if isinstance(payload, int) else None
            if values is None:
                raise ProtocolViolationError(f"CONF mask out of domain: {payload!r}")
            state.conf_from.setdefault(sender, values)
        else:
            raise ProtocolViolationError(f"unknown bc frame type {mtype}")
        self._react(round_number, state)

    # -- the round's transition rules --------------------------------------------------

    def _react(self, round_number: int, state: _CrainRoundState) -> None:
        """Drive round transitions to a fixed point after any state change."""
        config = self.config
        relay_bar = config.f + 1
        accept_bar = config.ready_quorum  # 2f + 1
        quorum = config.wait_quorum  # n - f
        progressed = True
        while progressed and not state.done and not self.destroyed:
            progressed = False
            for value in (0, 1):
                senders = state.est_senders[value]
                # Echo a value at least one correct process sent, so
                # everybody's 2f+1 accept bar becomes reachable.
                if len(senders) >= relay_bar and value not in state.est_echoed:
                    self._send_est(round_number, state, value)
                    progressed = True
                if len(senders) >= accept_bar and value not in state.bin_values:
                    state.bin_values.append(value)
                    progressed = True
            if state.bin_values and not state.aux_sent:
                state.aux_sent = True
                value = self._step_value(round_number, 2, state.bin_values[0])
                if value not in (0, 1):
                    value = state.bin_values[0]
                self._sent_values[(round_number, 2)] = value
                child = self.children.get(self.path + (round_number,))
                if child is not None and not child.destroyed:
                    child.send_all(MSG_AUX, value)
                progressed = True
            if state.aux_sent and not state.conf_sent:
                valid_aux = [
                    value
                    for value in state.aux_from.values()
                    if value in state.bin_values
                ]
                if len(valid_aux) >= quorum:
                    state.conf_sent = True
                    view = frozenset(valid_aux)
                    # The hook sees the round's "step 3 entry value" in
                    # Bracha's shape: the singleton bit, or ⊥ for {0,1}.
                    computed = next(iter(view)) if len(view) == 1 else None
                    hooked = self._step_value(round_number, 3, computed)
                    if hooked in (0, 1):
                        view = frozenset((hooked,))
                    elif hooked is not None:
                        view = frozenset((0, 1))
                    self._sent_values[(round_number, 3)] = (
                        next(iter(view)) if len(view) == 1 else None
                    )
                    child = self.children.get(self.path + (round_number,))
                    if child is not None and not child.destroyed:
                        child.send_all(MSG_CONF, _mask_of(view))
                    progressed = True
            if state.conf_sent and not state.done:
                bin_set = set(state.bin_values)
                valid_conf = [
                    view
                    for view in state.conf_from.values()
                    if view <= bin_set
                ]
                if len(valid_conf) >= quorum:
                    state.done = True
                    self._finish_round(round_number, valid_conf)
                    return

    def _finish_round(
        self, round_number: int, conf_views: list[frozenset[int]]
    ) -> None:
        metrics = self.stack.metrics
        if metrics.enabled:
            started = self._round_started_at.pop(round_number, None)
            if started is not None:
                metrics.histogram("ritas_bc_round_seconds").observe(
                    self.stack.clock() - started
                )
        union: set[int] = set()
        for view in conf_views:
            union |= view
        coin = self.toss(round_number)
        if len(union) == 1:
            value = next(iter(union))
            next_est = value
            if value == coin:
                self._conclude(value, round_number)
        else:
            next_est = coin
        if self.decided:
            # Arm -- but do not flood -- the next round: it only runs if
            # some process that failed to decide initiates it.  Unlike
            # Bracha (where non-deciders deterministically decide one
            # round later), a peer may miss the coin for several rounds,
            # so this re-arms after every joined round.
            self._armed_round = round_number + 1
            if self.stack.ooc_has_prefix(self.path + (round_number + 1,)):
                self._join_armed_round()
            return
        self._start_round(
            round_number + 1, self._step_value(round_number + 1, 1, next_est)
        )


register_bc_engine("crain", CrainBinaryConsensus)
