"""Per-peer misbehavior accounting and quarantine.

The paper's protocols tolerate Byzantine *values* by construction; what
they do not bound is Byzantine *volume* -- a corrupt peer spraying
malformed frames, bad MACs or out-of-context floods makes every correct
process pay decode, hashing and parking costs forever.  The ledger keeps
one score per peer, fed by the stack's validation paths:

- wire decode failures (malformed frame/batch, over-deep nesting);
- protocol validation rejections (``ProtocolViolationError`` at demux);
- MAC failures (TCP channel HMAC, echo-broadcast matrix columns);
- resource-quota violations (OOC per-peer quota, AB message window).

Crossing ``GroupConfig.quarantine_threshold`` moves the peer into
**quarantine**: its channel units are dropped at demultiplex, before any
decode or protocol work.  Quarantine is probational -- after
``quarantine_probation_s`` the peer is released with its score halved,
so a correct peer accused under transient corruption (a flaky link
flipping bits, a partially-written restart) recovers; a true flooder
re-offends and is re-quarantined immediately.

This layer diverges from the paper (which never drops traffic from a
group member); the divergence and its safety argument are documented in
DESIGN.md section 8.  It is **off by default** (threshold 0): scores
are always recorded, but no peer is ever dropped unless the operator
opts in.

Attribution rule: only ever score the *link-authenticated* source of a
frame (``mbuf.src`` / the TCP peer the channel authenticated).  Scoring
identities named inside payloads would let a corrupt peer slander honest
ones into quarantine.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import GroupConfig

#: Offense kinds and their default score weights.  Heavier weights for
#: offenses that are unambiguous misbehavior; light weights where an
#: unlucky-but-honest peer could plausibly trip the check.
OFFENSE_WEIGHTS: dict[str, float] = {
    "malformed-frame": 1.0,
    "malformed-batch": 1.0,
    "batch-too-deep": 1.0,
    "protocol-violation": 1.0,
    "mac-failure": 2.0,
    "ooc-quota": 0.25,
    "msg-window": 0.5,
}

DEFAULT_WEIGHT = 1.0


@dataclass
class PeerRecord:
    """Running misbehavior state for one peer."""

    score: float = 0.0
    offenses: Counter = field(default_factory=Counter)
    quarantined_until: float = 0.0
    quarantines: int = 0

    @property
    def ever_quarantined(self) -> bool:
        return self.quarantines > 0


class MisbehaviorLedger:
    """Per-peer scores, quarantine entry and probational release.

    Args:
        config: group description; supplies ``quarantine_threshold``
            (0 disables quarantine -- scores are still kept) and
            ``quarantine_probation_s``.
        clock: time source for probation; the stack injects its own.
    """

    def __init__(self, config: GroupConfig, clock: Callable[[], float] | None = None):
        self.threshold = config.quarantine_threshold
        self.probation_s = config.quarantine_probation_s
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._records: dict[int, PeerRecord] = {}
        self.reports = 0
        self.quarantines_entered = 0
        self.quarantines_released = 0
        #: Optional hook ``(src, record)`` fired on probational release.
        self.on_release: Callable[[int, PeerRecord], None] | None = None

    @property
    def enabled(self) -> bool:
        """True when quarantine can actually trigger."""
        return self.threshold > 0

    def record(self, src: int) -> PeerRecord:
        rec = self._records.get(src)
        if rec is None:
            rec = self._records[src] = PeerRecord()
        return rec

    def score(self, src: int) -> float:
        rec = self._records.get(src)
        return rec.score if rec is not None else 0.0

    def offenses(self, src: int) -> Counter:
        rec = self._records.get(src)
        return Counter(rec.offenses) if rec is not None else Counter()

    def report(self, src: int, offense: str, weight: float | None = None) -> bool:
        """Score one offense by *src*; returns True if this report moved
        the peer into quarantine."""
        self.reports += 1
        rec = self.record(src)
        rec.score += OFFENSE_WEIGHTS.get(offense, DEFAULT_WEIGHT) if weight is None else weight
        rec.offenses[offense] += 1
        if (
            self.enabled
            and rec.quarantined_until <= self.clock()
            and rec.score >= self.threshold
        ):
            rec.quarantined_until = self.clock() + self.probation_s
            rec.quarantines += 1
            self.quarantines_entered += 1
            return True
        return False

    def quarantined(self, src: int) -> bool:
        """True while *src* is quarantined.  A peer whose probation has
        expired is released on the spot with its score halved."""
        if not self.enabled:
            return False
        rec = self._records.get(src)
        if rec is None or not rec.quarantined_until:
            return False
        if self.clock() < rec.quarantined_until:
            return True
        # Probation: release, halve the score so a reformed (or falsely
        # accused) peer stays out, while a persistent flooder re-crosses
        # the remaining threshold gap almost immediately.
        rec.quarantined_until = 0.0
        rec.score /= 2.0
        self.quarantines_released += 1
        if self.on_release is not None:
            self.on_release(src, rec)
        return False

    def quarantined_ids(self) -> list[int]:
        """Peers currently in quarantine (does not trigger releases)."""
        now = self.clock()
        return sorted(
            src
            for src, rec in self._records.items()
            if rec.quarantined_until > now
        )
