"""Multi-valued consensus (Section 2.5 of the paper).

Correct processes propose values of arbitrary length and all decide
either one of the proposed values or the default value ⊥ (``None``).
The implementation follows the paper's *optimized* variant of Correia
et al.'s protocol: the VECT phase uses the cheap echo broadcast instead
of reliable broadcast, and vector validation is the simplified
"n - 2f matching entries" rule.

Protocol, for process ``p_i`` with proposal ``v_i``:

1. reliably broadcast ``(INIT, v_i)``; collect INIT values into the
   vector ``V_i`` (indexed by sender) as they arrive;
2. once ``n - f`` INITs arrived: if at least ``n - 2f`` share one value
   *v*, echo-broadcast ``(VECT, v, V_i)`` -- the vector justifies the
   value; otherwise echo-broadcast ``(VECT, ⊥)``, which needs no
   justification;
3. a VECT from ``p_j`` with value ``v_j != ⊥`` is *valid* once at least
   ``n - 2f`` indices *k* satisfy ``V_i[k] = V_j[k] = v_j`` (validated
   lazily as INITs keep arriving); a ⊥ VECT is always valid;
4. once ``n - f`` valid VECTs arrived: propose 1 to binary consensus if
   no two valid VECTs carry different non-⊥ values *and* at least
   ``n - 2f`` carry the same value; otherwise propose 0;
5. binary consensus 0 → decide ⊥.  Binary consensus 1 → wait for
   ``n - 2f`` valid VECTs with the same value *v* and decide *v*.

Why step 4's no-conflict rule makes step 5 safe: proposing 1 requires
``n - f`` *unanimous* valid VECTs, so at most *f* processes ever echo a
different value -- fewer than the ``n - 2f >= f + 1`` needed for anyone
to decide it.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.wire import Path, encode_value


def _key(value: Any) -> bytes:
    """Canonical comparison key for arbitrary proposal values."""
    return encode_value(value)


class MultiValuedConsensus(ControlBlock):
    """One multi-valued consensus instance."""

    protocol = "mvc"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
        *,
        vect_channel: str = "eb",
    ):
        """*vect_channel* selects the broadcast primitive for the VECT
        phase: ``"eb"`` (echo broadcast) is the paper's optimization over
        the original protocol's ``"rb"`` (reliable broadcast); the
        ablation benchmark quantifies the difference."""
        super().__init__(stack, path, parent, purpose)
        if vect_channel not in ("eb", "rb"):
            raise ValueError(f"vect_channel must be 'eb' or 'rb', not {vect_channel!r}")
        self.vect_channel = vect_channel
        self.proposal: Any = None
        self.proposed = False
        self.decided = False
        self.decision: Any = None
        # INIT values, indexed by sender; grows past n-f for validation.
        self._init_values: dict[int, Any] = {}
        self._init_keys: dict[int, bytes] = {}
        # Valid VECTs: sender -> (value, key or None).
        self._valid_vects: dict[int, tuple[Any, bytes | None]] = {}
        self._pending_vects: dict[int, tuple[Any, list[Any]]] = {}
        self._vect_sent = False
        self._bc_proposed = False
        self._bc_decision: int | None = None
        self._bc = self.make_child("bc", ("bc",))
        for j in self.config.process_ids:
            self.make_child("rb", ("init", j), sender=j)
            self.make_child(vect_channel, ("vect", j), sender=j)

    # -- public API --------------------------------------------------------------

    def propose(self, value: Any) -> None:
        """Propose *value* (any wire-encodable value; ``None`` is reserved
        for the default decision ⊥ and cannot be proposed)."""
        if value is None:
            raise ValueError("None is the default value ⊥ and cannot be proposed")
        if self.proposed:
            raise ProtocolViolationError("already proposed on this instance")
        self.proposed = True
        self.proposal = value
        rb = self.children[self.path + ("init", self.me)]
        rb.broadcast(self._init_value(value))  # type: ignore[attr-defined]

    # -- introspection -------------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["proposed"] = self.proposed
        state["decided"] = self.decided
        if self.proposed:
            state["proposal_key"] = _key(self.proposal)
        if self.decided:
            state["decision_key"] = None if self.decision is None else _key(self.decision)
        return state

    # -- adversary hooks -----------------------------------------------------------

    def _init_value(self, computed: Any) -> Any:
        """Value actually sent in the INIT; overridden by the Byzantine
        faultload of Section 4.2 to push ⊥."""
        return computed

    def _vect_payload(self, value: Any, justification: list[Any]) -> list[Any]:
        """Payload actually echo-broadcast in the VECT; same hook."""
        return [value, justification]

    # -- receiving -------------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        raise ProtocolViolationError("multi-valued consensus accepts no direct frames")

    def child_event(self, child: ControlBlock, event: Any) -> None:
        if self.destroyed:
            return
        kind = child.path[len(self.path)]
        if kind == "init":
            self._on_init(child.path[-1], event)
        elif kind == "vect":
            self._on_vect(child.path[-1], event)
        elif kind == "bc":
            self._on_bc_decision(event)

    def _on_init(self, sender: int, value: Any) -> None:
        if sender in self._init_values:
            return
        self._init_values[sender] = value
        self._init_keys[sender] = _key(value)
        self._maybe_send_vect()
        self._revalidate_pending()
        self._maybe_finish()

    def _maybe_send_vect(self) -> None:
        if self._vect_sent or not self.proposed:
            return
        if len(self._init_values) < self.config.wait_quorum:
            return
        self._vect_sent = True
        counts = Counter(
            key for j, key in self._init_keys.items() if self._init_values[j] is not None
        )
        value: Any = None
        for j, key in self._init_keys.items():
            if self._init_values[j] is not None and counts[key] >= self.config.value_quorum:
                value = self._init_values[j]
                break
        justification = [
            self._init_values.get(k) for k in self.config.process_ids
        ]
        eb = self.children[self.path + ("vect", self.me)]
        eb.broadcast(self._vect_payload(value, justification))  # type: ignore[attr-defined]

    def _on_vect(self, sender: int, payload: Any) -> None:
        if sender in self._valid_vects or sender in self._pending_vects:
            return
        if not isinstance(payload, list) or len(payload) != 2:
            return  # malformed VECT from a corrupt process: ignore
        value, justification = payload
        if value is None:
            self._valid_vects[sender] = (None, None)
            self._maybe_propose_bit()
            self._maybe_finish()
            return
        if (
            not isinstance(justification, list)
            or len(justification) != self.config.num_processes
        ):
            return
        claimed_keys = [
            None if claimed is None else _key(claimed) for claimed in justification
        ]
        self._pending_vects[sender] = (value, claimed_keys)
        self._revalidate_pending()
        self._maybe_finish()

    def _revalidate_pending(self) -> None:
        accepted = [
            sender
            for sender, (value, claimed_keys) in self._pending_vects.items()
            if self._vect_is_valid(value, claimed_keys)
        ]
        for sender in accepted:
            value, _ = self._pending_vects.pop(sender)
            self._valid_vects[sender] = (value, _key(value))
        if accepted:
            self._maybe_propose_bit()

    def _vect_is_valid(self, value: Any, claimed_keys: list[bytes | None]) -> bool:
        """Paper rule (b): at least n-2f indices k with V_i[k] = V_j[k] = v_j."""
        value_key = _key(value)
        matches = 0
        for k, claimed_key in enumerate(claimed_keys):
            if claimed_key is None:
                continue
            mine = self._init_keys.get(k)
            if mine is None:
                continue
            if mine == value_key and claimed_key == value_key:
                matches += 1
        return matches >= self.config.value_quorum

    # -- phase transitions ----------------------------------------------------------

    def _maybe_propose_bit(self) -> None:
        if self._bc_proposed or not self._vect_sent:
            return
        if len(self._valid_vects) < self.config.wait_quorum:
            return
        self._bc_proposed = True
        counts = Counter(
            key for _, key in self._valid_vects.values() if key is not None
        )
        unanimous = len(counts) <= 1
        supported = bool(counts) and max(counts.values()) >= self.config.value_quorum
        self._bc.propose(1 if unanimous and supported else 0)  # type: ignore[attr-defined]

    def _on_bc_decision(self, bit: Any) -> None:
        self._bc_decision = bit
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.decided or self._bc_decision is None:
            return
        if self._bc_decision == 0:
            self._decide(None)
            return
        counts = Counter(
            key for _, key in self._valid_vects.values() if key is not None
        )
        for value, key in self._valid_vects.values():
            if key is not None and counts[key] >= self.config.value_quorum:
                self._decide(value)
                return

    def _decide(self, value: Any) -> None:
        self.decided = True
        self.decision = value
        self.stack.stats.record_decision(self.protocol, 1)
        if value is None:
            self.stack.stats.decisions["mvc-default"] += 1
        if self.stack.metrics.enabled:
            # ⊥ decisions are the faultload signature (Section 4.3: the
            # Byzantine runs are where agreements default).
            self.stack.metrics.counter(
                "ritas_mvc_decisions_total",
                outcome="default" if value is None else "value",
            ).inc()
        self.deliver(value)
