"""Vector consensus (Section 2.6 of the paper).

Correct processes agree on a *vector* of size *n* containing a subset of
the proposed values:

- every correct process decides the same vector *V*;
- if ``p_i`` is correct then ``V[i]`` is its proposal or ⊥;
- at least ``f + 1`` elements of *V* were proposed by correct processes.

Protocol: reliably broadcast the proposal; then, in rounds
``r = 0, 1, ..., f``: wait until ``n - f + r`` proposals have been
delivered, build the vector ``W_i`` (⊥ for missing indices), and feed it
to a fresh multi-valued consensus; decide on the first non-⊥ MVC
decision.

Liveness note (also in DESIGN.md): rounds past 0 wait for more than
``n - f`` proposals, which presumes enough processes are merely slow
rather than crashed; this matches the original protocol and, as in the
paper's experiments, round 0 decides in every realistic run.  The round
counter is capped at *f*; exhausting the cap raises
:class:`~repro.core.errors.ProtocolStallError` instead of hanging.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ProtocolStallError, ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.wire import Path, encode_value


class VectorConsensus(ControlBlock):
    """One vector consensus instance."""

    protocol = "vc"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
    ):
        super().__init__(stack, path, parent, purpose)
        self.proposed = False
        self.proposal: Any = None
        self.decided = False
        self.decision: list[Any] | None = None
        self.round_number = 0
        self._proposals: dict[int, Any] = {}
        self._round_running = False
        for j in self.config.process_ids:
            self.make_child("rb", ("init", j), sender=j)

    # -- public API ----------------------------------------------------------------

    def propose(self, value: Any) -> None:
        """Propose *value* for this process's slot of the vector."""
        if value is None:
            raise ValueError("None marks an absent proposal and cannot be proposed")
        if self.proposed:
            raise ProtocolViolationError("already proposed on this instance")
        self.proposed = True
        self.proposal = value
        rb = self.children[self.path + ("init", self.me)]
        rb.broadcast(value)  # type: ignore[attr-defined]

    # -- introspection ---------------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["proposed"] = self.proposed
        state["decided"] = self.decided
        if self.proposed:
            state["proposal"] = self.proposal
        if self.decided:
            state["decision_key"] = encode_value(self.decision)
            state["decision"] = self.decision
        return state

    # -- receiving ------------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        raise ProtocolViolationError("vector consensus accepts no direct frames")

    def child_event(self, child: ControlBlock, event: Any) -> None:
        if self.destroyed or self.decided:
            return
        kind = child.path[len(self.path)]
        if kind == "init":
            sender = child.path[-1]
            if sender in self._proposals or event is None:
                return
            self._proposals[sender] = event
            self._maybe_start_round()
        elif kind == "mvc":
            self._on_mvc_decision(event)

    # -- rounds ------------------------------------------------------------------------

    def _maybe_start_round(self) -> None:
        if self._round_running or self.decided or not self.proposed:
            return
        needed = self.config.wait_quorum + self.round_number
        if len(self._proposals) < needed:
            return
        self._round_running = True
        vector = [self._proposals.get(k) for k in self.config.process_ids]
        mvc = self.make_child("mvc", ("mvc", self.round_number))
        mvc.propose(vector)  # type: ignore[attr-defined]

    def _on_mvc_decision(self, decision: Any) -> None:
        self._round_running = False
        if self._vector_ok(decision):
            self.decided = True
            self.decision = decision
            self.stack.stats.record_decision(self.protocol, self.round_number + 1)
            if self.stack.metrics.enabled:
                self.stack.metrics.counter(
                    "ritas_vc_decisions_total", round=self.round_number
                ).inc()
            self.deliver(decision)
            return
        self.round_number += 1
        if self.round_number > self.config.f:
            raise ProtocolStallError(
                f"vector consensus at {self.path} exhausted its round cap "
                f"f={self.config.f} without a decision"
            )
        self._maybe_start_round()

    def _vector_ok(self, decision: Any) -> bool:
        """A usable decision is a length-n vector with >= f+1 non-⊥ entries.

        MVC guarantees the decision was proposed by at least one correct
        process, whose vector necessarily has >= n - f non-⊥ entries; the
        check is defensive (and rejects the ⊥ decision itself).
        """
        return (
            isinstance(decision, list)
            and len(decision) == self.config.num_processes
            and sum(1 for item in decision if item is not None) >= self.config.f + 1
        )
