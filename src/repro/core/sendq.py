"""Bounded, priority-aware outbound frame queue.

Both runtimes keep one FIFO of encoded channel units per peer (the TCP
sender tasks, the simulator's link buffers).  Unbounded, those queues
are the easiest resource for a flooded or dead peer to exhaust:
frames pile up faster than the link drains them and memory grows until
the process dies -- exactly the denial-of-service the paper's protocols
cannot prevent on their own.

:class:`BoundedSendQueue` caps the queue at ``max_frames`` entries.
When a push would exceed the cap, the queue sheds the *oldest entry of
the lowest priority class at or below the incoming frame's priority*
(see :func:`repro.core.wire.frame_priority`): agreement votes outlive
payload frames, which outlive bulk state transfer.  Crucially the
surviving entries keep their FIFO order -- per-pair FIFO is a channel
assumption the protocols above rely on -- shedding removes frames, it
never reorders them.

``max_frames == 0`` disables the bound (seed behaviour).

Operations are O(1): a seq-numbered :class:`~collections.OrderedDict`
holds the FIFO, and one deque per priority class tracks shedding
candidates.  The head of the lowest-priority non-empty deque is always
the correct victim because entries enter both structures in the same
order and leave them together.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, deque

from repro.core.wire import (
    PRIORITY_AGREEMENT,
    PRIORITY_BULK,
    PRIORITY_PAYLOAD,
    frame_priority,
)

_NUM_PRIORITIES = PRIORITY_AGREEMENT + 1


class BoundedSendQueue:
    """Per-peer FIFO of encoded frames with priority-aware shedding.

    Args:
        max_frames: most entries kept; 0 means unbounded.
    """

    def __init__(self, max_frames: int = 0):
        if max_frames < 0:
            raise ValueError("max_frames must be >= 0")
        self.max_frames = max_frames
        self._entries: "OrderedDict[int, tuple[int, bytes]]" = OrderedDict()
        self._by_priority: list[deque[int]] = [deque() for _ in range(_NUM_PRIORITIES)]
        self._next_seq = 0
        self._bytes = 0
        self.peak_frames = 0
        self.peak_bytes = 0
        self.frames_shed = 0
        self.bytes_shed = 0
        self.shed_by_priority: Counter = Counter()

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def bytes(self) -> int:
        return self._bytes

    def snapshot(self) -> dict[str, int]:
        """Point-in-time depth/shedding view for the metrics layer (the
        runtimes' queue-gauge samplers) and tests."""
        return {
            "frames": len(self._entries),
            "bytes": self._bytes,
            "peak_frames": self.peak_frames,
            "peak_bytes": self.peak_bytes,
            "frames_shed": self.frames_shed,
            "bytes_shed": self.bytes_shed,
        }

    # -- operations -----------------------------------------------------------

    def push(self, data: bytes, priority: int | None = None) -> list[bytes]:
        """Enqueue *data*; returns the frames shed to make room.

        The shed list may contain *data* itself: when every queued frame
        outranks the newcomer, the newcomer is the victim (an agreement
        backlog is worth more than one more bulk chunk).
        """
        if priority is None:
            if not self.max_frames:
                # Unbounded queue: classification only matters for
                # shedding, which can never trigger -- skip the header
                # peek entirely (it decodes every batch member).
                priority = PRIORITY_PAYLOAD
            else:
                priority = frame_priority(data)
        priority = min(max(priority, PRIORITY_BULK), PRIORITY_AGREEMENT)
        shed: list[bytes] = []
        if self.max_frames and len(self._entries) >= self.max_frames:
            victim = self._shed_for(priority)
            if victim is None:
                self.frames_shed += 1
                self.bytes_shed += len(data)
                self.shed_by_priority[priority] += 1
                return [data]
            shed.append(victim)
        seq = self._next_seq
        self._next_seq += 1
        self._entries[seq] = (priority, data)
        self._by_priority[priority].append(seq)
        self._bytes += len(data)
        if len(self._entries) > self.peak_frames:
            self.peak_frames = len(self._entries)
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes
        return shed

    def _shed_for(self, incoming_priority: int) -> bytes | None:
        """Evict the oldest entry of the lowest class <= *incoming_priority*.

        Returns the evicted frame, or None when nothing at or below that
        class is queued (the caller's frame becomes the victim).
        """
        for prio in range(incoming_priority + 1):
            bucket = self._by_priority[prio]
            if bucket:
                seq = bucket.popleft()
                _, data = self._entries.pop(seq)
                self._bytes -= len(data)
                self.frames_shed += 1
                self.bytes_shed += len(data)
                self.shed_by_priority[prio] += 1
                return data
        return None

    def pop(self) -> bytes | None:
        """Dequeue the oldest frame (FIFO across all priorities)."""
        if not self._entries:
            return None
        seq, (priority, data) = self._entries.popitem(last=False)
        # The FIFO head entered first, so it is also the head of its
        # priority deque -- popping both keeps the structures aligned.
        self._by_priority[priority].popleft()
        self._bytes -= len(data)
        return data

    def drain(self) -> list[bytes]:
        """Dequeue everything, in FIFO order."""
        out = [data for _, data in self._entries.values()]
        self._entries.clear()
        for bucket in self._by_priority:
            bucket.clear()
        self._bytes = 0
        return out

    def clear(self) -> tuple[int, int]:
        """Drop everything; returns ``(frames, bytes)`` released.

        Used by the TCP dead-peer shed path: counts the drop into the
        shed statistics (unlike :meth:`drain`, which hands frames on).
        """
        frames = len(self._entries)
        nbytes = self._bytes
        for prio, data in self._entries.values():
            self.shed_by_priority[prio] += 1
        self.frames_shed += frames
        self.bytes_shed += nbytes
        self._entries.clear()
        for bucket in self._by_priority:
            bucket.clear()
        self._bytes = 0
        return frames, nbytes
