"""The RITAS stack: control blocks, chaining, routing and demultiplexing.

This module is the Python equivalent of the paper's Section 3 machinery:

- :class:`ControlBlock` -- "holds all the necessary information for an
  instance of a protocol"; instances form a tree via *control block
  chaining* (Section 3.3), with the application-created protocol at the
  root and children created recursively for the primitives it uses.
- :class:`Stack` -- the per-process runtime context (the C API's
  ``ritas_t``): it owns the instance registry, encodes/decodes frames,
  demultiplexes incoming messages by instance path, parks out-of-context
  messages, and exposes the send primitives.

The stack is **sans-IO**: it never touches a socket or an event loop.
A runtime (the discrete-event simulator in :mod:`repro.net` or the
asyncio transport in :mod:`repro.transport`) feeds frames in through
:meth:`Stack.receive` and carries frames out through the ``outbox``
callable supplied at construction.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.core.config import GroupConfig
from repro.core.errors import (
    ConfigurationError,
    InstanceDestroyedError,
    ProtocolViolationError,
    WireFormatError,
)
from repro.core.ledger import MisbehaviorLedger
from repro.core.mbuf import Mbuf
from repro.core.ooc import EVICT_QUOTA, OocTable
from repro.core.stats import PURPOSE_APP, StackStats
from repro.core.trace import (
    KIND_CREATE,
    KIND_DELIVER,
    KIND_DESTROY,
    KIND_DROP,
    KIND_OOC,
    KIND_QUARANTINE,
    KIND_QUOTA,
    KIND_RECEIVE,
    KIND_SEND,
    NULL_TRACER,
)
from repro.core.wire import (
    MAX_BATCH_DEPTH,
    Path,
    decode_batch_views,
    decode_frame_ex,
    encode_batch,
    encode_frame,
    encode_frame_from_prefix,
    encode_frame_from_prefix_raw,
    encode_frame_prefix,
    frame_fastpath,
    is_batch,
)
from repro.crypto.coin import CoinSource, LocalCoin
from repro.crypto.keys import KeyStore, TrustedDealer
from repro.obs.metrics import NULL_REGISTRY

#: Histogram of instance-lifetime latency: creation to first delivery
#: (create->deliver for rb/eb, create->decide for bc/mvc/vc, create->
#: first ordered delivery for ab), labelled by protocol and purpose.
METRIC_INSTANCE_LATENCY = "ritas_instance_latency_seconds"

Outbox = Callable[[int, bytes], None]
Clock = Callable[[], float]
DeliverFn = Callable[["ControlBlock", Any], None]

#: Fixed per-frame channel overhead avoided when a frame rides inside a
#: batch instead of standing alone: the TCP channel's u32 length prefix,
#: u64+u32 sequence/source header and 32-byte HMAC-SHA256 trailer.  Used
#: only for the ``header_bytes_saved`` statistic; the simulator charges
#: its own (larger) per-frame costs from its calibrated parameters.
CHANNEL_HEADER_BYTES = 4 + 12 + 32

#: Returned by :meth:`ControlBlock.accept_orphan` instead of ``False``
#: when the frame's subtree is *retired* -- an already-delivered message
#: id, a garbage-collected round.  The router drops such frames (counted
#: under the ``"stale-frame"`` drop reason) instead of parking them:
#: nothing will ever drain them, so parking would leak out-of-context
#: slots for the table's capacity eviction to clean up hours later.
ORPHAN_STALE = "stale"


class ControlBlock:
    """Base class for one protocol instance.

    Subclasses implement :meth:`input` (a frame addressed to this
    instance arrived) and :meth:`child_event` (a child instance delivered
    a result).  Deliveries travel *up* the tree: a child calls
    :meth:`deliver`, which invokes the parent's ``child_event`` -- or, at
    the root, the application callback assigned to :attr:`on_deliver`.
    """

    #: Short protocol tag used in statistics and logs ("rb", "bc", ...).
    protocol: str = "?"

    def __init__(
        self,
        stack: "Stack",
        path: Path,
        parent: "ControlBlock | None" = None,
        purpose: str | None = None,
    ):
        self.stack = stack
        self.path = path
        self.parent = parent
        if purpose is not None:
            self.purpose = purpose
        elif parent is not None:
            self.purpose = parent.purpose
        else:
            self.purpose = PURPOSE_APP
        self.children: dict[Path, ControlBlock] = {}
        self.on_deliver: DeliverFn | None = None
        self._destroyed = False
        #: Stack-clock time this instance was created; the metrics layer
        #: turns it into the instance-lifetime latency histogram.
        self.created_at = stack.clock()
        self._latency_observed = False
        if parent is not None:
            parent.children[path] = self
        stack._register(self)
        if stack.tracer.enabled:
            stack.tracer.emit(stack.process_id, KIND_CREATE, path, protocol=self.protocol)

    # -- convenience accessors -------------------------------------------------

    @property
    def config(self) -> GroupConfig:
        return self.stack.config

    @property
    def me(self) -> int:
        return self.stack.process_id

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    # -- tree management ---------------------------------------------------------

    def make_child(
        self, kind: str, suffix: tuple, *, purpose: str | None = None, **kwargs: Any
    ) -> "ControlBlock":
        """Create a child instance of protocol *kind* under this block.

        The child's path is this block's path extended with *suffix*;
        its class is resolved through the stack's protocol factory so
        that fault injection can substitute adversarial variants.
        """
        if self._destroyed:
            raise InstanceDestroyedError(f"cannot create child under destroyed {self.path}")
        cls = self.stack.factory.resolve(kind)
        self.stack._begin_construction()
        try:
            child = cls(
                self.stack,
                self.path + tuple(suffix),
                parent=self,
                purpose=purpose,
                **kwargs,
            )
        finally:
            self.stack._end_construction()
        return child

    def destroy(self) -> None:
        """Destroy this instance and, recursively, all its children.

        Mirrors Section 3.3: "a tree (or subtree) of control blocks is
        automatically destroyed when its root node is eliminated."
        Pending OOC messages for the subtree are purged (Section 3.4).
        """
        if self._destroyed:
            return
        self._destroyed = True
        for child in list(self.children.values()):
            child.destroy()
        self.children.clear()
        if self.parent is not None:
            self.parent.children.pop(self.path, None)
        self.stack._unregister(self)
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(
                self.stack.process_id, KIND_DESTROY, self.path, protocol=self.protocol
            )

    # -- data plane ---------------------------------------------------------------

    def send(self, dest: int, mtype: int, payload: Any) -> None:
        """Send one frame of this instance to process *dest*."""
        self.stack.send_frame(dest, self.path, mtype, payload)

    def send_all(self, mtype: int, payload: Any) -> None:
        """Send one frame of this instance to every process, self included."""
        self.stack.broadcast_frame(self.path, mtype, payload)

    def send_all_raw(self, mtype: int, raw) -> None:
        """Broadcast a frame whose payload is already canonically encoded.

        *raw* is spliced into the frame verbatim
        (:func:`repro.core.wire.encode_frame_from_prefix_raw`), so the
        bytes on the wire are identical to ``send_all(mtype,
        decode_value(raw))`` -- this is how reliable broadcast relays
        ECHO/READY payloads without a decode/re-encode round trip.  Only
        pass validated regions (``Mbuf.raw_payload`` from the receive
        path, or the output of :func:`~repro.core.wire.encode_value`).
        """
        self.stack.broadcast_frame_raw(self.path, mtype, raw)

    def input(self, mbuf: Mbuf) -> None:
        """Handle a frame addressed to this instance."""
        raise NotImplementedError

    def inspect(self) -> dict[str, Any]:
        """Read-only snapshot of this instance's externally checkable state.

        The protocol-invariant checker (:mod:`repro.check`) compares
        these snapshots *across processes*: same-path instances on
        different correct processes must never disagree on what they
        delivered or decided.  Subclasses extend the dict with their
        protocol's observable state; values must be cheap to produce
        (no copies of large structures) and wire-encodable where they
        are compared across processes.
        """
        return {"protocol": self.protocol, "destroyed": self._destroyed}

    def accept_orphan(self, mbuf: Mbuf) -> "bool | object":
        """Offer a frame addressed *below* this instance with no handler.

        A subclass that creates children dynamically (e.g. atomic
        broadcast creating a reliable-broadcast receiver for a message id
        it has never seen) inspects ``mbuf.path`` and instantiates the
        missing child, returning ``True``.  Returning ``False`` parks the
        frame in the OOC table; returning :data:`ORPHAN_STALE` drops it
        (the subtree is retired -- a collected round, a delivered
        message -- so no future registration can ever drain it, and
        parking would pin an OOC slot until capacity eviction).
        """
        return False

    def child_event(self, child: "ControlBlock", event: Any) -> None:
        """Handle a delivery from a child instance."""

    def deliver(self, event: Any) -> None:
        """Deliver *event* to the parent instance or application callback."""
        if self._destroyed:
            return
        if not self._latency_observed:
            self._latency_observed = True
            metrics = self.stack.metrics
            if metrics.enabled:
                metrics.histogram(
                    METRIC_INSTANCE_LATENCY,
                    protocol=self.protocol,
                    purpose=self.purpose,
                ).observe(self.stack.clock() - self.created_at)
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(
                self.stack.process_id, KIND_DELIVER, self.path, protocol=self.protocol
            )
        observer = self.stack.observer
        if observer is not None:
            observer(self)
        if self.on_deliver is not None:
            self.on_deliver(self, event)
        elif self.parent is not None:
            self.parent.child_event(self, event)


class ProtocolFactory:
    """Resolves protocol kinds ("rb", "bc", ...) to control-block classes.

    Fault injection replaces entries to make one process run adversarial
    variants of a layer while the rest of its stack stays honest -- this
    is how the paper's Byzantine faultload (Section 4.2) is expressed.
    """

    def __init__(self, registry: dict[str, type[ControlBlock]] | None = None):
        self._registry: dict[str, type[ControlBlock]] = dict(registry or {})

    @classmethod
    def default(cls, config: GroupConfig | None = None) -> "ProtocolFactory":
        """Factory with the honest implementation of every layer.

        With a *config*, the "bc" entry honours ``config.bc_engine``
        (resolved through the :mod:`repro.core.bc_engine` registry);
        without one, the paper's Bracha engine is used.  Resolution
        happens *here*, before any adversarial override, so faultloads
        that derive from the registered "bc" class corrupt whichever
        engine the group is configured to run.
        """
        # Imported here to avoid a cycle: protocol modules import this one.
        from repro.core.atomic_broadcast import AtomicBroadcast
        from repro.core.binary_consensus import BinaryConsensus
        from repro.core.echo_broadcast import EchoBroadcast
        from repro.core.multivalued_consensus import MultiValuedConsensus
        from repro.core.reliable_broadcast import ReliableBroadcast
        from repro.core.vector_consensus import VectorConsensus
        from repro.recovery.protocol import RecoveryProtocol

        bc: type[ControlBlock] = BinaryConsensus
        if config is not None and config.bc_engine != "bracha":
            from repro.core.bc_engine import resolve_bc_engine

            bc = resolve_bc_engine(config.bc_engine)

        return cls(
            {
                "rb": ReliableBroadcast,
                "eb": EchoBroadcast,
                "bc": bc,
                "mvc": MultiValuedConsensus,
                "vc": VectorConsensus,
                "ab": AtomicBroadcast,
                "ckpt": RecoveryProtocol,
            }
        )

    def resolve(self, kind: str) -> type[ControlBlock]:
        try:
            return self._registry[kind]
        except KeyError:
            raise ConfigurationError(f"no protocol registered for kind {kind!r}") from None

    def override(self, kind: str, cls: type[ControlBlock]) -> "ProtocolFactory":
        """Return a copy of this factory with *kind* replaced by *cls*."""
        registry = dict(self._registry)
        registry[kind] = cls
        return ProtocolFactory(registry)

    def kinds(self) -> list[str]:
        return sorted(self._registry)


class Stack:
    """Per-process protocol context (the paper's ``ritas_t``).

    Args:
        config: the process group description.
        process_id: this process's id in ``[0, n)``.
        outbox: callable invoked with ``(dest_pid, frame_bytes)`` for
            every outgoing frame; supplied by the runtime.
        keystore: this process's pairwise secret keys.  When omitted, a
            deterministic dealer keyed on the group size is used -- fine
            for simulations, not for deployment.
        coin: random-bit source for binary consensus.  Default: a local
            coin over a PRNG stream derived from the stack RNG (so
            seeded stacks replay byte-identically); required explicitly
            when ``config.bc_coin == "shared"`` (the runtime deals it).
        clock: monotonic time source used only for statistics.
        factory: protocol class registry (default: honest stack).
        ooc_capacity: bound on parked out-of-context messages; defaults
            to ``config.ooc_capacity``.
    """

    def __init__(
        self,
        config: GroupConfig,
        process_id: int,
        outbox: Outbox,
        *,
        keystore: KeyStore | None = None,
        coin: CoinSource | None = None,
        clock: Clock | None = None,
        factory: ProtocolFactory | None = None,
        rng: random.Random | None = None,
        ooc_capacity: int | None = None,
    ):
        if not 0 <= process_id < config.num_processes:
            raise ConfigurationError(
                f"process id {process_id} out of range for n={config.num_processes}"
            )
        self.config = config
        self.process_id = process_id
        self._outbox = outbox
        if keystore is None:
            # Scoped by group_tag: two same-n groups hosted in one
            # process must not share pairwise MAC keys.
            dealer = TrustedDealer(
                config.num_processes,
                seed=config.scoped_seed_bytes(b"repro-default-dealer"),
            )
            keystore = dealer.keystore_for(process_id)
        self.keystore = keystore
        self.rng = rng if rng is not None else random.Random()
        if coin is None:
            if config.bc_coin == "shared":
                # The shared coin needs a group-wide dealer secret the
                # stack cannot invent; the runtime must deal it.
                raise ConfigurationError(
                    "config.bc_coin='shared' but no coin was supplied: "
                    "the runtime must deal SharedCoin instances"
                )
            # Dedicated stream *derived* from the stack RNG -- not
            # self.rng itself, whose draw order runtimes may interleave
            # with timing-dependent draws (reconnect jitter), and not
            # the bare-LocalCoin() SystemRandom fallback, which breaks
            # byte-identical same-seed replay.
            coin = LocalCoin(random.Random(self.rng.getrandbits(64)))
        self.coin: CoinSource = coin
        self.clock: Clock = clock if clock is not None else (lambda: 0.0)
        self.factory = factory if factory is not None else ProtocolFactory.default(config)
        bc_cls = self.factory._registry.get("bc")
        if getattr(bc_cls, "requires_common_coin", False) and not getattr(
            self.coin, "common", False
        ):
            raise ConfigurationError(
                f"bc engine {getattr(bc_cls, 'engine_name', '?')!r} requires a "
                "common coin, but the configured coin source is not common"
            )
        self.stats = StackStats()
        #: Structured event recorder; NULL_TRACER by default (no cost).
        self.tracer = NULL_TRACER
        #: Metric registry (:mod:`repro.obs`); NULL_REGISTRY by default,
        #: so instrumentation guarded by ``metrics.enabled`` is free.
        self.metrics = NULL_REGISTRY
        #: Optional callable invoked with the delivering control block on
        #: every :meth:`ControlBlock.deliver`; the invariant checker uses
        #: it to dirty-track which instance paths need re-checking.
        self.observer: Callable[[ControlBlock], None] | None = None
        #: When True, atomic-broadcast instances created on this stack
        #: keep a full per-delivery order log for cross-process
        #: prefix-agreement checking (memory grows with history -- meant
        #: for bounded checker/explorer runs, not production sessions).
        self.record_delivery_order = False
        #: With ``record_delivery_order`` on, a nonzero cap bounds each
        #: order log to its most recent entries (soak runs keep windowed
        #: order agreement checkable at flat memory); 0 = unbounded.
        self.order_log_cap = 0
        #: Per-peer misbehavior scores and quarantine state.  The clock
        #: indirects through the attribute so runtimes that swap
        #: ``stack.clock`` after construction keep probation timing right.
        self.ledger = MisbehaviorLedger(config, clock=lambda: self.clock())
        self._registry: dict[Path, ControlBlock] = {}
        # Demux fast path: raw encoded-path bytes -> control block, so
        # inbound frames for live instances dispatch without decoding
        # the path (see _receive_unit); plus the mirror cache on the
        # send side, instance path -> encoded frame prefix.  Both are
        # maintained by _register/_unregister, so they are bounded by
        # the number of live instances.
        self._demux: dict[bytes, ControlBlock] = {}
        self._path_prefix: dict[Path, bytes] = {}
        self._ooc = OocTable(
            ooc_capacity if ooc_capacity is not None else config.ooc_capacity,
            peer_quota=config.ooc_peer_quota,
        )
        self._ooc.on_evict = self._on_ooc_evict
        # Out-of-context frames drained by a registration are replayed
        # only once the instance tree being built is fully constructed
        # (a subclass __init__ may still be initializing its state).
        self._replay: list[Mbuf] = []
        self._construction_depth = 0
        self._replaying = False
        # Frame coalescing: while a flush window is open, outgoing
        # frames are parked per destination and flushed as batches.
        self._coalesce_depth = 0
        self._pending_frames: dict[int, list[bytes]] = {}

    # -- instance management -------------------------------------------------------

    def create(self, kind: str, path: Path, **kwargs: Any) -> ControlBlock:
        """Create a root (application-level) protocol instance."""
        if path in self._registry:
            raise ConfigurationError(f"instance already exists at path {path}")
        cls = self.factory.resolve(kind)
        self._begin_construction()
        try:
            instance = cls(self, tuple(path), parent=None, **kwargs)
        finally:
            self._end_construction()
        return instance

    def instance_at(self, path: Path) -> ControlBlock | None:
        return self._registry.get(tuple(path))

    def _register(self, block: ControlBlock) -> None:
        if block.path in self._registry:
            raise ConfigurationError(f"duplicate instance path {block.path}")
        self._registry[block.path] = block
        prefix = encode_frame_prefix(block.path)
        self._path_prefix[block.path] = prefix
        # The frame prefix past the 6 fixed header bytes is exactly the
        # canonical path encoding -- the demux key inbound frames carry.
        self._demux[prefix[6:]] = block
        parked = self._ooc.drain_prefix(block.path)
        if parked:
            self.stats.ooc_drained += len(parked)
            self._replay.extend(parked)
            self._flush_replay()

    def _begin_construction(self) -> None:
        self._construction_depth += 1

    def _end_construction(self) -> None:
        self._construction_depth -= 1
        if self._construction_depth == 0:
            self._flush_replay()

    def _flush_replay(self) -> None:
        if self._replaying or self._construction_depth > 0:
            return
        self._replaying = True
        try:
            while self._replay:
                self.route(self._replay.pop(0))
        finally:
            self._replaying = False

    def _unregister(self, block: ControlBlock) -> None:
        self._registry.pop(block.path, None)
        prefix = self._path_prefix.pop(block.path, None)
        if prefix is not None:
            self._demux.pop(prefix[6:], None)
        purged = self._ooc.purge_prefix(block.path)
        self.stats.ooc_purged += purged

    @property
    def live_instances(self) -> int:
        return len(self._registry)

    def instances(self) -> dict[Path, ControlBlock]:
        """Snapshot of the live instance registry (path -> control block).

        Diagnostic / checker API: the returned dict is a copy; mutating
        it does not affect the stack.
        """
        return dict(self._registry)

    def check_ooc_accounting(self) -> None:
        """Assert the out-of-context conservation law.

        Every message ever parked must be accounted for exactly once:
        ``stored == pending + drained (replayed) + purged (instance
        destroyed) + evicted``.  Raises :class:`AssertionError` with the
        full balance on violation; the invariant layer calls this after
        every simulator event.
        """
        stored = self.stats.ooc_stored
        pending = len(self._ooc)
        drained = self.stats.ooc_drained
        purged = self.stats.ooc_purged
        evicted = self._ooc.evictions
        if stored != pending + drained + purged + evicted:
            raise AssertionError(
                f"p{self.process_id} OOC conservation broken: stored={stored} != "
                f"pending={pending} + drained={drained} + purged={purged} "
                f"+ evicted={evicted}"
            )

    @property
    def ooc_pending(self) -> int:
        return len(self._ooc)

    def ooc_has_prefix(self, prefix: Path) -> bool:
        """True if out-of-context messages are parked under *prefix*."""
        return self._ooc.has_prefix(tuple(prefix))

    @property
    def ooc(self) -> OocTable:
        """The out-of-context table (read-only diagnostics: peaks,
        per-sender pending counts, eviction attribution)."""
        return self._ooc

    # -- observability ---------------------------------------------------------------

    def sample_gauges(self) -> None:
        """Refresh this stack's depth gauges in its metrics registry.

        Runtimes call this periodically (and before snapshotting): the
        OOC table's pending depth, the live-instance count, and each
        root atomic-broadcast instance's locally-pending backlog (the
        quantity ``config.ab_pending_cap`` bounds).  Send-queue depths
        live in the runtimes, which sample them alongside this.  A no-op
        with metrics disabled.
        """
        metrics = self.metrics
        if not metrics.enabled:
            return
        ooc = self._ooc.snapshot()
        metrics.gauge("ritas_ooc_pending").set(ooc["pending"])
        metrics.gauge("ritas_ooc_bytes").set(ooc["bytes"])
        metrics.gauge("ritas_instances_live").set(len(self._registry))
        for path, block in self._registry.items():
            if block.protocol == "ab" and block.parent is None:
                metrics.gauge(
                    "ritas_ab_pending_local",
                    path="/".join(str(c) for c in path),
                ).set(block.pending_local)  # type: ignore[attr-defined]

    # -- flood defense ---------------------------------------------------------------

    def report_misbehavior(self, src: int, offense: str, weight: float | None = None) -> bool:
        """Score one offense by peer *src* in the misbehavior ledger.

        Only link-authenticated sources may be scored (never identities
        read out of payloads -- see :mod:`repro.core.ledger`); reports
        against self or out-of-range ids are ignored.  Returns True if
        this report moved the peer into quarantine.
        """
        if src == self.process_id or not 0 <= src < self.config.num_processes:
            return False
        self.stats.misbehavior_reports += 1
        entered = self.ledger.report(src, offense, weight)
        if entered:
            self.stats.quarantine_entries += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    self.process_id,
                    KIND_QUARANTINE,
                    (),
                    src=src,
                    offense=offense,
                    score=self.ledger.score(src),
                )
        return entered

    def _on_ooc_evict(self, mbuf: Mbuf, reason: str) -> None:
        """OOC eviction hook: count, trace and -- when the evicted
        sender exceeds its fair share -- score the offender."""
        if reason == EVICT_QUOTA:
            self.stats.ooc_quota_evictions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.process_id, KIND_QUOTA, mbuf.path, src=mbuf.src, reason=reason
            )
        fair_share = max(1, self._ooc.capacity // self.config.num_processes)
        if reason == EVICT_QUOTA or self._ooc.pending_of(mbuf.src) >= fair_share:
            self.report_misbehavior(mbuf.src, "ooc-quota")

    # -- data plane -----------------------------------------------------------------

    def send_frame(self, dest: int, path: Path, mtype: int, payload: Any) -> None:
        prefix = self._path_prefix.get(path)
        if prefix is not None:
            data = encode_frame_from_prefix(prefix, mtype, payload)
        else:
            data = encode_frame(path, mtype, payload)
        self.stats.record_send(len(data))
        if self.tracer.enabled:
            self.tracer.emit(
                self.process_id, KIND_SEND, path, dest=dest, mtype=mtype, size=len(data)
            )
        self._emit(dest, data)

    def broadcast_frame(self, path: Path, mtype: int, payload: Any) -> None:
        """Send one frame to every process, encoding it exactly once.

        The identical bytes are handed to the outbox for each
        destination (the codec is canonical, so this matches what
        per-destination encoding would produce byte-for-byte).
        """
        prefix = self._path_prefix.get(path)
        if prefix is not None:
            data = encode_frame_from_prefix(prefix, mtype, payload)
        else:
            data = encode_frame(path, mtype, payload)
        size = len(data)
        tracing = self.tracer.enabled
        for dest in self.config.process_ids:
            self.stats.record_send(size)
            if tracing:
                self.tracer.emit(
                    self.process_id, KIND_SEND, path, dest=dest, mtype=mtype, size=size
                )
            self._emit(dest, data)

    def broadcast_frame_raw(self, path: Path, mtype: int, raw) -> None:
        """:meth:`broadcast_frame` for an already-encoded payload region.

        Splices *raw* after the cached path prefix -- byte-identical to
        the value-encoding path by canonicality, with the same
        statistics and trace accounting.
        """
        prefix = self._path_prefix.get(path)
        if prefix is None:
            prefix = encode_frame_prefix(path)
        data = encode_frame_from_prefix_raw(prefix, mtype, raw)
        size = len(data)
        tracing = self.tracer.enabled
        for dest in self.config.process_ids:
            self.stats.record_send(size)
            if tracing:
                self.tracer.emit(
                    self.process_id, KIND_SEND, path, dest=dest, mtype=mtype, size=size
                )
            self._emit(dest, data)

    # -- frame coalescing -----------------------------------------------------------

    @contextmanager
    def coalesce(self) -> Iterator[None]:
        """Open a flush window: frames sent inside it that share a
        destination leave as one batch channel unit.

        Windows nest; frames flush when the outermost window closes.
        With ``config.batching`` off this is a no-op and every frame
        goes to the outbox individually, exactly like the unbatched
        stack.  :meth:`receive` opens a window around each inbound
        channel unit, so replies provoked by one arrival coalesce
        automatically; runtimes and applications wrap bursts of sends
        the same way.
        """
        self._coalesce_depth += 1
        try:
            yield
        finally:
            self._coalesce_depth -= 1
            if self._coalesce_depth == 0 and self._pending_frames:
                self._flush_pending_frames()

    def _emit(self, dest: int, data: bytes) -> None:
        if self._coalesce_depth > 0 and self.config.batching:
            pending = self._pending_frames.setdefault(dest, [])
            pending.append(data)
            # A full window flushes eagerly: the pending path holds at
            # most batch_max_frames frames per destination, so a long
            # receive cascade cannot balloon it.  The chunking matches
            # what window close would produce, so the wire is identical.
            if len(pending) >= self.config.batch_max_frames:
                del self._pending_frames[dest]
                self.stats.record_batch_sent(
                    len(pending), (len(pending) - 1) * CHANNEL_HEADER_BYTES
                )
                self._outbox(dest, encode_batch(pending))
        else:
            self._outbox(dest, data)

    def _flush_pending_frames(self) -> None:
        pending, self._pending_frames = self._pending_frames, {}
        cap = self.config.batch_max_frames
        for dest, frames in pending.items():
            for start in range(0, len(frames), cap):
                chunk = frames[start : start + cap]
                if len(chunk) == 1:
                    # A lone frame travels bare: zero container overhead
                    # and byte-identical to the unbatched send.
                    self._outbox(dest, chunk[0])
                    continue
                self.stats.record_batch_sent(
                    len(chunk), (len(chunk) - 1) * CHANNEL_HEADER_BYTES
                )
                self._outbox(dest, encode_batch(chunk))

    def receive(self, src: int, data: bytes) -> None:
        """Entry point for the runtime: one channel unit arrived from
        *src* -- a single frame, or a batch of them.

        The reliable channel authenticates the link, so *src* is
        trustworthy; everything else in the frame is attacker-controlled
        and is decoded defensively.  A malformed batch container is
        dropped whole; a malformed frame inside a well-formed batch
        drops only that frame.

        A quarantined peer's units are dropped here, before any decode
        or protocol work -- the cheap path is the point of quarantine.
        """
        if src != self.process_id and self.ledger.quarantined(src):
            self.stats.frames_quarantine_dropped += 1
            self.stats.record_drop("quarantined")
            if self.tracer.enabled:
                self.tracer.emit(self.process_id, KIND_DROP, (), src=src, reason="quarantined")
            return
        # Inlined coalesce() window (the contextmanager shows up on
        # profiles at one open/close per received unit).
        self._coalesce_depth += 1
        try:
            self._receive_unit(src, data, 0)
        finally:
            self._coalesce_depth -= 1
            if self._coalesce_depth == 0 and self._pending_frames:
                self._flush_pending_frames()

    def _receive_unit(self, src: int, data, depth: int) -> None:
        if is_batch(data):
            if depth >= MAX_BATCH_DEPTH:
                self.stats.record_drop("batch-too-deep")
                self.report_misbehavior(src, "batch-too-deep")
                return
            try:
                frames = decode_batch_views(data)
            except WireFormatError:
                self.stats.record_drop("malformed-batch")
                self.report_misbehavior(src, "malformed-batch")
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.process_id, KIND_DROP, (), src=src, reason="malformed-batch"
                    )
                return
            self.stats.record_batch_received(len(frames))
            for frame in frames:
                self._receive_unit(src, frame, depth + 1)
            return
        size = len(data)
        self.stats.record_receive(size)
        # Fast path: a fully validated plain frame whose raw encoded
        # path matches a live instance dispatches on the interned path
        # bytes -- no path decode, no tuple allocation, no registry
        # walk, and the payload stays encoded (lazy) because the region
        # was validated.  The parse itself is memoized by frame bytes
        # (frame_fastpath), so the n-1 repeat copies of a broadcast skip
        # the walk entirely.  Anything else (unknown path, malformed
        # frame) takes the validating slow path below, which behaves
        # exactly like the original decoder.
        parsed = frame_fastpath(data)
        if parsed is not None:
            block = self._demux.get(parsed[0])
            if block is not None:
                mtype = parsed[1]
                path = block.path
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.process_id, KIND_RECEIVE, path, src=src, mtype=mtype, size=size
                    )
                mbuf = Mbuf.lazy(
                    src,
                    path,
                    mtype,
                    parsed[2],
                    wire_size=size,
                    recv_time=self.clock(),
                )
                self._input_guarded(block, mbuf)
                return
        try:
            path, mtype, payload, raw = decode_frame_ex(data)
        except WireFormatError:
            self.stats.record_drop("malformed-frame")
            self.report_misbehavior(src, "malformed-frame")
            if self.tracer.enabled:
                self.tracer.emit(self.process_id, KIND_DROP, (), src=src, reason="malformed")
            return
        if self.tracer.enabled:
            self.tracer.emit(
                self.process_id, KIND_RECEIVE, path, src=src, mtype=mtype, size=size
            )
        mbuf = Mbuf(
            src=src,
            path=path,
            mtype=mtype,
            payload=payload,
            wire_size=size,
            recv_time=self.clock(),
            raw_payload=raw,
        )
        self.route(mbuf)

    def route(self, mbuf: Mbuf) -> None:
        """Demultiplex *mbuf* to its instance, or park it out-of-context."""
        instance = self._registry.get(mbuf.path)
        if instance is not None:
            self._input_guarded(instance, mbuf)
            return
        # Walk up the path looking for the deepest live ancestor that can
        # create the missing child (dynamic demultiplexing).
        for prefix_len in range(len(mbuf.path) - 1, 0, -1):
            ancestor = self._registry.get(mbuf.path[:prefix_len])
            if ancestor is None:
                continue
            created: bool | object = False
            try:
                created = ancestor.accept_orphan(mbuf)
            except ProtocolViolationError:
                self.stats.record_drop("protocol-violation")
                self.report_misbehavior(mbuf.src, "protocol-violation")
                return
            if created is ORPHAN_STALE:
                self.stats.record_drop("stale-frame")
                return
            if created:
                instance = self._registry.get(mbuf.path)
                if instance is not None:
                    self._input_guarded(instance, mbuf)
                    return
            break
        # Parked mbufs may outlive the inbound channel buffer their raw
        # payload slice aliases; materialize the payload (a no-op unless
        # the mbuf is lazy) and drop the cache rather than pin it.
        mbuf.payload
        mbuf.raw_payload = None
        self._ooc.store(mbuf)
        self.stats.ooc_stored += 1
        self.stats.ooc_evicted = self._ooc.evictions
        if self.tracer.enabled:
            self.tracer.emit(self.process_id, KIND_OOC, mbuf.path, src=mbuf.src)

    def _input_guarded(self, instance: ControlBlock, mbuf: Mbuf) -> None:
        try:
            instance.input(mbuf)
        except ProtocolViolationError:
            self.stats.record_drop("protocol-violation")
            self.report_misbehavior(mbuf.src, "protocol-violation")
        except WireFormatError:
            # Defense in depth: lazy payloads are validated at receive
            # time, so a decode raising here means the validator and
            # decoder disagree -- treat it like any malformed frame
            # rather than letting it unwind the runtime.
            self.stats.record_drop("malformed-frame")
            self.report_misbehavior(mbuf.src, "malformed-frame")

    # -- randomness -------------------------------------------------------------------

    def toss_coin(self, instance_path: Path, round_number: int) -> int:
        """Obtain the round coin for a binary-consensus instance."""
        tag = "/".join(str(c) for c in instance_path).encode()
        value = self.coin.toss(tag, round_number)
        if self.metrics.enabled:
            # Counted at toss time -- not on the adopt-coin path -- so
            # the coin-skew gauge covers every tossed round, including
            # ones where a-priori agreement made the toss moot.
            self.metrics.counter("ritas_bc_coin_total", value=value).inc()
        return value
