"""Atomic broadcast (Section 2.7 of the paper).

Reliable broadcast plus *total order*: every correct process delivers
the same messages in the same order.  The implementation follows the
paper's optimized variant of Correia et al.'s protocol: agreement runs
on compact *message identifiers* ``(sender, rbid)`` instead of
cryptographic hashes, and uses multi-valued consensus directly instead
of vector consensus.

Two conceptual tasks:

1. **Broadcast** -- to A-broadcast *m*, a process reliably broadcasts
   ``(AB_MSG, i, rbid, m)``; the pair ``(i, rbid)`` identifies *m*
   system-wide.
2. **Agreement** -- in rounds: each process reliably broadcasts
   ``(AB_VECT, i, r, V_i)`` with the identifiers it has received but not
   yet delivered; after ``n - f`` such vectors it builds ``W_i``, the
   identifiers present in ``f + 1`` or more of them (so every chosen
   identifier was vouched for by a correct process and its payload is
   guaranteed to arrive), and proposes ``W_i`` to multi-valued
   consensus.  A non-⊥ decision is delivered in deterministic
   (sender, rbid) order.

The batching is what makes the protocol cheap at high load: one
agreement orders every message that arrived while the previous
agreement ran, so the relative cost of agreement *dilutes* as bursts
grow (Figure 7 of the paper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.core.errors import BackpressureError, ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ORPHAN_STALE, ControlBlock, Stack
from repro.core.stats import PURPOSE_AGREEMENT, PURPOSE_PAYLOAD
from repro.core.trace import KIND_BACKPRESSURE
from repro.core.wire import Path, encode_value_cached
from repro.crypto.hashing import hash_bytes

#: (sender pid, sender-local broadcast id)
MsgId = tuple[int, int]

#: Defensive cap on identifiers accepted in one AB_VECT: a corrupt
#: process must not be able to blow up memory with one giant vector.
MAX_VECT_IDS = 65536


@dataclass(frozen=True, slots=True)
class AbDelivery:
    """One totally-ordered delivery handed to the application."""

    sender: int
    rbid: int
    payload: Any
    sequence: int

    @property
    def msg_id(self) -> MsgId:
        return (self.sender, self.rbid)


class AtomicBroadcast(ControlBlock):
    """One atomic broadcast group session."""

    protocol = "ab"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
        *,
        msg_window: int | None = None,
        gc_rounds: int | None = None,
    ):
        """*msg_window*: per-sender cap on receiver-side AB message
        instances; defaults to ``config.ab_msg_window``.

        *gc_rounds*: when set, protocol instances belonging to
        agreement rounds more than this many rounds in the past are
        destroyed, bounding memory on long-running sessions.  Keep it
        >= 2 so that stragglers still inside an old round's broadcasts
        can finish; ``None`` (the default) never collects."""
        super().__init__(stack, path, parent, purpose)
        if gc_rounds is not None and gc_rounds < 2:
            raise ValueError("gc_rounds must be >= 2 (or None)")
        self._next_rbid = 0
        self._msg_window = (
            msg_window if msg_window is not None else stack.config.ab_msg_window
        )
        self._gc_rounds = gc_rounds
        #: Set by an external collector (the checkpoint manager in
        #: :mod:`repro.recovery`) before any delivery: payload bookkeeping
        #: then behaves as under ``gc_rounds``, but instances are only
        #: destroyed when :meth:`collect_through` is called.
        self.external_gc = False
        self._open_msg_instances: dict[int, int] = {}
        self._received: dict[MsgId, Any] = {}
        self._scheduled: set[MsgId] = set()
        # Delivered identifiers, kept compact: per-sender contiguous
        # watermark (every rbid <= it is delivered) plus a sparse set of
        # delivered ids above their sender's watermark.  Bounded by the
        # number of in-flight messages, not by history length -- and
        # directly transferable to a recovering replica.
        self._frontier: dict[int, int] = {}
        self._frontier_sparse: set[MsgId] = set()
        self._delivered_count = 0
        self._delivery_queue: deque[MsgId] = deque()
        self._round = 0
        self._round_vects: dict[int, dict[int, list[MsgId]]] = {}
        self._vect_sent: set[int] = set()
        self._mvc_proposed: set[int] = set()
        self._collectable: deque[tuple[int, MsgId]] = deque()
        self._gc_floor = 0  # lowest round whose instances still exist
        # Cumulative count of identifiers scheduled through the end of
        # each decided round.  Identical at every correct process (it is
        # derived from the agreed decisions), so "the group's delivery
        # position at the end of round r" is well-defined; the recovery
        # layer uses it to splice a transferred log prefix onto a
        # fast-forwarded instance.  _position_base anchors the count to
        # absolute positions (None until a recovering replica learns its
        # anchor from peers).
        self._sched_cum: dict[int, int] = {}
        self._sched_total = 0
        self._position_base: int | None = 0
        self.agreements_started = 0
        self.agreements_empty = 0
        self.fast_forwards = 0
        self.payloads_injected = 0
        # Metrics bookkeeping, populated only while the stack's registry
        # is enabled: submit time of locally broadcast messages (observed
        # as end-to-end ordered-delivery latency) and start time of each
        # round's agreement (proposal to decision).
        self._submit_times: dict[MsgId, float] = {}
        self._agreement_started_at: dict[int, float] = {}
        #: Per-delivery order log ``(sender, rbid, payload digest)``,
        #: kept only when the stack opts in (the invariant checker
        #: compares prefixes across processes); ``None`` otherwise so
        #: ordinary runs pay nothing.  With ``stack.order_log_cap`` set,
        #: only the most recent entries are kept (a bounded deque) --
        #: long soak runs check windowed order agreement at O(cap)
        #: memory instead of O(history).
        self.order_log: "deque[tuple[int, int, bytes]] | list[tuple[int, int, bytes]] | None"
        if stack.record_delivery_order:
            cap = stack.order_log_cap
            self.order_log = deque(maxlen=cap) if cap else []
        else:
            self.order_log = None
        self._ensure_vect_instances(0)

    # -- public API -----------------------------------------------------------------

    def broadcast(self, payload: Any) -> MsgId:
        """Atomically broadcast *payload*; returns its system-wide id.

        The message is delivered through :attr:`on_deliver` (in total
        order, at every correct process) -- not returned here.

        Raises:
            BackpressureError: ``config.ab_pending_cap`` locally
                submitted messages are still undelivered -- admitting
                more would only grow queues everywhere.  Resubmit after
                deliveries drain.
        """
        cap = self.config.ab_pending_cap
        if cap and self.pending_local >= cap:
            self.stack.stats.backpressure_signals += 1
            if self.stack.tracer.enabled:
                self.stack.tracer.emit(
                    self.me, KIND_BACKPRESSURE, self.path, pending=self.pending_local, cap=cap
                )
            raise BackpressureError(
                f"{self.pending_local} local messages undelivered (cap {cap})",
                pending=self.pending_local,
                cap=cap,
            )
        rbid = self._next_rbid
        self._next_rbid += 1
        if self.stack.metrics.enabled:
            self._submit_times[(self.me, rbid)] = self.stack.clock()
        rb = self.make_child(
            "rb", ("msg", self.me, rbid), sender=self.me, purpose=PURPOSE_PAYLOAD
        )
        rb.broadcast(payload)  # type: ignore[attr-defined]
        return (self.me, rbid)

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    # -- introspection --------------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["delivered_count"] = self._delivered_count
        state["round"] = self._round
        if self.order_log is not None:
            state["order_log"] = self.order_log
        return state

    @property
    def pending_local(self) -> int:
        """Locally submitted messages not yet delivered back to us --
        the quantity ``config.ab_pending_cap`` bounds."""
        delivered = self._frontier.get(self.me, -1) + 1
        delivered += sum(1 for s, _ in self._frontier_sparse if s == self.me)
        return self._next_rbid - delivered

    @property
    def round(self) -> int:
        return self._round

    @property
    def gc_floor(self) -> int:
        """Lowest agreement round whose protocol instances still exist."""
        return self._gc_floor

    # -- delivered-id frontier ------------------------------------------------------

    @property
    def _gc_enabled(self) -> bool:
        return self._gc_rounds is not None or self.external_gc

    def _is_delivered(self, msg_id: MsgId) -> bool:
        sender, rbid = msg_id
        return rbid <= self._frontier.get(sender, -1) or msg_id in self._frontier_sparse

    def _mark_delivered(self, msg_id: MsgId) -> None:
        sender, rbid = msg_id
        watermark = self._frontier.get(sender, -1)
        if rbid <= watermark:
            return
        if rbid != watermark + 1:
            self._frontier_sparse.add(msg_id)
            return
        watermark = rbid
        while (sender, watermark + 1) in self._frontier_sparse:
            watermark += 1
            self._frontier_sparse.discard((sender, watermark))
        self._frontier[sender] = watermark

    def delivered_frontier(self) -> list[list[Any]]:
        """Wire-encodable summary of every delivered identifier:
        ``[[sender, watermark, [sparse rbids...]], ...]``."""
        senders = set(self._frontier)
        senders.update(sender for sender, _ in self._frontier_sparse)
        return [
            [
                sender,
                self._frontier.get(sender, -1),
                sorted(r for s, r in self._frontier_sparse if s == sender),
            ]
            for sender in sorted(senders)
        ]

    def _install_frontier(self, frontier: list) -> None:
        for sender, watermark, sparse in frontier:
            if watermark >= 0:
                self._frontier[sender] = watermark
            for rbid in sparse:
                self._frontier_sparse.add((sender, rbid))

    @staticmethod
    def parse_frontier(payload: Any) -> list[list[Any]] | None:
        """Validate an untrusted wire frontier; ``None`` if malformed."""
        if not isinstance(payload, list) or len(payload) > 4096:
            return None
        out: list[list[Any]] = []
        for entry in payload:
            if (
                not isinstance(entry, list)
                or len(entry) != 3
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], int)
                or not isinstance(entry[2], list)
                or len(entry[2]) > MAX_VECT_IDS
                or not all(isinstance(r, int) and r >= 0 for r in entry[2])
            ):
                return None
            out.append(entry)
        return out

    # -- positions ------------------------------------------------------------------

    def positions_by_round(self) -> dict[int, int]:
        """Absolute delivery position of the group at the end of each
        (still-tracked) decided round.  Empty while a fast-forwarded
        instance has not yet learned its anchor (:meth:`set_position_base`)."""
        if self._position_base is None:
            return {}
        return {r: self._position_base + c for r, c in self._sched_cum.items()}

    def set_position_base(self, base: int) -> None:
        """Anchor the per-round scheduled counts at absolute position
        *base* (the group position at the end of the round before this
        instance's first round)."""
        self._position_base = base

    # -- recovery hooks -------------------------------------------------------------

    def fast_forward(self, round_number: int, frontier: list | None = None) -> None:
        """Join the agreement at *round_number* instead of round 0.

        Only an instance that has not yet scheduled or delivered
        anything may be fast-forwarded (a restarted replica joins before
        processing history, never mid-stream).  *frontier* -- as produced
        by :meth:`delivered_frontier` on a peer -- marks identifiers the
        group already delivered, so stale frames can never re-deliver
        them here.  Frames for rounds at or above the join round that
        arrived early are re-played from the out-of-context table the
        moment the round's instances exist.
        """
        if self._scheduled or self._delivery_queue or self._delivered_count:
            raise ProtocolViolationError(
                "fast_forward requires an instance with no scheduled deliveries"
            )
        if round_number <= self._round:
            raise ValueError(f"cannot fast-forward backwards to round {round_number}")
        for stale in range(self._gc_floor, self._round + 1):
            mvc = self.children.get(self.path + ("mvc", stale))
            if mvc is not None:
                mvc.destroy()
            for j in self.config.process_ids:
                vect = self.children.get(self.path + ("vect", stale, j))
                if vect is not None:
                    vect.destroy()
        self._round = round_number
        self._gc_floor = round_number
        self._round_vects.clear()
        self._vect_sent.clear()
        self._mvc_proposed.clear()
        self._sched_cum.clear()
        self._sched_total = 0
        self._position_base = None
        if frontier:
            self._install_frontier(frontier)
            # Payloads picked up while bootstrapping may belong to
            # messages the group already delivered; drop them so they
            # can never be vouched for or delivered again here.
            self._received = {
                msg_id: payload
                for msg_id, payload in self._received.items()
                if not self._is_delivered(msg_id)
            }
        self.fast_forwards += 1
        self._ensure_vect_instances(round_number)
        self._maybe_start_round()

    def absorb_frontier(self, frontier: list) -> None:
        """Merge additional delivered-id knowledge mid-stream.

        Used when a catching-up replica absorbs a checkpoint newer than
        its bootstrap one: identifiers the group delivered meanwhile must
        never be vouched for or re-delivered here.  Watermarks only move
        forward, so absorbing is always safe.
        """
        self._install_frontier(frontier)
        self._received = {
            msg_id: payload
            for msg_id, payload in self._received.items()
            if not self._is_delivered(msg_id)
        }

    def collect_through(self, horizon: int) -> int:
        """Destroy protocol instances for rounds up to *horizon* (clamped
        so the current and previous rounds always survive for stragglers).

        Called by the checkpoint layer once a stable checkpoint covers
        every message those rounds ordered; returns the new GC floor.
        """
        self._collect(min(horizon, self._round - 2))
        return self._gc_floor

    def inject_payload(self, msg_id: MsgId, payload: Any) -> bool:
        """Hand this instance a payload fetched out-of-band.

        A replica that joined mid-stream can hold agreed identifiers
        whose reliable broadcast completed while it was down; the
        recovery layer fetches the payload from peers and unblocks the
        delivery queue here.  Only identifiers that are scheduled,
        undelivered and still missing are accepted.
        """
        if (
            msg_id not in self._scheduled
            or msg_id in self._received
            or self._is_delivered(msg_id)
        ):
            return False
        self._received[msg_id] = payload
        self.payloads_injected += 1
        self._drain_delivery_queue()
        return True

    def stalled_ids(self, limit: int = 32) -> list[MsgId]:
        """Scheduled identifiers whose payload has not arrived, in
        delivery order (the head of the list blocks everything else)."""
        out: list[MsgId] = []
        for msg_id in self._delivery_queue:
            if msg_id not in self._received:
                out.append(msg_id)
                if len(out) >= limit:
                    break
        return out

    def resume_broadcast_ids(self, next_rbid: int) -> None:
        """Never assign broadcast ids below *next_rbid*.

        A restarted replica must not reuse rbids from its previous
        incarnation: peers treat delivered identifiers as duplicates,
        so a reused id would be silently ignored group-wide.  The
        recovery layer learns the highest id peers have seen from us
        and resumes above it.
        """
        if next_rbid > self._next_rbid:
            self._next_rbid = next_rbid

    def max_rbid_from(self, sender: int) -> int:
        """Highest rbid this instance has seen attributed to *sender*
        (delivered, received or scheduled); ``-1`` if none."""
        best = self._frontier.get(sender, -1)
        for source in (self._frontier_sparse, self._received, self._scheduled):
            for s, r in source:
                if s == sender and r > best:
                    best = r
        return best

    def note_delivered_external(self, msg_id: MsgId) -> bool:
        """Mark *msg_id* delivered outside this instance (applied from a
        transferred log suffix).  Refused for identifiers this instance
        has scheduled itself -- those must flow through the queue."""
        if msg_id in self._scheduled:
            return False
        self._mark_delivered(msg_id)
        self._received.pop(msg_id, None)
        return True

    # -- instance management -------------------------------------------------------------

    def _ensure_vect_instances(self, round_number: int) -> None:
        for j in self.config.process_ids:
            path = self.path + ("vect", round_number, j)
            if path not in self.children:
                self.make_child(
                    "rb", ("vect", round_number, j), sender=j, purpose=PURPOSE_AGREEMENT
                )

    def accept_orphan(self, mbuf: Mbuf) -> "bool | object":
        """Create receiver-side instances on demand (dynamic demux).

        AB_MSG identifiers are not knowable in advance, so the reliable
        broadcast instance for a peer's ``(sender, rbid)`` is created on
        first contact -- subject to a per-sender window that stops a
        corrupt process from minting unbounded instances.

        Frames addressed to *retired* state -- an already-delivered
        message id, or agreement machinery (``vect``/``mvc`` subtrees)
        of a round below the GC floor -- are reported
        :data:`~repro.core.stack.ORPHAN_STALE`: a laggard catching up
        after the group checkpointed past it re-sends them freely, and
        nothing will ever drain them from the out-of-context table.
        """
        suffix = mbuf.path[len(self.path) :]
        if len(suffix) == 3 and suffix[0] == "msg":
            _, sender, rbid = suffix
            if (
                isinstance(sender, int)
                and isinstance(rbid, int)
                and sender in self.config.process_ids
                and rbid >= 0
            ):
                if self._is_delivered((sender, rbid)):
                    return ORPHAN_STALE
                if self._open_msg_instances.get(sender, 0) >= self._msg_window:
                    # Attribution rule: score only when the flooder is
                    # speaking for itself -- an honest process echoing a
                    # corrupt sender's broadcast must never be blamed.
                    if mbuf.src == sender:
                        self.stack.report_misbehavior(sender, "msg-window")
                    return False
                self._open_msg_instances[sender] = (
                    self._open_msg_instances.get(sender, 0) + 1
                )
                self.make_child(
                    "rb", ("msg", sender, rbid), sender=sender, purpose=PURPOSE_PAYLOAD
                )
                return True
            return False
        if len(suffix) >= 2 and suffix[0] in ("vect", "mvc") and isinstance(suffix[1], int):
            round_number = suffix[1]
            if round_number < self._gc_floor:
                return ORPHAN_STALE
            if (
                suffix[0] == "vect"
                and len(suffix) == 3
                and round_number == self._round
                and suffix[2] in self.config.process_ids
            ):
                self._ensure_vect_instances(round_number)
                return True
        return False

    # -- receiving ---------------------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        raise ProtocolViolationError("atomic broadcast accepts no direct frames")

    def child_event(self, child: ControlBlock, event: Any) -> None:
        if self.destroyed:
            return
        kind = child.path[len(self.path)]
        if kind == "msg":
            sender, rbid = child.path[-2:]
            msg_id = (sender, rbid)
            if msg_id not in self._received and not self._is_delivered(msg_id):
                self._received[msg_id] = event
                self._drain_delivery_queue()
                self._maybe_start_round()
        elif kind == "vect":
            round_number, sender = child.path[-2:]
            self._on_vect(round_number, sender, event)
        elif kind == "mvc":
            self._on_agreement(child.path[-1], event)

    def _on_vect(self, round_number: int, sender: int, payload: Any) -> None:
        ids = self._parse_id_list(payload)
        if ids is None:
            return  # malformed vector from a corrupt process
        vects = self._round_vects.setdefault(round_number, {})
        if sender in vects:
            return
        vects[sender] = ids
        self._maybe_start_round()
        self._maybe_propose(round_number)

    def _parse_id_list(self, payload: Any) -> list[MsgId] | None:
        if not isinstance(payload, list) or len(payload) > MAX_VECT_IDS:
            return None
        ids: list[MsgId] = []
        seen: set[MsgId] = set()
        for entry in payload:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], int)
                or entry[0] not in self.config.process_ids
                or entry[1] < 0
            ):
                return None
            msg_id = (entry[0], entry[1])
            if msg_id in seen:
                return None
            seen.add(msg_id)
            ids.append(msg_id)
        return ids

    # -- the agreement task -------------------------------------------------------------------

    def _pending_ids(self) -> list[MsgId]:
        # A fast-forwarded instance that has not yet learned its position
        # anchor holds stale knowledge: payloads gathered while it was
        # catching up may already be delivered group-wide.  Until the
        # recovery layer anchors it, it vouches for nothing (peers vouch
        # for genuinely pending messages; f+1 support never needs us).
        if self._position_base is None:
            return []
        return sorted(
            msg_id for msg_id in self._received if msg_id not in self._scheduled
        )

    def _maybe_start_round(self) -> None:
        """Send our AB_VECT for the current round once there is a reason to:
        we hold undelivered messages, or a peer opened the round."""
        round_number = self._round
        if round_number in self._vect_sent:
            return
        pending = self._pending_ids()
        if not pending and not self._round_vects.get(round_number):
            return
        self._vect_sent.add(round_number)
        self._ensure_vect_instances(round_number)
        rb = self.children[self.path + ("vect", round_number, self.me)]
        rb.broadcast([[s, r] for s, r in pending])  # type: ignore[attr-defined]
        self._maybe_propose(round_number)

    def _maybe_propose(self, round_number: int) -> None:
        if (
            round_number != self._round
            or round_number in self._mvc_proposed
            or round_number not in self._vect_sent
        ):
            return
        vects = self._round_vects.get(round_number, {})
        if len(vects) < self.config.wait_quorum:
            return
        self._mvc_proposed.add(round_number)
        support: dict[MsgId, int] = {}
        for ids in vects.values():
            for msg_id in ids:
                support[msg_id] = support.get(msg_id, 0) + 1
        threshold = self.config.f + 1
        chosen = sorted(
            msg_id
            for msg_id, votes in support.items()
            if votes >= threshold and msg_id not in self._scheduled
        )
        self.agreements_started += 1
        if self.stack.metrics.enabled:
            self._agreement_started_at[round_number] = self.stack.clock()
        mvc = self.make_child("mvc", ("mvc", round_number), purpose=PURPOSE_AGREEMENT)
        mvc.propose([[s, r] for s, r in chosen])  # type: ignore[attr-defined]

    def _on_agreement(self, round_number: int, decision: Any) -> None:
        if round_number != self._round:
            return
        ids = self._parse_id_list(decision) if decision is not None else None
        if ids:
            for msg_id in sorted(ids):
                # Skip identifiers already scheduled *or* already known
                # delivered: on a never-recovered instance delivered is a
                # subset of scheduled, but a fast-forwarded instance knows
                # deliveries (from its transferred frontier) it never
                # scheduled itself -- re-delivering those would diverge
                # from peers, which skip them via their scheduled sets.
                if msg_id not in self._scheduled and not self._is_delivered(msg_id):
                    self._scheduled.add(msg_id)
                    self._delivery_queue.append(msg_id)
                    self._sched_total += 1
        else:
            self.agreements_empty += 1
        started = self._agreement_started_at.pop(round_number, None)
        if started is not None and self.stack.metrics.enabled:
            self.stack.metrics.histogram(
                "ritas_ab_agreement_seconds",
                outcome="empty" if not ids else "batch",
            ).observe(self.stack.clock() - started)
        self._sched_cum[round_number] = self._sched_total
        self._round += 1
        self._ensure_vect_instances(self._round)
        self._drain_delivery_queue()
        if self._gc_rounds is not None:
            self._collect(self._round - 1 - self._gc_rounds)
        self._maybe_start_round()

    def _drain_delivery_queue(self) -> None:
        """Deliver scheduled messages whose payload has arrived, strictly
        in queue order (total order requires the head to block the rest)."""
        while self._delivery_queue:
            msg_id = self._delivery_queue[0]
            if msg_id not in self._received:
                return
            self._delivery_queue.popleft()
            payload = self._received[msg_id]
            submitted = self._submit_times.pop(msg_id, None)
            if submitted is not None and self.stack.metrics.enabled:
                self.stack.metrics.histogram(
                    "ritas_ab_delivery_latency_seconds"
                ).observe(self.stack.clock() - submitted)
            self._mark_delivered(msg_id)
            if self._gc_enabled:
                del self._received[msg_id]
                self._collectable.append((self._round, msg_id))
            delivery = AbDelivery(
                sender=msg_id[0],
                rbid=msg_id[1],
                payload=payload,
                sequence=self._delivered_count,
            )
            self._delivered_count += 1
            if self.order_log is not None:
                self.order_log.append(
                    (msg_id[0], msg_id[1], hash_bytes(encode_value_cached(payload)))
                )
            self.deliver(delivery)

    def _collect(self, horizon: int) -> None:
        """Destroy protocol instances for rounds at or before *horizon*."""
        if horizon < 0:
            return
        for round_number in [r for r in self._round_vects if r <= horizon]:
            del self._round_vects[round_number]
        self._vect_sent = {r for r in self._vect_sent if r > horizon}
        self._mvc_proposed = {r for r in self._mvc_proposed if r > horizon}
        # Keep position entries for one extra window so state-transfer
        # responses can still anchor recent round boundaries.
        position_horizon = horizon - 8
        for round_number in [r for r in self._sched_cum if r <= position_horizon]:
            del self._sched_cum[round_number]
        for round_number in range(self._gc_floor, horizon + 1):
            mvc = self.children.get(self.path + ("mvc", round_number))
            if mvc is not None:
                mvc.destroy()
            for j in self.config.process_ids:
                vect = self.children.get(self.path + ("vect", round_number, j))
                if vect is not None:
                    vect.destroy()
        self._gc_floor = max(self._gc_floor, horizon + 1)
        while self._collectable and self._collectable[0][0] <= horizon:
            _, msg_id = self._collectable.popleft()
            rb = self.children.get(self.path + ("msg",) + msg_id)
            if rb is not None:
                rb.destroy()
                sender = msg_id[0]
                if self._open_msg_instances.get(sender, 0) > 0:
                    self._open_msg_instances[sender] -= 1
