"""Statistics collected by a running stack.

The evaluation section of the paper reports three kinds of quantities
that must be observable from outside the protocols:

- frame counts and byte counts (network load, IPSec overhead);
- *broadcast* counts split by purpose, for Figure 7's "relative cost of
  agreement" (agreement broadcasts / total broadcasts);
- round counts for the consensus layers, to check the "always one
  round" observations of Section 4.3.

Every stack owns one :class:`StackStats`; protocol instances report into
it through narrow methods so tests can assert on exact counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields


def _accumulate_fields(target, source) -> None:
    """Merge *source*'s counters into *target* by field introspection:
    ``int`` fields add, ``Counter`` fields update, anything else (per-
    instance fields like ``rejoin_time_s``) is left alone.  A counter
    added to the dataclass is merged automatically -- the hand-maintained
    name lists this replaces silently dropped new fields."""
    for f in fields(target):
        mine = getattr(target, f.name)
        theirs = getattr(source, f.name)
        if isinstance(mine, Counter):
            mine.update(theirs)
        elif isinstance(mine, bool):
            continue  # flags are state, not accumulable counts
        elif isinstance(mine, int):
            setattr(target, f.name, mine + theirs)


#: Purpose tag for broadcasts that carry application payload
#: (atomic-broadcast AB_MSG transmissions).
PURPOSE_PAYLOAD = "payload"
#: Purpose tag for broadcasts executed on behalf of an agreement
#: (AB_VECT transmissions and everything inside a consensus subtree).
PURPOSE_AGREEMENT = "agreement"
#: Default purpose for instances created directly by the application.
PURPOSE_APP = "app"


@dataclass
class StackStats:
    """Mutable counters for one process's stack."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    # Frame coalescing (batching fast path).  frames_sent/received keep
    # counting *logical* protocol frames, so they stay symmetric across
    # the group whether or not frames ride inside batch containers.
    batches_sent: int = 0
    frames_coalesced: int = 0
    batches_received: int = 0
    frames_decoalesced: int = 0
    header_bytes_saved: int = 0
    dropped: Counter = field(default_factory=Counter)
    broadcasts: Counter = field(default_factory=Counter)
    consensus_rounds: Counter = field(default_factory=Counter)
    decisions: Counter = field(default_factory=Counter)
    ooc_stored: int = 0
    ooc_drained: int = 0
    ooc_evicted: int = 0
    ooc_purged: int = 0
    # Flood defense (misbehavior ledger, quarantine, quotas, shedding).
    ooc_quota_evictions: int = 0
    misbehavior_reports: int = 0
    quarantine_entries: int = 0
    frames_quarantine_dropped: int = 0
    sends_shed: int = 0
    backpressure_signals: int = 0

    # -- recording -----------------------------------------------------------

    def record_send(self, nbytes: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += nbytes

    def record_receive(self, nbytes: int) -> None:
        self.frames_received += 1
        self.bytes_received += nbytes

    def record_drop(self, reason: str) -> None:
        self.dropped[reason] += 1

    def record_batch_sent(self, frames: int, header_bytes_saved: int) -> None:
        """Count one outgoing batch coalescing *frames* frames."""
        self.batches_sent += 1
        self.frames_coalesced += frames
        self.header_bytes_saved += header_bytes_saved

    def record_batch_received(self, frames: int) -> None:
        """Count one incoming batch carrying *frames* frames."""
        self.batches_received += 1
        self.frames_decoalesced += frames

    def record_broadcast(self, kind: str, purpose: str) -> None:
        """Count one locally initiated broadcast of *kind* ('rb' or 'eb')."""
        self.broadcasts[(kind, purpose)] += 1

    def record_decision(self, protocol: str, rounds: int) -> None:
        """Record that a consensus instance decided after *rounds* rounds."""
        self.decisions[protocol] += 1
        self.consensus_rounds[(protocol, rounds)] += 1

    # -- derived quantities (Figure 7) ----------------------------------------

    def total_broadcasts(self) -> int:
        return sum(self.broadcasts.values())

    def broadcasts_for(self, purpose: str) -> int:
        return sum(count for (_, p), count in self.broadcasts.items() if p == purpose)

    def agreement_cost(self) -> float:
        """Fraction of all broadcasts executed for agreement (Figure 7)."""
        total = self.total_broadcasts()
        if total == 0:
            return 0.0
        return self.broadcasts_for(PURPOSE_AGREEMENT) / total

    def max_rounds(self, protocol: str) -> int:
        """Largest round count any instance of *protocol* needed."""
        rounds = [r for (p, r) in self.consensus_rounds if p == protocol]
        return max(rounds, default=0)

    def merge(self, other: "StackStats") -> None:
        """Accumulate *other* into this object (for group-wide totals)."""
        _accumulate_fields(self, other)


@dataclass
class RecoveryStats:
    """Counters of the checkpoint / state-transfer subsystem
    (:mod:`repro.recovery`), one per :class:`~repro.recovery.RecoveryManager`.

    The benchmark comparisons (time-to-rejoin, bytes transferred vs.
    full replay) read these; tests assert on them exactly.
    """

    # -- checkpoint duty -------------------------------------------------------
    checkpoints_taken: int = 0
    checkpoints_stable: int = 0
    attestations_sent: int = 0
    attestations_accepted: int = 0
    attestations_rejected: int = 0
    digest_divergence: int = 0
    log_truncations: int = 0
    gc_advances: int = 0

    # -- serving peers ---------------------------------------------------------
    state_requests_served: int = 0
    payloads_served: int = 0
    state_bytes_sent: int = 0

    # -- recovering ------------------------------------------------------------
    state_requests_sent: int = 0
    state_responses_received: int = 0
    certificates_rejected: int = 0
    snapshots_installed: int = 0
    suffix_entries_applied: int = 0
    buffered_applied: int = 0
    payload_requests_sent: int = 0
    payloads_injected: int = 0
    state_bytes_received: int = 0
    rejoin_time_s: float | None = None

    def merge(self, other: "RecoveryStats") -> None:
        """Accumulate *other* into this object (for group-wide totals).

        ``rejoin_time_s`` is per-replica, not a sum, and stays untouched.
        """
        _accumulate_fields(self, other)
