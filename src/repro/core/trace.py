"""Structured protocol tracing.

Debugging a distributed protocol from interleaved logs is miserable;
this module gives every stack an optional :class:`Tracer` that records
*structured* events (who, which instance, what happened, when) into a
bounded ring buffer, with filters and a renderer.

Events are cheap when tracing is off: the stack's default tracer is
:data:`NULL_TRACER`, whose ``emit`` is a no-op, and callers use
``stack.tracer.emit(...)`` without building strings.

Typical use::

    sim = LanSimulation(n=4, seed=1)
    tracer = Tracer(capacity=10_000, clock=lambda: sim.now)
    sim.stacks[0].tracer = tracer
    ... run ...
    for event in tracer.select(kind="decide"):
        print(event.render())
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.wire import Path


def _json_safe(value: Any) -> Any:
    """Best-effort JSON projection of an event detail value (digests are
    bytes; anything exotic falls back to ``repr``)."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)

#: Event kinds emitted by the stack and protocols.
KIND_SEND = "send"
KIND_RECEIVE = "receive"
KIND_BROADCAST = "broadcast"
KIND_DELIVER = "deliver"
KIND_DECIDE = "decide"
KIND_ROUND = "round"
KIND_DROP = "drop"
KIND_OOC = "ooc"
KIND_CREATE = "create"
KIND_DESTROY = "destroy"
KIND_QUOTA = "quota"
KIND_QUARANTINE = "quarantine"
KIND_SHED = "shed"
KIND_BACKPRESSURE = "backpressure"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured protocol event."""

    time: float
    process: int
    kind: str
    path: Path
    detail: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """One human-readable line."""
        path = "/".join(str(c) for c in self.path) or "-"
        detail = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.time * 1e3:10.3f}ms p{self.process}] {self.kind:<10} {path} {detail}"


class Tracer:
    """Bounded in-memory recorder of :class:`TraceEvent`.

    Args:
        capacity: ring-buffer size; the oldest events fall off.
        clock: time source (defaults to 0.0; runtimes inject theirs).
        kinds: when given, only these event kinds are recorded.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 100_000,
        clock: Callable[[], float] | None = None,
        kinds: set[str] | None = None,
    ):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._kinds = kinds
        self.emitted = 0
        #: Incarnation of the stack this tracer is attached to; stamped
        #: into every event's detail once nonzero, so post-restart events
        #: are distinguishable from the first life's.
        self.incarnation = 0

    def rebind(
        self,
        clock: Callable[[], float] | None = None,
        incarnation: int | None = None,
    ) -> None:
        """Re-attach this tracer to a new runtime context.

        A tracer created before a process restart keeps the dead
        incarnation's clock closure; the runtime calls this from
        ``restart_process`` so post-restart events carry the right
        simulated time and incarnation number.
        """
        if clock is not None:
            self._clock = clock
        if incarnation is not None:
            self.incarnation = incarnation

    def emit(self, process: int, kind: str, path: Path, **detail: Any) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        self.emitted += 1
        if self.incarnation:
            detail["incarnation"] = self.incarnation
        self._events.append(
            TraceEvent(
                time=self._clock(),
                process=process,
                kind=kind,
                path=tuple(path),
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped_events(self) -> int:
        """Recorded events that have since fallen off the ring buffer
        (everything :attr:`emitted` that is no longer retrievable)."""
        return self.emitted - len(self._events)

    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def select(
        self,
        kind: str | None = None,
        process: int | None = None,
        path_prefix: Path | None = None,
    ) -> Iterator[TraceEvent]:
        """Filter recorded events.

        Iterates over a snapshot, so a consumer may emit new events (or
        clear the tracer) mid-iteration -- lazily walking the live deque
        would raise ``RuntimeError: deque mutated during iteration`` the
        moment a handler inside the loop traced anything.
        """
        for event in list(self._events):
            if kind is not None and event.kind != kind:
                continue
            if process is not None and event.process != process:
                continue
            if path_prefix is not None and event.path[: len(path_prefix)] != tuple(
                path_prefix
            ):
                continue
            yield event

    def render(self, **filters: Any) -> str:
        return "\n".join(event.render() for event in self.select(**filters))

    def to_records(self) -> list[dict[str, Any]]:
        """JSON-ready export: one meta record (emitted / retained /
        :attr:`dropped_events`, so a reader knows whether the ring
        overflowed) followed by one record per retained event."""
        records: list[dict[str, Any]] = [
            {
                "record": "meta",
                "emitted": self.emitted,
                "retained": len(self._events),
                "dropped_events": self.dropped_events,
                "capacity": self._events.maxlen,
                "incarnation": self.incarnation,
            }
        ]
        for event in list(self._events):
            records.append(
                {
                    "record": "event",
                    "time": event.time,
                    "process": event.process,
                    "kind": event.kind,
                    "path": [_json_safe(c) for c in event.path],
                    "detail": {k: _json_safe(v) for k, v in event.detail.items()},
                }
            )
        return records

    def write_jsonl(self, out) -> None:
        """Write :meth:`to_records` to file object *out*, one JSON
        document per line."""
        for record in self.to_records():
            out.write(json.dumps(record, separators=(",", ":")) + "\n")

    def clear(self) -> None:
        self._events.clear()


class _NullTracer:
    """Tracing disabled: emit is a no-op (the stack default)."""

    enabled = False

    def rebind(
        self,
        clock: Callable[[], float] | None = None,
        incarnation: int | None = None,
    ) -> None:
        pass

    def emit(self, process: int, kind: str, path: Path, **detail: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    @property
    def dropped_events(self) -> int:
        return 0

    def events(self) -> list[TraceEvent]:
        return []

    def to_records(self) -> list[dict[str, Any]]:
        return []

    def write_jsonl(self, out) -> None:
        pass

    def select(self, **filters: Any) -> Iterator[TraceEvent]:
        return iter(())

    def render(self, **filters: Any) -> str:
        return ""

    def clear(self) -> None:
        pass


#: Shared inert tracer instance.
NULL_TRACER = _NullTracer()
