"""Bracha's randomized binary consensus (Section 2.4 of the paper).

Correct processes propose bits and all decide the same bit; if every
correct process proposes *v*, the decision is *v*.  The protocol is the
single randomized layer of the stack: termination holds with
probability 1, needing in theory ``2^(n-f)`` expected steps but, as the
paper measures, a single 3-step round under realistic conditions.

Each round has three steps; every step's value is disseminated with one
*reliable broadcast* per process:

1. broadcast the current value ``v_i``; on ``n - f`` valid values,
   ``v_i`` becomes their majority;
2. broadcast ``v_i``; on ``n - f`` valid values, ``v_i`` becomes the
   strict-majority value, or ⊥ when there is none;
3. broadcast ``v_i``; on ``n - f`` valid values:
   **decide** *v* on ``2f + 1`` equal values ``v != ⊥``; else *adopt*
   *v* on ``f + 1`` equal values; else set ``v_i`` to a random bit --
   and begin the next round.

**Message validation** (the optimization Section 2.4 details): a value
received at step *k > 1* is only *accepted* once it is congruent with
some ``n - f``-subset of the values accepted at step *k - 1* -- i.e.
some correct process following the protocol could have derived it.
Values that can never be justified (a corrupt process's fabrications)
wait forever in a pending queue and are effectively ignored.

A process that decides keeps participating for one extra round so that
every other correct process can decide too (all of them do so at most
one round later), then goes quiet.

This class is the default (``"bracha"``) entry of the pluggable-engine
registry (:mod:`repro.core.bc_engine`); the Crain 2020 engine lives in
:mod:`repro.core.crain_consensus`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.core.bc_engine import BCEngine, register_bc_engine
from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.trace import KIND_ROUND
from repro.core.wire import Path

STEPS = (1, 2, 3)


def majority_value(counts: Counter) -> int:
    """Step-1 majority with the deterministic 0-on-tie rule.

    Ties are possible when ``n - f`` is even; every correct process
    breaks them the same way so that the value remains justifiable.
    """
    return 1 if counts[1] > counts[0] else 0


def strict_majority_value(counts: Counter, n: int, bar: int | None = None) -> int | None:
    """Step-2 rule: the value held by more than half of *all n* processes'
    step-2 broadcasts, or ``None`` (⊥) when neither bit clears that bar.

    The bar must be ``n/2`` -- not ``(n-f)/2`` -- so that two correct
    processes can never enter step 3 with *different* non-⊥ values: two
    strict majorities of *n* cannot coexist, whereas two disjoint
    majorities of different ``(n-f)``-subsets can.  Step-3 uniqueness is
    what the decide/adopt thresholds' safety rests on.
    """
    if bar is None:
        bar = n // 2 + 1
    if counts[1] >= bar:
        return 1
    if counts[0] >= bar:
        return 0
    return None


@dataclass
class _RoundState:
    """Book-keeping for one 3-step round."""

    accepted: dict[int, dict[int, Any]] = field(
        default_factory=lambda: {1: {}, 2: {}, 3: {}}
    )
    counts: dict[int, Counter] = field(
        default_factory=lambda: {1: Counter(), 2: Counter(), 3: Counter()}
    )
    pending: dict[int, list[tuple[int, Any]]] = field(
        default_factory=lambda: {1: [], 2: [], 3: []}
    )
    triggered: set[int] = field(default_factory=set)
    broadcast_sent: set[int] = field(default_factory=set)


class BinaryConsensus(BCEngine):
    """One binary consensus instance (the paper's Bracha-style rounds)."""

    engine_name = "bracha"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
    ):
        super().__init__(stack, path, parent, purpose)
        self._rounds: dict[int, _RoundState] = {}
        self._halted = False
        # After deciding, participation in the (single) extra round is
        # armed but only triggered by a process that still needs it.
        self._armed_round: int | None = None
        # round -> accepted step-3 counts (0s, 1s, ⊥s) snapshotted the
        # moment the coin was tossed; the invariant checker asserts the
        # coin branch was legal (no f+1 agreement, a full n-f quorum).
        self._coin_rounds: dict[int, tuple[int, int, int]] = {}
        # Metrics bookkeeping (populated only while metrics are enabled):
        # stack-clock time each round and each (round, step) broadcast
        # started, consumed when the round/step completes.
        self._round_started_at: dict[int, float] = {}
        self._step_started_at: dict[tuple[int, int], float] = {}

    def _begin(self, value: int) -> None:
        self._start_round(1, self._step_value(1, 1, value))

    # -- introspection ---------------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["coin_rounds"] = dict(self._coin_rounds)
        return state

    # -- round machinery ---------------------------------------------------------------

    def _round_state(self, round_number: int) -> _RoundState:
        state = self._rounds.get(round_number)
        if state is None:
            state = _RoundState()
            self._rounds[round_number] = state
            for step in STEPS:
                for j in self.config.process_ids:
                    self.make_child("rb", (round_number, step, j), sender=j)
        return state

    def _start_round(self, round_number: int, value: int | None) -> None:
        if self._halted:
            return
        self.rounds_executed = max(self.rounds_executed, round_number)
        if self.stack.metrics.enabled:
            self._round_started_at[round_number] = self.stack.clock()
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(self.me, KIND_ROUND, self.path, round=round_number)
        state = self._round_state(round_number)
        self._broadcast_step(round_number, 1, value, state)

    def _broadcast_step(
        self, round_number: int, step: int, value: int | None, state: _RoundState
    ) -> None:
        if step in state.broadcast_sent:
            return
        state.broadcast_sent.add(step)
        if self.stack.metrics.enabled:
            self._step_started_at[(round_number, step)] = self.stack.clock()
        self._sent_values[(round_number, step)] = value
        rb = self.children.get(self.path + (round_number, step, self.me))
        if rb is None or rb.destroyed:
            return
        rb.broadcast(value)  # type: ignore[attr-defined]

    # -- receiving ----------------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        # All traffic flows through child reliable broadcasts; a frame
        # addressed directly at the consensus block is bogus.
        raise ProtocolViolationError("binary consensus accepts no direct frames")

    def accept_orphan(self, mbuf: Mbuf) -> bool:
        """Join the armed post-decision round when somebody needs it.

        If every correct process decided in round *r*, nobody initiates
        round *r + 1* and its broadcasts never happen -- a significant
        saving, since the common case (the paper's Section 4.3) is a
        unanimous one-round decision.  A process that could not decide
        *does* start round *r + 1*; its frames land here and wake the
        deciders up.
        """
        if self._armed_round is None or self._halted:
            return False
        suffix = mbuf.path[len(self.path) :]
        if len(suffix) != 3 or suffix[0] != self._armed_round:
            return False
        self._join_armed_round()
        return True

    def _join_armed_round(self) -> None:
        round_number = self._armed_round
        if round_number is None:
            return
        self._armed_round = None
        assert self.decision is not None
        self._start_round(round_number, self._step_value(round_number, 1, self.decision))

    def child_event(self, child: ControlBlock, value: Any) -> None:
        if self._halted or self.destroyed:
            return
        round_number, step, sender = child.path[-3:]
        is_bit = type(value) is int and value in (0, 1)
        if not is_bit and not (step == 3 and value is None):
            return  # a corrupt process broadcast an out-of-domain value
        state = self._rounds.get(round_number)
        if state is None:
            return
        state.pending[step].append((sender, value))
        self._drain_pending()

    def _drain_pending(self) -> None:
        """Repeatedly accept any pending value that has become valid.

        Accepting a value at step *k* can validate values queued at step
        *k + 1* (or at step 1 of the next round), so iterate to a fixed
        point, then fire the step triggers.
        """
        progressed = True
        while progressed and not self._halted:
            progressed = False
            for round_number in sorted(self._rounds):
                state = self._rounds[round_number]
                for step in STEPS:
                    still_pending: list[tuple[int, Any]] = []
                    for sender, value in state.pending[step]:
                        if sender in state.accepted[step]:
                            continue  # one value per sender per step
                        if self._is_valid(round_number, step, value):
                            state.accepted[step][sender] = value
                            state.counts[step][value] += 1
                            progressed = True
                        else:
                            still_pending.append((sender, value))
                    state.pending[step] = still_pending
                for step in STEPS:
                    self._maybe_trigger(round_number, step, state)
                    if self._halted:
                        return

    def _strict_majority_bar(self) -> int:
        """The step-2/step-3 strict-majority bar (``n/2 + 1`` over all n).

        A method so tests can deliberately weaken it (e.g. to the unsafe
        ``(n-f)/2 + 1``) and check the invariant layer catches the
        resulting agreement violations.
        """
        return self.config.n // 2 + 1

    # -- validation (the congruence rule) ---------------------------------------------------

    def _is_valid(self, round_number: int, step: int, value: Any) -> bool:
        quorum = self.config.wait_quorum
        if step == 1:
            if round_number == 1:
                return True
            prev = self._rounds.get(round_number - 1)
            if prev is None:
                return False
            counts = prev.counts[3]
            total = sum(counts.values())
            if counts[value] >= self.config.f + 1:
                return True
            # A coin toss justifies any bit, but only if some n-f subset
            # of step-3 values triggers the coin branch (no f+1 agreement).
            coin_pool = (
                min(counts[0], self.config.f)
                + min(counts[1], self.config.f)
                + counts[None]
            )
            return total >= quorum and coin_pool >= quorum
        state = self._rounds[round_number]
        counts = state.counts[step - 1]
        total = counts[0] + counts[1]
        if step == 2:
            # Congruent with a majority (0 wins ties) over some n-f subset
            # of step-1 values.
            half = quorum // 2
            if total < quorum:
                return False
            if value == 1:
                return counts[1] >= half + 1
            return counts[0] >= quorum - half  # ceil(quorum / 2)
        # step == 3: strict majority of *n* (see strict_majority_value), or
        # ⊥ when some n-f subset of step-2 values has no such majority.
        bar = self._strict_majority_bar()
        if value is None:
            return min(counts[0], bar - 1) + min(counts[1], bar - 1) >= quorum
        return total >= quorum and counts[value] >= bar

    # -- step triggers --------------------------------------------------------------------

    def _maybe_trigger(self, round_number: int, step: int, state: _RoundState) -> None:
        if step in state.triggered:
            return
        if len(state.accepted[step]) < self.config.wait_quorum:
            return
        # Steps 2 and 3 only make sense once this process has itself moved
        # through the earlier steps of the round.
        if step > 1 and (step - 1) not in state.triggered:
            return
        if 1 not in state.broadcast_sent:
            return  # round not locally started yet (still catching up)
        state.triggered.add(step)
        metrics = self.stack.metrics
        if metrics.enabled:
            started = self._step_started_at.pop((round_number, step), None)
            if started is not None:
                metrics.histogram(
                    "ritas_bc_step_seconds", step=step
                ).observe(self.stack.clock() - started)
        counts = state.counts[step]
        if step == 1:
            value = self._step_value(round_number, 2, majority_value(counts))
            self._broadcast_step(round_number, 2, value, state)
        elif step == 2:
            value = self._step_value(
                round_number,
                3,
                strict_majority_value(counts, self.config.n, self._strict_majority_bar()),
            )
            self._broadcast_step(round_number, 3, value, state)
        else:
            self._finish_round(round_number, counts)

    def _finish_round(self, round_number: int, counts: Counter) -> None:
        decide_bar = self.config.ready_quorum  # 2f + 1
        adopt_bar = self.config.f + 1
        metrics = self.stack.metrics
        if metrics.enabled:
            started = self._round_started_at.pop(round_number, None)
            if started is not None:
                metrics.histogram("ritas_bc_round_seconds").observe(
                    self.stack.clock() - started
                )
        next_value: int
        if counts[1] >= decide_bar or counts[0] >= decide_bar:
            decided_value = 1 if counts[1] >= decide_bar else 0
            next_value = decided_value
            self._conclude(decided_value, round_number)
        elif counts[1] >= adopt_bar:
            next_value = 1
        elif counts[0] >= adopt_bar:
            next_value = 0
        else:
            self._coin_rounds[round_number] = (counts[0], counts[1], counts[None])
            next_value = self.toss(round_number)
        if self.decided and round_number > (self.decision_round or 0):
            # The post-decision round is complete; everyone who needed our
            # help to decide has had it.
            self._halted = True
            return
        if self.decided and round_number == self.decision_round:
            # Arm -- but do not flood -- the extra round: it only runs if
            # some process that failed to decide this round initiates it
            # (see accept_orphan).  Frames for that round may already be
            # parked out-of-context, in which case join right away.
            self._armed_round = round_number + 1
            if self.stack.ooc_has_prefix(self.path + (round_number + 1,)):
                self._join_armed_round()
            return
        self._start_round(
            round_number + 1, self._step_value(round_number + 1, 1, next_value)
        )


register_bc_engine("bracha", BinaryConsensus)
