"""Out-of-context (OOC) message storage.

Section 3.4 of the paper: the stack is asynchronous, so correct messages
can arrive addressed to protocol instances whose control block does not
exist yet.  Such messages are parked in a hash table and delivered when
the instance is created; when an instance is destroyed, its pending OOC
messages are purged so nothing lingers forever.

The table is bounded (a corrupt process could otherwise exhaust memory
by flooding frames for instances that will never exist).  The seed
implementation evicted globally oldest-first, which let one flooding
peer push *honest* parked messages out and stall correct instances.
Eviction is now **per-sender fair**:

- each sender may be held to a quota (``peer_quota``); storing past it
  evicts that sender's own oldest entry, never anyone else's;
- when the table is full overall, the victim is the oldest entry of the
  sender currently holding the *most* entries -- under a flood that is
  the flooder, so honest parked messages survive.

With one sender (or no contention) this degenerates to the seed's plain
FIFO.  Eviction victims are reported through :attr:`on_evict` so the
stack can score the offending peer in its misbehavior ledger.

Prefix operations (``has_prefix``/``drain_prefix``/``purge_prefix``) are
O(matching) via a prefix index -- every stored path is registered under
each of its prefixes -- instead of the seed's O(table) linear scans.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Callable

from repro.core.mbuf import Mbuf
from repro.core.wire import Path

DEFAULT_CAPACITY = 65536

#: Eviction reasons handed to :attr:`OocTable.on_evict`.
EVICT_QUOTA = "quota"
EVICT_CAPACITY = "capacity"


class OocTable:
    """Bounded store of messages awaiting their protocol instance.

    Args:
        capacity: total entries across all senders.
        peer_quota: most entries any one sender may hold (0 = no
            per-sender quota; only the global capacity bounds it).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, peer_quota: int = 0):
        if capacity < 1:
            raise ValueError("OOC table capacity must be positive")
        if peer_quota < 0:
            raise ValueError("OOC peer quota must be >= 0")
        self._capacity = capacity
        self._peer_quota = peer_quota
        self._seq = 0
        # path -> {seq: mbuf}; dict preserves insertion (FIFO) order and
        # allows O(1) removal of an arbitrary seq during fair eviction.
        self._buckets: dict[Path, dict[int, Mbuf]] = {}
        # Every prefix of every stored path -> the stored paths under it.
        self._prefix_index: dict[Path, set[Path]] = {}
        # sender -> seq -> path, insertion-ordered: the sender's own FIFO.
        self._by_sender: dict[int, OrderedDict[int, Path]] = {}
        self._size = 0
        self.bytes = 0
        self.peak_size = 0
        self.peak_bytes = 0
        self.evictions = 0
        self.quota_evictions = 0
        self.evictions_by_src: Counter = Counter()
        #: Optional hook ``(mbuf, reason)`` called for every eviction.
        self.on_evict: Callable[[Mbuf, str], None] | None = None

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def peer_quota(self) -> int:
        return self._peer_quota

    def pending_of(self, src: int) -> int:
        """Entries currently parked on behalf of sender *src*."""
        return len(self._by_sender.get(src, ()))

    def pending_by_sender(self) -> dict[int, int]:
        return {src: len(entries) for src, entries in self._by_sender.items() if entries}

    def snapshot(self) -> dict[str, int]:
        """Point-in-time depth/accounting view for the metrics layer
        (:meth:`repro.core.stack.Stack.sample_gauges`) and tests."""
        return {
            "pending": self._size,
            "bytes": self.bytes,
            "peak_pending": self.peak_size,
            "peak_bytes": self.peak_bytes,
            "evictions": self.evictions,
            "quota_evictions": self.quota_evictions,
        }

    # -- storing / eviction ----------------------------------------------------

    def store(self, mbuf: Mbuf) -> None:
        """Park *mbuf* until an instance for its path appears."""
        src = mbuf.src
        if self._peer_quota:
            while self.pending_of(src) >= self._peer_quota:
                self._evict_from(src, EVICT_QUOTA)
        while self._size >= self._capacity:
            self._evict_from(self._fattest_sender(), EVICT_CAPACITY)
        seq = self._seq
        self._seq += 1
        bucket = self._buckets.get(mbuf.path)
        if bucket is None:
            bucket = {}
            self._buckets[mbuf.path] = bucket
            self._index_add(mbuf.path)
        bucket[seq] = mbuf
        self._by_sender.setdefault(src, OrderedDict())[seq] = mbuf.path
        self._size += 1
        self.bytes += mbuf.wire_size
        if self._size > self.peak_size:
            self.peak_size = self._size
        if self.bytes > self.peak_bytes:
            self.peak_bytes = self.bytes

    def _fattest_sender(self) -> int:
        """The sender holding the most entries; ties go to the one whose
        oldest entry is oldest (so a full table of equals is plain FIFO)."""
        best_src = -1
        best_count = -1
        best_seq = -1
        for src, entries in self._by_sender.items():
            if not entries:
                continue
            count = len(entries)
            oldest = next(iter(entries))
            if count > best_count or (count == best_count and oldest < best_seq):
                best_src, best_count, best_seq = src, count, oldest
        return best_src

    def _evict_from(self, src: int, reason: str) -> None:
        entries = self._by_sender[src]
        seq, path = entries.popitem(last=False)
        if not entries:
            del self._by_sender[src]
        bucket = self._buckets[path]
        mbuf = bucket.pop(seq)
        if not bucket:
            del self._buckets[path]
            self._index_remove(path)
        self._size -= 1
        self.bytes -= mbuf.wire_size
        self.evictions += 1
        if reason == EVICT_QUOTA:
            self.quota_evictions += 1
        self.evictions_by_src[src] += 1
        if self.on_evict is not None:
            self.on_evict(mbuf, reason)

    # -- prefix index -----------------------------------------------------------

    def _index_add(self, path: Path) -> None:
        for depth in range(len(path) + 1):
            self._prefix_index.setdefault(path[:depth], set()).add(path)

    def _index_remove(self, path: Path) -> None:
        for depth in range(len(path) + 1):
            prefix = path[:depth]
            paths = self._prefix_index.get(prefix)
            if paths is not None:
                paths.discard(path)
                if not paths:
                    del self._prefix_index[prefix]

    def has_prefix(self, prefix: Path) -> bool:
        """True if any parked message's path starts with *prefix*."""
        return prefix in self._prefix_index

    def drain_prefix(self, prefix: Path) -> list[Mbuf]:
        """Remove and return all messages whose path starts with *prefix*,
        in arrival order.

        Called when an instance registers: messages addressed to it (or to
        descendants it may create) are re-routed through the stack.
        """
        paths = self._prefix_index.get(prefix)
        if not paths:
            return []
        drained: list[tuple[int, Mbuf]] = []
        for path in list(paths):
            bucket = self._buckets.pop(path)
            self._index_remove(path)
            for seq, mbuf in bucket.items():
                drained.append((seq, mbuf))
                entries = self._by_sender.get(mbuf.src)
                if entries is not None:
                    entries.pop(seq, None)
                    if not entries:
                        del self._by_sender[mbuf.src]
            self._size -= len(bucket)
            self.bytes -= sum(m.wire_size for m in bucket.values())
        drained.sort(key=lambda item: item[0])
        return [mbuf for _, mbuf in drained]

    def purge_prefix(self, prefix: Path) -> int:
        """Drop all messages under *prefix*; returns how many were dropped.

        Called when an instance is destroyed (Section 3.4: "upon the
        destruction of a protocol, the hash table is checked and all the
        relevant messages are deleted").
        """
        return len(self.drain_prefix(prefix))

    def pending_paths(self) -> list[Path]:
        """Paths with parked messages (test/diagnostic helper)."""
        return list(self._buckets)

    # -- self-validation ---------------------------------------------------------

    def check_consistency(self) -> None:
        """Assert every internal index agrees with the buckets.

        Checks that the size and byte counters match the stored entries,
        that the per-sender FIFOs reference exactly the stored messages,
        and that the prefix index holds precisely the live paths under
        each of their prefixes (no stale entries pointing at evicted
        messages, no empty buckets).  O(entries x path depth) -- meant
        for the invariant checker and tests, not per-message hot paths.
        Raises :class:`AssertionError` describing the first divergence.
        """
        size = 0
        total_bytes = 0
        seqs: set[int] = set()
        for path, bucket in self._buckets.items():
            if not bucket:
                raise AssertionError(f"empty OOC bucket left behind at {path!r}")
            size += len(bucket)
            total_bytes += sum(m.wire_size for m in bucket.values())
            seqs.update(bucket)
        if size != self._size:
            raise AssertionError(f"OOC size counter {self._size} != stored {size}")
        if total_bytes != self.bytes:
            raise AssertionError(f"OOC byte counter {self.bytes} != stored {total_bytes}")
        sender_seqs: set[int] = set()
        for src, entries in self._by_sender.items():
            if not entries:
                raise AssertionError(f"empty per-sender FIFO left behind for src {src}")
            for seq, path in entries.items():
                bucket = self._buckets.get(path)
                if bucket is None or seq not in bucket:
                    raise AssertionError(
                        f"per-sender FIFO of src {src} references missing entry "
                        f"seq={seq} path={path!r}"
                    )
                if bucket[seq].src != src:
                    raise AssertionError(
                        f"entry seq={seq} filed under src {src} but sent by "
                        f"{bucket[seq].src}"
                    )
            sender_seqs.update(entries)
        if sender_seqs != seqs:
            raise AssertionError(
                f"per-sender FIFOs track {len(sender_seqs)} entries, "
                f"buckets hold {len(seqs)}"
            )
        expected_index: dict[Path, set[Path]] = {}
        for path in self._buckets:
            for depth in range(len(path) + 1):
                expected_index.setdefault(path[:depth], set()).add(path)
        if expected_index != self._prefix_index:
            stale = {
                prefix: paths - expected_index.get(prefix, set())
                for prefix, paths in self._prefix_index.items()
                if paths - expected_index.get(prefix, set())
            }
            missing = {
                prefix: paths - self._prefix_index.get(prefix, set())
                for prefix, paths in expected_index.items()
                if paths - self._prefix_index.get(prefix, set())
            }
            raise AssertionError(
                f"OOC prefix index diverged: stale={stale!r} missing={missing!r}"
            )
