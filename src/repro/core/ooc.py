"""Out-of-context (OOC) message storage.

Section 3.4 of the paper: the stack is asynchronous, so correct messages
can arrive addressed to protocol instances whose control block does not
exist yet.  Such messages are parked in a hash table and delivered when
the instance is created; when an instance is destroyed, its pending OOC
messages are purged so nothing lingers forever.

The table is bounded (a corrupt process could otherwise exhaust memory
by flooding frames for instances that will never exist); when full, the
oldest entry is evicted FIFO.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.mbuf import Mbuf
from repro.core.wire import Path

DEFAULT_CAPACITY = 65536


class OocTable:
    """Bounded store of messages awaiting their protocol instance."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("OOC table capacity must be positive")
        self._capacity = capacity
        # Insertion-ordered so eviction is oldest-first.
        self._by_path: OrderedDict[Path, list[Mbuf]] = OrderedDict()
        self._size = 0
        self.evictions = 0

    def __len__(self) -> int:
        return self._size

    def store(self, mbuf: Mbuf) -> None:
        """Park *mbuf* until an instance for its path appears."""
        while self._size >= self._capacity:
            self._evict_oldest()
        bucket = self._by_path.get(mbuf.path)
        if bucket is None:
            bucket = []
            self._by_path[mbuf.path] = bucket
        bucket.append(mbuf)
        self._size += 1

    def _evict_oldest(self) -> None:
        path, bucket = next(iter(self._by_path.items()))
        bucket.pop(0)
        self._size -= 1
        self.evictions += 1
        if not bucket:
            del self._by_path[path]

    def has_prefix(self, prefix: Path) -> bool:
        """True if any parked message's path starts with *prefix*."""
        return any(p[: len(prefix)] == prefix for p in self._by_path)

    def drain_prefix(self, prefix: Path) -> list[Mbuf]:
        """Remove and return all messages whose path starts with *prefix*.

        Called when an instance registers: messages addressed to it (or to
        descendants it may create) are re-routed through the stack.
        """
        matches = [p for p in self._by_path if p[: len(prefix)] == prefix]
        drained: list[Mbuf] = []
        for path in matches:
            bucket = self._by_path.pop(path)
            drained.extend(bucket)
            self._size -= len(bucket)
        return drained

    def purge_prefix(self, prefix: Path) -> int:
        """Drop all messages under *prefix*; returns how many were dropped.

        Called when an instance is destroyed (Section 3.4: "upon the
        destruction of a protocol, the hash table is checked and all the
        relevant messages are deleted").
        """
        return len(self.drain_prefix(prefix))

    def pending_paths(self) -> list[Path]:
        """Paths with parked messages (test/diagnostic helper)."""
        return list(self._by_path)
