"""Pluggable binary-consensus engines.

The stack's randomized layer is *binary consensus*: correct processes
propose bits and all decide the same bit.  The paper's algorithm
(Bracha-style rounds over a local coin, :mod:`repro.core.binary_consensus`)
is one way to provide that contract; the signature-free O(1)-expected-round
algorithms of Crain (arXiv 2002.04393, 2002.08765) are another, with the
same ``t < n/3`` resilience and O(n²) message envelope.  This module
defines the small surface everything above and beside the engine relies
on -- :class:`BCEngine` -- plus a registry that maps the
``GroupConfig.bc_engine`` knob to a concrete class.

The shared surface:

- :meth:`BCEngine.propose` -- domain/double-proposal validation, then
  the engine-specific :meth:`BCEngine._begin`;
- ``decided`` / ``decision`` / ``decision_round`` / ``rounds_executed``
  -- the decision state the upper layers (multi-valued consensus) and
  the eval harness read;
- :meth:`BCEngine._step_value` -- the adversary hook: every value an
  engine emits at a (round, step) flows through it, so the Byzantine
  faultloads of Section 4.2 apply to *any* engine by subclassing;
- :meth:`BCEngine.inspect` -- the invariant checker's view: proposal,
  decision state and ``step_values`` (the per-(round, step) values this
  process broadcast), compared across correct processes;
- :meth:`BCEngine._conclude` -- one-shot decision bookkeeping shared by
  all engines (stats, trace, the per-engine
  ``ritas_bc_rounds_to_decide`` histogram, delivery to the parent).

Engines that *require* a common coin (every correct process must see
the same toss per round -- the Crain decide rule is unsafe over
independent local coins) declare ``requires_common_coin = True``; the
stack refuses to build such an engine over a coin source that does not
advertise ``common = True`` (see :mod:`repro.crypto.coin`).
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ConfigurationError, ProtocolViolationError
from repro.core.stack import ControlBlock, Stack
from repro.core.trace import KIND_DECIDE
from repro.core.wire import Path
from repro.obs.metrics import COUNT_BUCKETS


class BCEngine(ControlBlock):
    """Base class for one binary-consensus instance, any algorithm.

    Subclasses implement :meth:`_begin` (start the protocol with the
    validated proposal) and whatever message flow they need; they report
    decisions through :meth:`_conclude` and expose their per-step
    broadcast values in ``self._sent_values`` for the checker.
    """

    protocol = "bc"
    #: Registry name of the algorithm ("bracha", "crain", ...).
    engine_name = "?"
    #: True when safety needs every correct process to see the *same*
    #: coin value per (instance, round).
    requires_common_coin = False

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
    ):
        super().__init__(stack, path, parent, purpose)
        self.proposal: int | None = None
        self.decided = False
        self.decision: int | None = None
        self.decision_round: int | None = None
        self.rounds_executed = 0
        # (round, step) -> value this process broadcast; the invariant
        # checker reads it to assert step-3 uniqueness across correct
        # processes.  Steps are engine-defined but step 3 must mean "the
        # value this process entered the round's decision step with"
        # (non-⊥ step-3 values of correct processes may never differ).
        self._sent_values: dict[tuple[int, int], int | None] = {}

    # -- public API ---------------------------------------------------------------

    def propose(self, value: int) -> None:
        """Propose a bit and start the protocol."""
        if value not in (0, 1):
            raise ValueError(f"binary consensus proposal must be 0 or 1, got {value!r}")
        if self.proposal is not None:
            raise ProtocolViolationError("already proposed on this instance")
        self.proposal = value
        self._begin(value)

    def _begin(self, value: int) -> None:
        """Engine-specific protocol start (round 1 with *value*)."""
        raise NotImplementedError

    # -- adversary hook -------------------------------------------------------------

    def _step_value(self, round_number: int, step: int, computed: int | None) -> int | None:
        """Value actually broadcast at (round, step).

        Honest processes broadcast what the protocol computed; the
        Byzantine faultloads override this to steer values while staying
        syntactically correct.  Works unchanged for every engine, since
        each routes its emitted values through here.
        """
        return computed

    # -- shared machinery ------------------------------------------------------------

    def toss(self, round_number: int) -> int:
        """This instance's round coin, through the stack's coin source."""
        return self.stack.toss_coin(self.path, round_number)

    def _conclude(self, value: int, round_number: int) -> None:
        """Record the decision (first call wins) and deliver it."""
        if self.decided:
            return
        self.decided = True
        self.decision = value
        self.decision_round = round_number
        self.stack.stats.record_decision(self.protocol, round_number)
        metrics = self.stack.metrics
        if metrics.enabled:
            metrics.histogram(
                "ritas_bc_rounds_to_decide",
                buckets=COUNT_BUCKETS,
                engine=self.engine_name,
            ).observe(round_number)
        if self.stack.tracer.enabled:
            self.stack.tracer.emit(
                self.me, KIND_DECIDE, self.path, value=value, round=round_number
            )
        self.deliver(value)

    # -- introspection ---------------------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        state = super().inspect()
        state["engine"] = self.engine_name
        state["proposal"] = self.proposal
        state["decided"] = self.decided
        state["decision"] = self.decision
        state["decision_round"] = self.decision_round
        state["step_values"] = dict(self._sent_values)
        return state


# -- registry ---------------------------------------------------------------------

#: Engine name -> class.  Populated by the engine modules at import; use
#: :func:`register_bc_engine` to add one.
BC_ENGINES: dict[str, type[BCEngine]] = {}


def register_bc_engine(name: str, engine: type[BCEngine]) -> type[BCEngine]:
    """Register *engine* under *name* (the ``GroupConfig.bc_engine`` value)."""
    BC_ENGINES[name] = engine
    return engine


def _load_builtin_engines() -> None:
    # The engine modules register themselves at import; imported lazily
    # because they import this module (and the stack) in turn.
    import repro.core.binary_consensus  # noqa: F401
    import repro.core.crain_consensus  # noqa: F401


def bc_engine_names() -> list[str]:
    """Names of every registered engine."""
    _load_builtin_engines()
    return sorted(BC_ENGINES)


def resolve_bc_engine(name: str) -> type[BCEngine]:
    """Resolve an engine name to its class, or raise ConfigurationError."""
    _load_builtin_engines()
    try:
        return BC_ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown binary-consensus engine {name!r}; "
            f"registered: {sorted(BC_ENGINES)}"
        ) from None
