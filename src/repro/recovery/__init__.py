"""Checkpointing, state transfer and replica recovery.

The RITAS paper assumes every process lives forever: its protocols keep
per-instance state for the whole run and a process that loses its memory
never rejoins.  This package adds the missing operational layer --
a *divergence from the paper*, built entirely on top of its primitives:

- **Authenticated checkpoints** -- every ``checkpoint_interval``
  delivered commands each replica digests its state machine and MAC-
  authenticates the digest towards every peer; ``f + 1`` matching
  attestations form a *stability certificate* (at least one attester is
  correct, so the digest is the state every correct replica holds at
  that position).
- **Coordinated log truncation** -- a stable checkpoint advances the
  atomic broadcast's GC floor, so per-instance protocol state and the
  command log are bounded by the checkpoint window instead of growing
  with history.
- **State transfer** -- a restarted (or freshly added) replica fetches
  the latest stable checkpoint plus the log suffix from its peers,
  verifies the certificate, installs the snapshot, replays the suffix
  and splices itself into the live agreement rounds -- identically on
  the simulated and the asyncio TCP runtimes.
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    attestation_bytes,
    build_certificate,
    checkpoint_digest,
    parse_certificate,
    verify_certificate,
)
from repro.recovery.manager import (
    PHASE_BOOTSTRAP,
    PHASE_JOINING,
    PHASE_LIVE,
    RecoveryManager,
)
from repro.recovery.protocol import RecoveryProtocol

__all__ = [
    "Checkpoint",
    "attestation_bytes",
    "build_certificate",
    "checkpoint_digest",
    "parse_certificate",
    "verify_certificate",
    "RecoveryManager",
    "RecoveryProtocol",
    "PHASE_BOOTSTRAP",
    "PHASE_JOINING",
    "PHASE_LIVE",
]
