"""The recovery wire protocol -- a leaf control block.

One :class:`RecoveryProtocol` instance lives at a fixed path on every
replica (conventionally ``("rec",)``) and speaks five message types:

- ``M_CHECKPOINT`` -- broadcast attestation ``(seq, digest, mac vector)``
  after taking a local checkpoint;
- ``M_STATE_REQ`` / ``M_STATE_RESP`` -- a recovering replica asks peers
  for (checkpoint + certificate + log suffix) or for the tail up to its
  join-round boundary;
- ``M_PAYLOAD_REQ`` / ``M_PAYLOAD_RESP`` -- fetch payloads of agreed
  identifiers whose reliable broadcast finished while the replica was
  down.

The block is deliberately thin: it decodes defensively (every field is
attacker-controlled except the authenticated source id) and hands
well-formed messages to the :class:`~repro.recovery.manager.RecoveryManager`
that owns it.  All policy -- quorums, certificates, phases -- lives in
the manager, keeping the wire layer testable in isolation.
"""

from __future__ import annotations

from typing import Any

from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.wire import Path

M_CHECKPOINT = 1
M_STATE_REQ = 2
M_STATE_RESP = 3
M_PAYLOAD_REQ = 4
M_PAYLOAD_RESP = 5

#: Cap on log entries accepted in one state response and identifiers in
#: one payload request -- a corrupt peer must not blow up memory.
MAX_ENTRIES = 1024
MAX_PAYLOAD_IDS = 64

#: Sanity bound on the "highest rbid seen" field of a state response --
#: a corrupt responder must not be able to push a recoverer's broadcast
#: ids beyond what the wire codec can carry.
MAX_RBID = 1 << 48

#: Request modes carried in M_STATE_REQ.
MODE_BOOTSTRAP = 0
MODE_TAIL = 1


class RecoveryProtocol(ControlBlock):
    """Wire endpoint of the recovery subsystem on one replica."""

    protocol = "ckpt"

    def __init__(
        self,
        stack: Stack,
        path: Path,
        parent: ControlBlock | None = None,
        purpose: str | None = None,
        *,
        manager: Any = None,
    ):
        super().__init__(stack, path, parent, purpose)
        #: The policy object; assigned by :class:`RecoveryManager`.
        self.manager = manager

    # -- sending -------------------------------------------------------------------

    def send_to_peers(self, mtype: int, payload: Any) -> None:
        """Send one frame to every *other* process (requests never need
        the loopback; attestations do and use :meth:`send_all`)."""
        for pid in self.config.process_ids:
            if pid != self.me:
                self.send(pid, mtype, payload)

    # -- receiving -----------------------------------------------------------------

    def input(self, mbuf: Mbuf) -> None:
        if self.manager is None:
            return
        handler = {
            M_CHECKPOINT: self._on_checkpoint,
            M_STATE_REQ: self._on_state_req,
            M_STATE_RESP: self._on_state_resp,
            M_PAYLOAD_REQ: self._on_payload_req,
            M_PAYLOAD_RESP: self._on_payload_resp,
        }.get(mbuf.mtype)
        if handler is not None:
            handler(mbuf)

    def _on_checkpoint(self, mbuf: Mbuf) -> None:
        p = mbuf.payload
        if (
            isinstance(p, list)
            and len(p) == 3
            and isinstance(p[0], int)
            and p[0] > 0
            and isinstance(p[1], bytes)
            and isinstance(p[2], list)
            and len(p[2]) == self.config.num_processes
            and all(isinstance(tag, bytes) for tag in p[2])
        ):
            self.manager.handle_checkpoint(mbuf.src, p[0], p[1], p[2])

    def _on_state_req(self, mbuf: Mbuf) -> None:
        p = mbuf.payload
        if (
            isinstance(p, list)
            and len(p) == 3
            and p[0] in (MODE_BOOTSTRAP, MODE_TAIL)
            and isinstance(p[1], int)
            and p[1] >= 0
            and (p[2] is None or (isinstance(p[2], int) and p[2] > 0))
        ):
            self.manager.handle_state_req(mbuf.src, p[0], p[1], p[2])

    def _on_state_resp(self, mbuf: Mbuf) -> None:
        p = mbuf.payload
        if (
            not isinstance(p, list)
            or len(p) != 6
            or p[0] not in (MODE_BOOTSTRAP, MODE_TAIL)
            or not isinstance(p[2], list)
            or len(p[2]) > MAX_ENTRIES
            or not isinstance(p[3], int)
            or p[3] < 0
            or not isinstance(p[4], int)
            or p[4] < 0
            or not isinstance(p[5], int)
            or not -1 <= p[5] < MAX_RBID
        ):
            return
        entries = _parse_entries(p[2], self.config.num_processes)
        if entries is None:
            return
        if p[0] == MODE_BOOTSTRAP:
            # p[1]: checkpoint part, validated by the manager (it owns
            # certificate verification); shape-checked here.
            ckpt = p[1]
            if ckpt is not None and not (
                isinstance(ckpt, list)
                and len(ckpt) == 5
                and isinstance(ckpt[0], int)
                and ckpt[0] > 0
                and isinstance(ckpt[1], bytes)
                and isinstance(ckpt[2], bytes)
                and isinstance(ckpt[3], list)
                and isinstance(ckpt[4], list)
            ):
                return
            self.manager.handle_bootstrap_resp(
                mbuf.src, ckpt, entries, p[3], p[4], p[5], mbuf.wire_size
            )
        else:
            boundary = p[1]
            if boundary is not None and not (
                isinstance(boundary, int) and boundary >= 0
            ):
                return
            self.manager.handle_tail_resp(
                mbuf.src, boundary, entries, p[3], p[4], p[5], mbuf.wire_size
            )

    def _on_payload_req(self, mbuf: Mbuf) -> None:
        p = mbuf.payload
        ids = _parse_ids(p, self.config.num_processes)
        if ids is not None:
            self.manager.handle_payload_req(mbuf.src, ids)

    def _on_payload_resp(self, mbuf: Mbuf) -> None:
        p = mbuf.payload
        if not isinstance(p, list) or len(p) > MAX_PAYLOAD_IDS:
            return
        found: list[tuple[int, int, Any]] = []
        for entry in p:
            if (
                not isinstance(entry, list)
                or len(entry) != 3
                or not isinstance(entry[0], int)
                or not 0 <= entry[0] < self.config.num_processes
                or not isinstance(entry[1], int)
                or entry[1] < 0
            ):
                return
            found.append((entry[0], entry[1], entry[2]))
        if found:
            self.manager.handle_payload_resp(mbuf.src, found, mbuf.wire_size)


def _parse_entries(
    payload: list, num_processes: int
) -> list[tuple[int, int, int, Any]] | None:
    """Decode ``[[pos, sender, rbid, payload], ...]`` log entries."""
    out: list[tuple[int, int, int, Any]] = []
    for entry in payload:
        if (
            not isinstance(entry, list)
            or len(entry) != 4
            or not isinstance(entry[0], int)
            or entry[0] < 0
            or not isinstance(entry[1], int)
            or not 0 <= entry[1] < num_processes
            or not isinstance(entry[2], int)
            or entry[2] < 0
        ):
            return None
        out.append((entry[0], entry[1], entry[2], entry[3]))
    return out


def _parse_ids(payload: Any, num_processes: int) -> list[tuple[int, int]] | None:
    if not isinstance(payload, list) or not payload or len(payload) > MAX_PAYLOAD_IDS:
        return None
    out: list[tuple[int, int]] = []
    for entry in payload:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not isinstance(entry[0], int)
            or not 0 <= entry[0] < num_processes
            or not isinstance(entry[1], int)
            or entry[1] < 0
        ):
            return None
        out.append((entry[0], entry[1]))
    return out
