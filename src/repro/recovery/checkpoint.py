"""Checkpoint records, attestations and stability certificates.

A checkpoint binds three things: the *position* (number of atomic
broadcast deliveries it covers), the canonical *snapshot* of the state
machine after those deliveries, and the delivered-id *frontier* of the
atomic broadcast at that point.  All three are deterministic functions
of the group's total order, so correct replicas compute identical
digests at identical positions.

Authentication reuses the paper's MAC-vector scheme (Section 2.3): an
attester authenticates ``H(snapshot, frontier)`` towards every peer at
once with one vector of pairwise-keyed MACs.  Because the vector carries
an entry for *every* process, it is transferable: a recovering replica
that never saw the original broadcast can still verify its own entry.
``f + 1`` attestation vectors with matching digests form a *stability
certificate* -- at least one attester is correct, hence the digest is
the one every correct replica computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.wire import encode_value
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyStore
from repro.crypto.mac import verify_mac

#: Domain separator: checkpoint attestations can never collide with
#: application payloads or other MAC uses of the pairwise keys.
ATTESTATION_DOMAIN = "ritas-ckpt"


def attestation_bytes(seq: int, digest: bytes) -> bytes:
    """The exact bytes a checkpoint attestation MAC-authenticates."""
    return encode_value([ATTESTATION_DOMAIN, seq, digest])


def checkpoint_digest(snapshot: bytes, frontier: list) -> bytes:
    """Digest binding a state snapshot to the delivered-id frontier."""
    return hash_bytes(snapshot, encode_value(frontier))


@dataclass
class Checkpoint:
    """One replica's record of its own checkpoint at position *seq*.

    Attributes:
        seq: deliveries covered (the checkpoint reflects positions
            ``0 .. seq-1``).
        digest: :func:`checkpoint_digest` of snapshot and frontier.
        snapshot: canonical state bytes
            (:meth:`~repro.apps.state_machine.ReplicatedStateMachine.snapshot_bytes`).
        frontier: delivered-id summary
            (:meth:`~repro.core.atomic_broadcast.AtomicBroadcast.delivered_frontier`).
        round_mark: highest agreement round fully covered by *seq*
            (every identifier it scheduled is within the checkpoint), or
            ``None`` when the position anchors are unknown; this is the
            horizon handed to the atomic broadcast's GC.
    """

    seq: int
    digest: bytes
    snapshot: bytes
    frontier: list
    round_mark: int | None = None


def build_certificate(attestations: dict[int, list[bytes]]) -> list:
    """Wire form of a stability certificate:
    ``[[attester, [mac...]], ...]`` sorted by attester id."""
    return [[pid, list(vector)] for pid, vector in sorted(attestations.items())]


def parse_certificate(payload: Any, num_processes: int) -> dict[int, list[bytes]] | None:
    """Defensively decode a wire certificate; ``None`` if malformed."""
    if not isinstance(payload, list) or len(payload) > num_processes:
        return None
    out: dict[int, list[bytes]] = {}
    for entry in payload:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not isinstance(entry[0], int)
            or not 0 <= entry[0] < num_processes
            or entry[0] in out
            or not isinstance(entry[1], list)
            or len(entry[1]) != num_processes
            or not all(isinstance(tag, bytes) for tag in entry[1])
        ):
            return None
        out[entry[0]] = entry[1]
    return out


def verify_certificate(
    seq: int,
    digest: bytes,
    certificate: dict[int, list[bytes]],
    keystore: KeyStore,
    quorum: int,
) -> bool:
    """Check a stability certificate from this process's point of view.

    Each attester's vector must authenticate ``(seq, digest)`` towards
    *this* process under the key it shares with the attester; *quorum*
    (``f + 1``) distinct valid attesters make the digest trustworthy.
    """
    me = keystore.process_id
    message = attestation_bytes(seq, digest)
    valid = 0
    for attester, vector in certificate.items():
        if me >= len(vector):
            continue
        if verify_mac(message, keystore.key_for(attester), vector[me]):
            valid += 1
            if valid >= quorum:
                return True
    return False
