"""The recovery manager: checkpoint duty, truncation and catch-up.

One :class:`RecoveryManager` wraps one replica's
:class:`~repro.apps.state_machine.ReplicatedStateMachine` and its
atomic broadcast.  It interposes on the delivery callback, so it owns
the replica's *position space*: the count of atomic broadcast
deliveries, junk included (junk is skipped by the state machine but
occupies a position in the total order at every correct replica, so
positions are deterministic group-wide).

Three phases:

- ``live`` -- normal duty: log each delivery, checkpoint every
  ``checkpoint_interval`` positions, broadcast an attestation, truncate
  the log and advance the broadcast's GC floor once ``f + 1`` matching
  attestations make a checkpoint *stable*, and serve peers' state and
  payload requests.
- ``bootstrap`` -- a restarted replica requests state from all peers,
  installs the best certified checkpoint, replays the ``f + 1``-matched
  log suffix, and fast-forwards its atomic broadcast past every round
  any correct peer can have started.
- ``joining`` -- deliveries from the fast-forwarded broadcast are
  buffered while the replica fetches the remaining gap (up to the
  group's position at its join round) from peers; once the gap closes
  it anchors the broadcast's position base, drains the buffer and goes
  live.

Timers are poke-driven (the stack is sans-IO): the runtime calls
:meth:`RecoveryManager.poke` periodically; request waves carry their
own exponential backoff between ``recovery_request_base_s`` and
``recovery_request_max_s``.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any

from repro.apps.state_machine import Command, ReplicatedStateMachine
from repro.core.atomic_broadcast import AbDelivery, AtomicBroadcast, MsgId
from repro.core.errors import ProtocolViolationError, WireFormatError
from repro.core.stack import Stack
from repro.core.stats import RecoveryStats
from repro.core.wire import Path, encode_value
from repro.crypto.mac import mac_vector, verify_mac
from repro.recovery.checkpoint import (
    Checkpoint,
    attestation_bytes,
    build_certificate,
    checkpoint_digest,
    parse_certificate,
    verify_certificate,
)
from repro.recovery.protocol import (
    M_CHECKPOINT,
    M_PAYLOAD_REQ,
    M_PAYLOAD_RESP,
    M_STATE_REQ,
    M_STATE_RESP,
    MAX_ENTRIES,
    MODE_BOOTSTRAP,
    MODE_TAIL,
)

PHASE_BOOTSTRAP = "bootstrap"
PHASE_JOINING = "joining"
PHASE_LIVE = "live"

#: Attestations for positions further than this many checkpoint windows
#: beyond anything we have seen are discarded (memory bound against a
#: corrupt replica minting arbitrary future checkpoints).
ATTEST_WINDOWS = 256

#: Local checkpoint records retained while awaiting stability.
MAX_RECORDS = 8


class RecoveryManager:
    """Checkpoint / state-transfer policy for one replica.

    Args:
        stack: the replica's protocol stack.
        rsm: the replicated state machine to checkpoint and restore.
            Its ``apply_fn`` must treat unknown operations as
            deterministic no-ops (the catch-up path broadcasts a
            ``noop`` command to push agreement rounds forward).
        recovering: ``True`` on a replica restarted from nothing: it
            bootstraps from peers instead of assuming position 0 is the
            beginning of history.  Requires a freshly created stack and
            state machine.
        path: instance path of the recovery wire protocol; must be the
            same on every replica.
    """

    def __init__(
        self,
        stack: Stack,
        rsm: ReplicatedStateMachine,
        *,
        recovering: bool = False,
        path: Path = ("rec",),
    ):
        self._stack = stack
        self._rsm = rsm
        self._ab: AtomicBroadcast = rsm.ab
        self._cfg = stack.config
        self._interval = self._cfg.checkpoint_interval
        self.stats = RecoveryStats()
        self.protocol = stack.create("ckpt", tuple(path), manager=self)
        self._inner_deliver = self._ab.on_deliver
        self._ab.on_deliver = self._on_ab_deliver
        self._ab.external_gc = True

        #: Next absolute delivery position (== deliveries applied so far).
        self._next_pos = 0
        #: Recent deliveries, junk included: ``(pos, sender, rbid, payload)``.
        #: Truncated at each stable checkpoint; this is what state and
        #: payload requests are served from.
        self._log: deque[tuple[int, int, int, Any]] = deque()
        self._records: dict[int, Checkpoint] = {}
        #: seq -> {attester -> (digest, mac vector)}; one slot per
        #: attester per position, so a corrupt replica cannot grow it.
        self._attest: dict[int, dict[int, tuple[bytes, list[bytes]]]] = {}
        self._stable: tuple[Checkpoint, list] | None = None
        self._diverged: set[int] = set()

        self.phase = PHASE_LIVE
        self._join_round: int | None = None
        #: Deliveries made while catching up, with their index since
        #: fast-forward: index *k* sits at group position ``base + k``
        #: (the broadcast delivers in deterministic group order), which
        #: is how the drain skips entries a newer absorbed checkpoint
        #: already covers.
        self._buffer: list[tuple[int, AbDelivery]] = []
        #: Count of this broadcast's deliveries since its fast-forward,
        #: and the group position its first delivery sits at (known once
        #: the join-round boundary is agreed).  ``None`` base on replicas
        #: that never recovered.
        self._ff_count = 0
        self._ff_base: int | None = None
        self._boot_resp: dict[int, dict[str, Any]] = {}
        self._tail_info: dict[int, tuple[int | None, int, int]] = {}
        self._tail_entries: dict[int, dict[int, tuple[int, int, bytes, Any]]] = {}
        self._payload_votes: dict[MsgId, dict[int, tuple[bytes, Any]]] = {}
        self._wave_delay = self._cfg.recovery_request_base_s
        self._next_wave_at = 0.0
        self._bootstrap_waves = 0
        self._recovery_started_at: float | None = None
        if recovering:
            self.phase = PHASE_BOOTSTRAP
            self._recovery_started_at = stack.clock()
            self.poke()

    # -- accessors -----------------------------------------------------------------

    @property
    def position(self) -> int:
        """Absolute delivery position (junk-inclusive; deterministic
        across correct replicas)."""
        return self._next_pos

    @property
    def stable_seq(self) -> int:
        """Position of the newest stable checkpoint, 0 if none yet."""
        return self._stable[0].seq if self._stable is not None else 0

    @property
    def log_length(self) -> int:
        return len(self._log)

    # -- delivery interposition ----------------------------------------------------

    def _on_ab_deliver(self, instance, delivery: AbDelivery) -> None:
        if self.phase != PHASE_LIVE:
            # A catching-up replica cannot place these deliveries yet:
            # they belong at the group position of its join round, which
            # it is still learning from peers.
            self._buffer.append((self._ff_count, delivery))
            self._ff_count += 1
            return
        if self._ff_base is not None:
            # On a recovered replica the broadcast's k-th delivery since
            # fast-forward sits at group position base + k; one that a
            # checkpoint absorbed mid-join already covered (it was
            # stalled awaiting its payload at the time) must not apply
            # again.
            absolute = self._ff_base + self._ff_count
            self._ff_count += 1
            if absolute < self._next_pos:
                return
        self._deliver_live(instance, delivery)

    def _deliver_live(self, instance, delivery: AbDelivery) -> None:
        pos = self._next_pos
        self._next_pos += 1
        if delivery.sequence != pos:
            # The broadcast numbers deliveries from its own start; after
            # a fast-forward that is not the group position.  Rewrite so
            # the application always sees absolute positions.
            delivery = dataclasses.replace(delivery, sequence=pos)
        self._log.append((pos, delivery.sender, delivery.rbid, delivery.payload))
        if self._inner_deliver is not None:
            self._inner_deliver(instance, delivery)
        if self._next_pos % self._interval == 0:
            self._take_checkpoint(self._next_pos)

    # -- checkpoint duty -----------------------------------------------------------

    def _take_checkpoint(self, seq: int) -> None:
        snapshot = self._rsm.snapshot_bytes()
        frontier = self._ab.delivered_frontier()
        digest = checkpoint_digest(snapshot, frontier)
        marks = [r for r, p in self._ab.positions_by_round().items() if p <= seq]
        record = Checkpoint(seq, digest, snapshot, frontier, max(marks, default=None))
        self._records[seq] = record
        while len(self._records) > MAX_RECORDS:
            del self._records[min(self._records)]
        self.stats.checkpoints_taken += 1
        vector = mac_vector(attestation_bytes(seq, digest), self._stack.keystore)
        self.stats.attestations_sent += 1
        self.protocol.send_all(M_CHECKPOINT, [seq, digest, vector])
        self._maybe_stable(seq)

    def handle_checkpoint(
        self, src: int, seq: int, digest: bytes, vector: list[bytes]
    ) -> None:
        me = self._stack.process_id
        horizon = max(self._next_pos, self.stable_seq) + ATTEST_WINDOWS * self._interval
        if seq % self._interval != 0 or seq <= self.stable_seq or seq > horizon:
            self.stats.attestations_rejected += 1
            return
        if me >= len(vector) or not verify_mac(
            attestation_bytes(seq, digest),
            self._stack.keystore.key_for(src),
            vector[me],
        ):
            self.stats.attestations_rejected += 1
            return
        self.stats.attestations_accepted += 1
        self._attest.setdefault(seq, {})[src] = (digest, vector)
        self._maybe_stable(seq)

    def _maybe_stable(self, seq: int) -> None:
        record = self._records.get(seq)
        attesters = self._attest.get(seq)
        if record is None or attesters is None:
            return
        matching = {
            src: vector
            for src, (digest, vector) in attesters.items()
            if digest == record.digest
        }
        if len(matching) >= self._cfg.certificate_quorum:
            self._on_stable(record, build_certificate(matching))
            return
        # f+1 attesters agreeing on a digest that is NOT ours means the
        # certified state differs from what we computed: either we or
        # our history diverged.  Surfaced as a counter for operators.
        if seq not in self._diverged:
            votes: dict[bytes, int] = {}
            for digest, _ in attesters.values():
                votes[digest] = votes.get(digest, 0) + 1
            for digest, count in votes.items():
                if digest != record.digest and count >= self._cfg.certificate_quorum:
                    self._diverged.add(seq)
                    self.stats.digest_divergence += 1
                    break

    def _on_stable(self, record: Checkpoint, certificate: list) -> None:
        if self._stable is not None and record.seq <= self._stable[0].seq:
            return
        self._stable = (record, certificate)
        self.stats.checkpoints_stable += 1
        dropped = 0
        while self._log and self._log[0][0] < record.seq:
            self._log.popleft()
            dropped += 1
        if dropped:
            self.stats.log_truncations += 1
        self._rsm.trim_applied(self._next_pos - record.seq)
        for seq in [s for s in self._records if s < record.seq]:
            del self._records[seq]
        for seq in [s for s in self._attest if s <= record.seq]:
            del self._attest[seq]
        self._diverged = {s for s in self._diverged if s > record.seq}
        if record.round_mark is not None:
            floor_before = self._ab.gc_floor
            if self._ab.collect_through(record.round_mark) > floor_before:
                self.stats.gc_advances += 1

    # -- serving peers -------------------------------------------------------------

    def handle_state_req(
        self, src: int, mode: int, from_pos: int, join_round: int | None
    ) -> None:
        if self.phase != PHASE_LIVE or src == self._stack.process_id:
            return
        self.stats.state_requests_served += 1
        max_rbid = self._ab.max_rbid_from(src)
        log_floor = self._log[0][0] if self._log else self._next_pos
        if mode == MODE_TAIL and from_pos < log_floor:
            # A stable checkpoint truncated the positions the joiner
            # still needs; answer with the checkpoint instead so it can
            # catch forward rather than wait for entries that are gone.
            mode = MODE_BOOTSTRAP
        if mode == MODE_BOOTSTRAP:
            part = None
            base = from_pos
            if self._stable is not None:
                record, certificate = self._stable
                part = [
                    record.seq,
                    record.digest,
                    record.snapshot,
                    record.frontier,
                    certificate,
                ]
                base = max(from_pos, record.seq)
            entries = self._entries_from(base, None)
            payload = [
                MODE_BOOTSTRAP,
                part,
                entries,
                self._next_pos,
                self._ab.round,
                max_rbid,
            ]
        else:
            if join_round is None:
                return
            boundary = self._ab.positions_by_round().get(join_round - 1)
            entries = (
                self._entries_from(from_pos, boundary) if boundary is not None else []
            )
            payload = [
                MODE_TAIL,
                boundary,
                entries,
                self._next_pos,
                self._ab.round,
                max_rbid,
            ]
        self.stats.state_bytes_sent += _approx_size(payload)
        self.protocol.send(src, M_STATE_RESP, payload)

    def _entries_from(self, lo: int, hi: int | None) -> list[list[Any]]:
        out: list[list[Any]] = []
        for pos, sender, rbid, payload in self._log:
            if pos < lo:
                continue
            if hi is not None and pos >= hi:
                break
            out.append([pos, sender, rbid, payload])
            if len(out) >= MAX_ENTRIES:
                break
        return out

    def handle_payload_req(self, src: int, ids: list[MsgId]) -> None:
        if self.phase != PHASE_LIVE or src == self._stack.process_id:
            return
        index: dict[MsgId, Any] = {
            (sender, rbid): payload for _, sender, rbid, payload in self._log
        }
        found = [
            [msg_id[0], msg_id[1], index[msg_id]] for msg_id in ids if msg_id in index
        ]
        if found:
            self.stats.payloads_served += len(found)
            self.stats.state_bytes_sent += _approx_size(found)
            self.protocol.send(src, M_PAYLOAD_RESP, found)

    # -- recovering: bootstrap -----------------------------------------------------

    def handle_bootstrap_resp(
        self,
        src: int,
        ckpt: list | None,
        entries: list[tuple[int, int, int, Any]],
        head_pos: int,
        head_round: int,
        max_rbid: int,
        wire_size: int,
    ) -> None:
        if self.phase == PHASE_LIVE or src == self._stack.process_id:
            return
        self.stats.state_responses_received += 1
        self.stats.state_bytes_received += wire_size
        verified = None
        if ckpt is not None:
            seq, digest, snapshot, frontier_raw, cert_raw = ckpt
            frontier = AtomicBroadcast.parse_frontier(frontier_raw)
            certificate = parse_certificate(cert_raw, self._cfg.num_processes)
            if (
                frontier is not None
                and certificate is not None
                and checkpoint_digest(snapshot, frontier) == digest
                and verify_certificate(
                    seq,
                    digest,
                    certificate,
                    self._stack.keystore,
                    self._cfg.certificate_quorum,
                )
            ):
                verified = (seq, digest, snapshot, frontier, cert_raw)
            else:
                self.stats.certificates_rejected += 1
        if self.phase == PHASE_JOINING:
            # A peer answered a tail request with its checkpoint: the
            # positions we were fetching were truncated group-wide.
            # Catch forward to the certified checkpoint (no quorum needed
            # -- the certificate itself carries f+1 attesters).
            if verified is not None and verified[0] > self._next_pos:
                self._absorb_checkpoint(verified)
                self._try_join()
            return
        self._boot_resp[src] = {
            "ckpt": verified,
            "entries": _entry_map(entries),
            "head": head_pos,
            "round": head_round,
            "max_rbid": max_rbid,
        }
        self._try_bootstrap()

    def _try_bootstrap(self) -> None:
        quorum = self._cfg.certificate_quorum
        if len(self._boot_resp) < quorum:
            return
        best = None
        for resp in self._boot_resp.values():
            ckpt = resp["ckpt"]
            if ckpt is not None and (best is None or ckpt[0] > best[0]):
                best = ckpt
        base_seq = best[0] if best is not None else 0
        per_source = {src: r["entries"] for src, r in self._boot_resp.items()}
        suffix: list[tuple[int, int, int, Any]] = []
        pos = base_seq
        while True:
            entry = _confirmed_entry(per_source, pos, quorum)
            if entry is None:
                break
            suffix.append((pos,) + entry)
            pos += 1
        # Among any f+1 responses at least one comes from a process that
        # reached (leader round - 1), so max+margin lands strictly past
        # every round any correct process can have started -- and frames
        # for rounds reached since we began listening sit in the OOC
        # table, replayed the instant fast_forward creates the round.
        join_round = (
            max(r["round"] for r in self._boot_resp.values())
            + self._cfg.recovery_join_margin
        )
        frontier = None
        if best is not None:
            self._rsm.install_snapshot(best[2])
            self.stats.snapshots_installed += 1
            record = Checkpoint(best[0], best[1], best[2], best[3], None)
            self._stable = (record, best[4])
            self._records = {best[0]: record}
            frontier = best[3]
        self._next_pos = base_seq
        self._log.clear()
        applied_ids: list[MsgId] = []
        for pos, sender, rbid, payload in suffix:
            self._log.append((pos, sender, rbid, payload))
            self._rsm.ingest_recovered(
                AbDelivery(sender=sender, rbid=rbid, payload=payload, sequence=pos)
            )
            applied_ids.append((sender, rbid))
            self._next_pos = pos + 1
            self.stats.suffix_entries_applied += 1
        try:
            self._ab.fast_forward(join_round, frontier)
        except (ProtocolViolationError, ValueError):
            return
        for msg_id in applied_ids:
            self._ab.note_delivered_external(msg_id)
        next_rbid = 1 + max(r["max_rbid"] for r in self._boot_resp.values())
        self._ab.resume_broadcast_ids(next_rbid)
        self._join_round = join_round
        self.phase = PHASE_JOINING
        self._boot_resp.clear()
        self._reset_wave()
        self.poke()

    def _absorb_checkpoint(
        self, verified: tuple[int, bytes, bytes, list, list]
    ) -> None:
        """Install a certified checkpoint newer than our position
        (mid-join catch-forward after group-wide truncation)."""
        seq, digest, snapshot, frontier, cert_raw = verified
        self._rsm.install_snapshot(snapshot)
        self.stats.snapshots_installed += 1
        record = Checkpoint(seq, digest, snapshot, frontier, None)
        self._stable = (record, cert_raw)
        self._records = {seq: record}
        self._log.clear()
        self._next_pos = seq
        self._ab.absorb_frontier(frontier)

    # -- recovering: tail ----------------------------------------------------------

    def handle_tail_resp(
        self,
        src: int,
        boundary: int | None,
        entries: list[tuple[int, int, int, Any]],
        head_pos: int,
        head_round: int,
        max_rbid: int,
        wire_size: int,
    ) -> None:
        if self.phase != PHASE_JOINING or src == self._stack.process_id:
            return
        self.stats.state_responses_received += 1
        self.stats.state_bytes_received += wire_size
        self._tail_info[src] = (boundary, head_pos, head_round)
        self._tail_entries.setdefault(src, {}).update(_entry_map(entries))
        self._try_join()

    def _try_join(self) -> None:
        quorum = self._cfg.certificate_quorum
        votes: dict[int, int] = {}
        for boundary, _, _ in self._tail_info.values():
            if boundary is not None:
                votes[boundary] = votes.get(boundary, 0) + 1
        target = None
        for boundary, count in votes.items():
            if count >= quorum:
                target = boundary
                break
        if target is None:
            return
        while self._next_pos < target:
            entry = _confirmed_entry(self._tail_entries, self._next_pos, quorum)
            if entry is None:
                return  # gap: wait for more responses
            sender, rbid, payload = entry
            pos = self._next_pos
            self._log.append((pos, sender, rbid, payload))
            self._rsm.ingest_recovered(
                AbDelivery(sender=sender, rbid=rbid, payload=payload, sequence=pos)
            )
            self._ab.note_delivered_external((sender, rbid))
            self._next_pos = pos + 1
            self.stats.suffix_entries_applied += 1
        self._complete_join(target)

    def _complete_join(self, base: int) -> None:
        self._ab.set_position_base(base)
        self._ff_base = base
        self.phase = PHASE_LIVE
        self._join_round = None
        self._tail_info.clear()
        self._tail_entries.clear()
        self._payload_votes.clear()
        buffered, self._buffer = self._buffer, []
        for index, delivery in buffered:
            if base + index < self._next_pos:
                # Covered by a checkpoint absorbed mid-join.
                continue
            self.stats.buffered_applied += 1
            self._deliver_live(self._ab, delivery)
        if self._recovery_started_at is not None:
            self.stats.rejoin_time_s = self._stack.clock() - self._recovery_started_at
            self._recovery_started_at = None

    # -- recovering: payload fetch -------------------------------------------------

    def handle_payload_resp(
        self, src: int, found: list[tuple[int, int, Any]], wire_size: int
    ) -> None:
        if self.phase == PHASE_BOOTSTRAP or src == self._stack.process_id:
            return
        self.stats.state_bytes_received += wire_size
        for sender, rbid, payload in found:
            msg_id = (sender, rbid)
            try:
                encoded = encode_value(payload)
            except (WireFormatError, ValueError, TypeError, OverflowError):
                continue
            votes = self._payload_votes.setdefault(msg_id, {})
            votes[src] = (encoded, payload)
            tally: dict[bytes, int] = {}
            for enc, _ in votes.values():
                tally[enc] = tally.get(enc, 0) + 1
            for enc, count in tally.items():
                if count >= self._cfg.certificate_quorum:
                    value = next(v for e, v in votes.values() if e == enc)
                    if self._ab.inject_payload(msg_id, value):
                        self.stats.payloads_injected += 1
                        self._payload_votes.pop(msg_id, None)
                    break

    # -- timers --------------------------------------------------------------------

    def poke(self) -> None:
        """Advance poke-driven timers; call periodically from the runtime.

        Idle on a live, fully caught-up replica; otherwise sends the
        request wave that is due (with exponential backoff per wave).
        """
        now = self._stack.clock()
        if now < self._next_wave_at:
            return
        if self.phase == PHASE_LIVE:
            stalled = self._ab.stalled_ids()
            if not stalled:
                self._payload_votes.clear()
                return
            self._send_payload_wave(stalled)
        elif self.phase == PHASE_BOOTSTRAP:
            peers = [
                pid
                for pid in self._cfg.process_ids
                if pid != self._stack.process_id
            ]
            if self._bootstrap_waves == 0:
                # Responses are heavy (snapshot + certificate), and f+1
                # suffice: ask only that many peers first, widening to
                # everyone on the retry waves in case some never answer.
                peers = peers[: self._cfg.certificate_quorum]
            for pid in peers:
                self.protocol.send(pid, M_STATE_REQ, [MODE_BOOTSTRAP, self._next_pos, None])
            self._bootstrap_waves += 1
            self.stats.state_requests_sent += 1
        else:  # PHASE_JOINING
            self.protocol.send_to_peers(
                M_STATE_REQ, [MODE_TAIL, self._next_pos, self._join_round]
            )
            self.stats.state_requests_sent += 1
            stalled = self._ab.stalled_ids()
            if stalled:
                self._send_payload_wave(stalled)
            # Agreement rounds only advance when messages are broadcast;
            # a quiet group would never reach our join round.  A noop
            # command (ignored by the state machine at every replica)
            # pushes one round forward per wave.
            self._rsm.submit(Command("noop", []))
        self._wave_delay = min(self._wave_delay * 2.0, self._cfg.recovery_request_max_s)
        self._next_wave_at = now + self._wave_delay

    def _send_payload_wave(self, stalled: list[MsgId]) -> None:
        self.protocol.send_to_peers(
            M_PAYLOAD_REQ, [[sender, rbid] for sender, rbid in stalled]
        )
        self.stats.payload_requests_sent += 1

    def _reset_wave(self) -> None:
        self._wave_delay = self._cfg.recovery_request_base_s
        self._next_wave_at = 0.0


def _entry_map(
    entries: list[tuple[int, int, int, Any]],
) -> dict[int, tuple[int, int, bytes, Any]]:
    """Index response entries by position, with the payload's canonical
    encoding alongside for exact cross-response comparison."""
    out: dict[int, tuple[int, int, bytes, Any]] = {}
    for pos, sender, rbid, payload in entries:
        try:
            encoded = encode_value(payload)
        except (WireFormatError, ValueError, TypeError, OverflowError):
            continue
        out[pos] = (sender, rbid, encoded, payload)
    return out


def _confirmed_entry(
    per_source: dict[int, dict[int, tuple[int, int, bytes, Any]]],
    pos: int,
    quorum: int,
) -> tuple[int, int, Any] | None:
    """The entry at *pos* vouched for by *quorum* responders, if any.

    ``quorum = f + 1`` identical entries include one from a correct
    replica, so the entry is the group's true delivery at that position.
    """
    votes: dict[tuple[int, int, bytes], int] = {}
    values: dict[tuple[int, int, bytes], Any] = {}
    for entries in per_source.values():
        entry = entries.get(pos)
        if entry is None:
            continue
        key = (entry[0], entry[1], entry[2])
        votes[key] = votes.get(key, 0) + 1
        values[key] = entry[3]
    for key, count in votes.items():
        if count >= quorum:
            return key[0], key[1], values[key]
    return None


def _approx_size(payload: Any) -> int:
    """Encoded size of a response payload, for byte accounting."""
    try:
        return len(encode_value(payload))
    except (WireFormatError, ValueError, TypeError, OverflowError):
        return 0
