"""Faultload descriptions for simulated runs (Section 4.2 of the paper).

The paper measures under three faultloads:

- **failure-free** -- all processes behave correctly;
- **fail-stop** -- one process crashes before the measurements start;
- **Byzantine** -- one process permanently tries to disrupt the
  protocols (proposing 0 at the binary consensus layer and ⊥ at the
  multi-valued consensus layer).

A :class:`FaultPlan` expresses any mix of these: crash times per
process and a protocol-factory transform per Byzantine process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.stack import ProtocolFactory

FactoryTransform = Callable[[ProtocolFactory], ProtocolFactory]


@dataclass(frozen=True)
class Partition:
    """A temporary network split.

    Between *start* and *end* (virtual seconds), frames only travel
    between processes in the same island; cross-island frames are
    dropped at the switch.  Asynchronous protocols guarantee safety
    throughout and resume liveness after the heal -- there is no
    timeout anywhere to misfire.
    """

    start: float
    end: float
    islands: tuple[tuple[int, ...], ...]

    def separates(self, a: int, b: int, at_time: float) -> bool:
        if not self.start <= at_time < self.end:
            return False
        island_of = {}
        for index, island in enumerate(self.islands):
            for pid in island:
                island_of[pid] = index
        # Processes not named in any island are unreachable during the
        # partition (their island is implicit and private).
        side_a = island_of.get(a, ("solo", a))
        side_b = island_of.get(b, ("solo", b))
        return side_a != side_b


@dataclass
class FaultPlan:
    """Which processes fail, how, and when.

    Attributes:
        crashed: process id -> virtual crash time in seconds.  From that
            time on the process neither sends nor receives; messages
            already in flight to it are dropped on arrival.
        byzantine: process id -> transform applied to the honest
            protocol factory to produce that process's (corrupt) stack.
        partitions: temporary network splits (see :class:`Partition`).
    """

    crashed: dict[int, float] = field(default_factory=dict)
    byzantine: dict[int, FactoryTransform] = field(default_factory=dict)
    partitions: list[Partition] = field(default_factory=list)

    @classmethod
    def failure_free(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def fail_stop(cls, process_id: int, at: float = 0.0) -> "FaultPlan":
        """The paper's fail-stop faultload: one process crashed from the start."""
        return cls(crashed={process_id: at})

    @classmethod
    def with_byzantine(
        cls, process_id: int, transform: "FactoryTransform | str"
    ) -> "FaultPlan":
        """One permanently disruptive process running *transform*'d protocols.

        *transform* may be a factory transform, or the name of a
        registered strategy (see :data:`repro.adversary.STRATEGIES`,
        e.g. ``"paper"``, ``"ooc-flood"``, ``"duplicate-storm"``,
        ``"bad-mac"``).
        """
        if isinstance(transform, str):
            # Imported here: repro.adversary imports the protocol modules,
            # which import repro.core.stack, which this module feeds.
            from repro.adversary import STRATEGIES

            try:
                transform = STRATEGIES[transform]
            except KeyError:
                known = ", ".join(sorted(STRATEGIES))
                raise ValueError(
                    f"unknown Byzantine strategy {transform!r} (known: {known})"
                ) from None
        return cls(byzantine={process_id: transform})

    def validate(self, num_processes: int, max_faulty: int) -> None:
        faulty = set(self.crashed) | set(self.byzantine)
        for pid in faulty:
            if not 0 <= pid < num_processes:
                raise ValueError(f"faulty process id {pid} out of range")
        if len(faulty) > max_faulty:
            raise ValueError(
                f"fault plan corrupts {len(faulty)} processes; "
                f"the group only tolerates f={max_faulty}"
            )

    def faulty_ids(self) -> set[int]:
        return set(self.crashed) | set(self.byzantine)

    def revive(self, process_id: int) -> None:
        """Clear a crash entry (the process restarted; see
        :meth:`LanSimulation.restart_process`)."""
        self.crashed.pop(process_id, None)

    def is_crashed(self, process_id: int, at_time: float) -> bool:
        crash_time = self.crashed.get(process_id)
        return crash_time is not None and at_time >= crash_time

    def is_partitioned(self, src: int, dest: int, at_time: float) -> bool:
        """True when a frame src -> dest is cut by an active partition."""
        return any(p.separates(src, dest, at_time) for p in self.partitions)

    def partition_clear_time(self, src: int, dest: int, at_time: float) -> float:
        """Earliest time the path src -> dest is clear of partitions.

        The reliable channel is TCP: a partition delays frames (they are
        retransmitted after the heal), it does not lose them.
        """
        time = at_time
        # Iterate because back-to-back partitions may chain.
        for _ in range(len(self.partitions) + 1):
            blocking = [
                p.end for p in self.partitions if p.separates(src, dest, time)
            ]
            if not blocking:
                return time
            time = max(blocking)
        return time
