"""The simulated LAN and the per-process simulation harness.

The timing model reproduces the *shape* of the paper's measurements
(Section 4) without the original hardware.  One message from host A to
host B passes through four FIFO resources:

1. **A's CPU** -- a fixed per-message send cost plus a per-byte cost
   (protocol bookkeeping, buffer copies, checksums); the dominant term
   on the testbed's 500 MHz Pentium IIIs.
2. **A's NIC** -- serialization of the full frame at link rate.
3. **the switch** -- store-and-forward latency, then serialization onto
   B's (shared) downlink, which is where inter-process *contention*
   appears -- and why the paper's fail-stop runs are faster than
   failure-free ones.
4. **B's CPU** -- per-message receive cost plus per-byte cost, after
   which the frame enters B's stack.

IPSec AH (when enabled) adds 24 bytes to every frame plus a fixed and a
per-byte hashing cost at each end, exactly the decomposition the paper
gives for Table 1's overhead column.

The unit these costs apply to is one *channel unit* -- whatever blob
the stack hands its outbox.  When batching is on, a batch of coalesced
frames is one unit, so the fixed costs (``cpu_send_s``,
``header_bytes``, ``ipsec_cpu_fixed_s``, switch latency) are paid once
per batch rather than once per frame; only the per-byte terms keep
scaling with the frames inside.  That is precisely the lever the
paper's fixed-cost analysis identifies as dominating LAN latency.

Each resource keeps a scalar "busy until" horizon, so scheduling a
message is O(1) and the whole model is deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.config import GroupConfig
from repro.core.sendq import BoundedSendQueue
from repro.core.stack import ProtocolFactory, Stack
from repro.core.trace import KIND_SHED
from repro.core.wire import encode_batch, is_batch
from repro.crypto.coin import SharedCoinDealer
from repro.crypto.keys import TrustedDealer
from repro.net.faults import FaultPlan
from repro.net.links import LinkModel
from repro.net.simulator import EventLoop, PeriodicHandle
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class NetworkParameters:
    """Calibrated constants of the timing model (all times in seconds)."""

    bandwidth_bps: float = 100e6
    switch_latency_s: float = 500e-6  # per-hop fixed latency incl. kernel wakeups
    header_bytes: int = 70  # Ethernet + IP + TCP (a 10-byte payload -> 80-byte frame)
    cpu_send_s: float = 26e-6
    cpu_recv_s: float = 24e-6
    cpu_per_byte_s: float = 12e-9
    local_delivery_s: float = 5e-6  # self-addressed messages skip the wire
    ipsec_ah_bytes: int = 24
    ipsec_cpu_fixed_s: float = 6e-6  # per frame, per end
    ipsec_cpu_per_byte_s: float = 50e-9  # SHA-1 on a 500 MHz PIII, per end

    def with_overrides(self, **overrides: float) -> "NetworkParameters":
        return replace(self, **overrides)


#: Calibrated against the paper's testbed: 4x Pentium III 500 MHz,
#: 100 Mbps HP ProCurve switch, Linux 2.6.5, ~9.1 MB/s measured goodput.
LAN_2006 = NetworkParameters()

#: A rough wide-area variant (Section 4.2 predicts the one-round
#: behaviour may not survive asymmetric latencies): higher, *asymmetric*
#: propagation delay is injected per link by LanSimulation when this
#: preset is used.
WAN_EMULATED = NetworkParameters(
    switch_latency_s=20e-3,
    cpu_send_s=5e-6,
    cpu_recv_s=5e-6,
    cpu_per_byte_s=1e-9,
)


class _Resource:
    """A FIFO serializer: tracks when it next becomes free."""

    __slots__ = ("free_at",)

    def __init__(self) -> None:
        self.free_at = 0.0

    def acquire(self, earliest: float, duration: float) -> float:
        """Occupy the resource for *duration* starting no earlier than
        *earliest*; returns the completion time."""
        start = earliest if earliest > self.free_at else self.free_at
        self.free_at = start + duration
        return self.free_at


class _Host:
    """The simulated resources of one machine."""

    __slots__ = ("cpu", "nic_out", "nic_in")

    def __init__(self) -> None:
        self.cpu = _Resource()
        self.nic_out = _Resource()
        self.nic_in = _Resource()


class LanSimulation:
    """n processes, one per simulated host, on a switched LAN.

    Args:
        config: group description (or build one with ``n=...``).
        params: timing model constants.
        ipsec: model the IPSec AH overhead (Table 1 contrasts both).
        seed: master seed; per-process RNGs and the key dealer derive
            from it, so runs are bit-for-bit reproducible.
        fault_plan: crashes and Byzantine substitutions to apply.
        jitter_s: uniform random extra latency added per message --
            zero keeps the LAN perfectly symmetric like the paper's
            testbed; a WAN-style run sets this high.  Draws come from a
            *per-link* seeded RNG, so the delays one link sees never
            depend on traffic order across unrelated links.
        tie_break_seed: when given, same-time simulator events execute
            in an order drawn from an RNG seeded on this value instead
            of insertion order (still deterministic per seed); the
            schedule explorer in :mod:`repro.check` sweeps this to
            reach interleavings a fixed order never produces.
        link_model: a :class:`~repro.net.links.LinkModel` of per-link
            behaviors (asymmetric latency, loss-as-retransmit,
            duplication, reordering, detectable corruption) and
            per-host CPU slowdown factors.  Bound to *seed* here; the
            default ``None`` keeps the seed-exact symmetric LAN.
        loop: an existing :class:`~repro.net.simulator.EventLoop` to
            schedule on instead of building a private one.  Several
            simulations sharing one loop advance in a single global
            virtual-time order -- how :class:`repro.shard` runs S
            independent groups side by side.  Mutually exclusive with
            ``tie_break_seed`` (the loop owner decides tie-breaking).
        hosts: existing per-process :class:`_Host` resource bundles to
            contend on instead of fresh ones.  Passing another
            simulation's hosts colocates both groups on the same
            machines: their traffic shares CPU/NIC serialization, the
            honest model for S shards on one box.
    """

    def __init__(
        self,
        config: GroupConfig | None = None,
        *,
        n: int | None = None,
        params: NetworkParameters = LAN_2006,
        ipsec: bool = True,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        jitter_s: float = 0.0,
        tie_break_seed: int | None = None,
        base_factory: ProtocolFactory | None = None,
        shared_coin: bool | None = None,
        link_model: LinkModel | None = None,
        loop: EventLoop | None = None,
        hosts: "list[_Host] | None" = None,
    ):
        if config is None:
            if n is None:
                raise ValueError("pass either a GroupConfig or n=...")
            config = GroupConfig(n)
        self.config = config
        self.params = params
        self.ipsec = ipsec
        self.seed = seed
        self.fault_plan = fault_plan or FaultPlan.failure_free()
        self.fault_plan.validate(config.num_processes, config.num_faulty)
        self.jitter_s = jitter_s
        self.tie_break_seed = tie_break_seed
        if loop is not None:
            if tie_break_seed is not None:
                raise ValueError(
                    "tie_break_seed belongs to the loop owner when sharing a loop"
                )
            self.loop = loop
        else:
            self.loop = EventLoop(
                tie_break_rng=(
                    random.Random(f"{seed}/tie/{tie_break_seed}")
                    if tie_break_seed is not None
                    else None
                )
            )
        # One jitter RNG per ordered link, derived lazily from the master
        # seed: a shared stream would make each link's delay draws depend
        # on the interleaving of *all* traffic, wrecking replay/shrink
        # determinism the moment an unrelated link chats more.
        self._jitter_rngs: dict[tuple[int, int], random.Random] = {}
        self.link_model = link_model.bind(seed) if link_model is not None else None
        self.frames_delivered = 0
        self.frames_dropped_crash = 0
        self.bytes_on_wire = 0
        self.batches_on_wire = 0
        self.link_batches = 0
        self.link_frames_coalesced = 0
        self.link_frames_shed = 0
        self.link_bytes_shed = 0
        self.peak_link_queue_frames = 0
        # Link-model fault accounting (all zero without a link_model).
        self.link_frames_dropped_model = 0
        self.link_frames_duplicated = 0
        self.link_frames_corrupted = 0
        # Per-link send buffers for frame coalescing: frames handed to a
        # link while the sender's CPU is still busy wait here and leave
        # merged, mirroring the TCP sender task draining its queue into
        # one batch per write.  Bounded by config.send_queue_max_frames
        # with priority-aware shedding (0 = unbounded, seed behaviour).
        self._link_pending: dict[tuple[int, int], BoundedSendQueue] = {}

        # Key and coin material is scoped by config.group_tag: two
        # same-seed groups (shards) must not share pairwise MACs or see
        # each other's coin sequence.  An untagged group derives the
        # exact pre-sharding bytes, keeping same-seed replay identical.
        self._dealer = TrustedDealer(
            config.num_processes, seed=config.scoped_seed_bytes(str(seed).encode())
        )
        # shared_coin=None (the default) follows config.bc_coin; the
        # explicit bool keeps the older call sites working and lets tests
        # force a shared coin under a local-coin config.
        use_shared = (
            shared_coin if shared_coin is not None else config.bc_coin == "shared"
        )
        self._coin_dealer = (
            SharedCoinDealer(secret=config.scoped_seed(f"coin/{seed}").encode())
            if use_shared
            else None
        )
        self._honest_factory = (
            base_factory if base_factory is not None else ProtocolFactory.default(config)
        )
        # Incarnation counter per process: frames in flight to or from an
        # earlier incarnation are dropped on arrival (the restart killed
        # the TCP connections they were riding on).
        self._generation = [0] * config.num_processes
        # Periodic callbacks registered per process (see add_ticker);
        # cancelled when their process restarts so they can never fire
        # against a dead incarnation's stack.
        self._tickers: dict[int, list[PeriodicHandle]] = {}
        #: Optional callable invoked with ``(pid, new_stack)`` after
        #: :meth:`restart_process` rebuilds a stack; the invariant
        #: checker uses it to re-attach its observers.
        self.on_stack_rebuilt: Callable[[int, Stack], None] | None = None
        if hosts is not None:
            if len(hosts) != config.num_processes:
                raise ValueError(
                    f"shared hosts list has {len(hosts)} entries for "
                    f"n={config.num_processes}"
                )
            self.hosts = hosts
        else:
            self.hosts = [_Host() for _ in config.process_ids]
        self.stacks: list[Stack] = []
        for pid in config.process_ids:
            self.stacks.append(self._build_stack(pid))

    def _build_stack(self, pid: int) -> Stack:
        factory = self._honest_factory
        transform = self.fault_plan.byzantine.get(pid)
        if transform is not None:
            factory = transform(self._honest_factory)
        incarnation = self._generation[pid]
        rng_tag = self.config.scoped_seed(f"{self.seed}/{pid}") + (
            f"/r{incarnation}" if incarnation else ""
        )
        return Stack(
            self.config,
            pid,
            outbox=self._make_outbox(pid),
            keystore=self._dealer.keystore_for(pid),
            clock=lambda: self.loop.now,
            factory=factory,
            rng=random.Random(rng_tag),
            coin=self._coin_dealer.coin_for(pid) if self._coin_dealer else None,
        )

    def add_ticker(
        self, pid: int, period_s: float, fn: Callable[[], None]
    ) -> PeriodicHandle:
        """Run ``fn()`` every *period_s* simulated seconds on behalf of
        process *pid* -- the simulator analogue of
        :meth:`repro.transport.tcp.RitasNode.add_ticker`.

        The ticker is bound to *pid*'s current incarnation: it cancels
        itself the moment the process crashes or restarts, so a poll
        callback (e.g. a recovery manager's ``poke``) can never fire
        against a dead incarnation's stack.  Prefer this over raw
        ``loop.schedule_every`` for anything holding a stack reference.
        """
        generation = self._generation[pid]

        def tick() -> None:
            if self._generation[pid] != generation or self.fault_plan.is_crashed(
                pid, self.loop.now
            ):
                handle.cancel()
                return
            fn()

        handle = self.loop.schedule_every(period_s, tick)
        self._tickers.setdefault(pid, []).append(handle)
        return handle

    def restart_process(self, pid: int) -> Stack:
        """Restart process *pid* with a brand-new (empty) stack.

        Models a machine reboot: the previous incarnation's protocol
        state is gone, frames still in flight to or from it are dropped
        (its connections died), tickers registered for it via
        :meth:`add_ticker` are cancelled, and any crash entry in the
        fault plan is cleared so the new incarnation sends and receives
        again.  A tracer attached to the old stack is carried over,
        rebound to the simulation clock and stamped with the new
        incarnation number.  The caller re-creates application instances
        on the returned stack and typically attaches a
        :class:`~repro.recovery.RecoveryManager` with
        ``recovering=True`` to rejoin the group.
        """
        self._generation[pid] += 1
        self.fault_plan.revive(pid)
        for handle in self._tickers.pop(pid, []):
            handle.cancel()
        for key in [k for k in self._link_pending if pid in k]:
            del self._link_pending[key]
        old_stack = self.stacks[pid]
        stack = self._build_stack(pid)
        self.stacks[pid] = stack
        if old_stack.tracer.enabled:
            tracer = old_stack.tracer
            tracer.rebind(clock=lambda: self.loop.now, incarnation=self._generation[pid])
            stack.tracer = tracer
        if old_stack.metrics.enabled:
            # The registry outlives the incarnation, exactly like the
            # tracer: post-restart samples keep accumulating into the
            # same histograms, stamped with the new incarnation.
            registry = old_stack.metrics
            registry.rebind(
                clock=lambda: self.loop.now, incarnation=self._generation[pid]
            )
            stack.metrics = registry
        if self.on_stack_rebuilt is not None:
            self.on_stack_rebuilt(pid, stack)
        return stack

    # -- metrics ---------------------------------------------------------------------

    def enable_metrics(
        self,
        sample_interval_s: float | None = None,
        registries: "list[MetricsRegistry] | None" = None,
    ) -> list[MetricsRegistry]:
        """Attach a :class:`~repro.obs.metrics.MetricsRegistry` to every
        stack (idempotent) and return the registries.

        With *sample_interval_s* set, queue-depth gauges are sampled on a
        per-process ticker every that many simulated seconds.  The
        default (``None``) samples only on explicit
        :meth:`sample_metrics` calls -- a ticker keeps the event loop
        non-empty, which would break drive-until-idle ``run()`` loops.

        *registries* attaches caller-supplied registries (one per pid)
        instead of creating private ones -- the sharded simulation hands
        each shard per-shard :meth:`~repro.obs.metrics.MetricsRegistry.labeled`
        views of one shared store.  A tagged group's private registries
        carry a ``group`` const label so multi-group exports stay
        distinguishable.
        """
        for pid in self.config.process_ids:
            stack = self.stacks[pid]
            if not stack.metrics.enabled:
                if registries is not None:
                    registry = registries[pid]
                else:
                    const_labels = {"process": pid, "runtime": "sim"}
                    if self.config.group_tag:
                        const_labels["group"] = self.config.group_tag
                    registry = MetricsRegistry(
                        clock=lambda: self.loop.now, const_labels=const_labels
                    )
                registry.rebind(
                    clock=lambda: self.loop.now, incarnation=self._generation[pid]
                )
                stack.metrics = registry
            if sample_interval_s is not None:
                self.add_ticker(
                    pid, sample_interval_s, lambda pid=pid: self._sample_process(pid)
                )
        return self.metric_registries()

    def metric_registries(self) -> list[MetricsRegistry]:
        """The enabled per-process registries, in pid order (feed these
        to the exporters in :mod:`repro.obs.export`)."""
        return [stack.metrics for stack in self.stacks if stack.metrics.enabled]

    def sample_metrics(self) -> None:
        """Sample queue-depth gauges for every live process, now."""
        for pid in self.config.process_ids:
            if not self.fault_plan.is_crashed(pid, self.loop.now):
                self._sample_process(pid)

    def _sample_process(self, pid: int) -> None:
        stack = self.stacks[pid]
        registry = stack.metrics
        if not registry.enabled:
            return
        stack.sample_gauges()
        for dest in self.config.process_ids:
            if dest == pid:
                continue
            queue = self._link_pending.get((pid, dest))
            registry.gauge("ritas_send_queue_frames", peer=dest).set(
                len(queue) if queue is not None else 0
            )
            registry.gauge("ritas_send_queue_bytes", peer=dest).set(
                queue.bytes if queue is not None else 0
            )

    # -- wire model -----------------------------------------------------------------

    def frame_wire_bytes(self, payload_bytes: int) -> int:
        size = payload_bytes + self.params.header_bytes
        if self.ipsec:
            size += self.params.ipsec_ah_bytes
        return size

    def _cpu_cost(self, wire_bytes: int, fixed: float, pid: int | None = None) -> float:
        cost = fixed + wire_bytes * self.params.cpu_per_byte_s
        if self.ipsec:
            cost += (
                self.params.ipsec_cpu_fixed_s
                + wire_bytes * self.params.ipsec_cpu_per_byte_s
            )
        if self.link_model is not None and pid is not None:
            # A gray-failed host is alive but slow: every CPU-charged
            # operation stretches by its slowdown factor.
            cost *= self.link_model.cpu_factor(pid)
        return cost

    def _link_jitter(self, src: int, dest: int) -> float:
        rng = self._jitter_rngs.get((src, dest))
        if rng is None:
            rng = random.Random(
                self.config.scoped_seed(f"{self.seed}/jitter/{src}->{dest}")
            )
            self._jitter_rngs[(src, dest)] = rng
        return rng.uniform(0.0, self.jitter_s)

    @staticmethod
    def _corrupt_frame(data: bytes) -> bytes:
        # Mangle the frame-version byte to a value the codec is
        # guaranteed to reject (neither FRAME_VERSION nor the batch
        # tag), so corruption is always *detectable*: the receiver
        # counts a malformed-frame drop, nothing enters protocol state.
        return b"\x7f" + data[1:]

    def _make_outbox(self, src: int):
        def outbox(dest: int, data: bytes) -> None:
            self._transmit(src, dest, data)

        return outbox

    def _transmit(self, src: int, dest: int, data: bytes) -> None:
        now = self.loop.now
        if self.fault_plan.is_crashed(src, now):
            return
        params = self.params
        if src == dest:
            # In-process loopback: a function call, not a trip through
            # TCP/IPSec (mirrors the original C library's short circuit).
            local = params.local_delivery_s
            if self.link_model is not None:
                local *= self.link_model.cpu_factor(src)
            done = self.hosts[src].cpu.acquire(now, local)
            self.loop.schedule_at(done, self._deliver, src, dest, data, self._gen(src, dest))
            return
        if self.config.batching:
            # Link-level flush window: frames queued toward this peer
            # before the sender's CPU can take the first one leave merged
            # in one batch -- the discrete-event analogue of the TCP
            # sender task draining its queue into a single write.
            key = (src, dest)
            queue = self._link_pending.get(key)
            if queue is not None:
                self._push_link(src, dest, queue, data)
                return
            queue = BoundedSendQueue(self.config.send_queue_max_frames)
            self._link_pending[key] = queue
            self._push_link(src, dest, queue, data)
            # The flush waits for the sender CPU to drain its queued
            # work, plus any configured linger (Nagle-style: trade a
            # bounded delay for fuller batches).
            flush_at = (
                max(now, self.hosts[src].cpu.free_at) + self.config.batch_window_s
            )
            self.loop.schedule_at(flush_at, self._flush_link, src, dest)
            return
        self._transmit_unit(src, dest, data)

    def _push_link(
        self, src: int, dest: int, queue: BoundedSendQueue, data: bytes
    ) -> None:
        shed = queue.push(data)
        if shed:
            self.link_frames_shed += len(shed)
            self.link_bytes_shed += sum(len(f) for f in shed)
            stack = self.stacks[src]
            stack.stats.sends_shed += len(shed)
            if stack.tracer.enabled:
                stack.tracer.emit(
                    src, KIND_SHED, (), dest=dest, frames=len(shed), queued=len(queue)
                )
        if len(queue) > self.peak_link_queue_frames:
            self.peak_link_queue_frames = len(queue)

    def _flush_link(self, src: int, dest: int) -> None:
        queue = self._link_pending.pop((src, dest), None)
        frames = queue.drain() if queue is not None else None
        if not frames:
            return
        if self.fault_plan.is_crashed(src, self.loop.now):
            return
        cap = self.config.batch_max_frames
        for start in range(0, len(frames), cap):
            chunk = frames[start : start + cap]
            if len(chunk) == 1:
                self._transmit_unit(src, dest, chunk[0])
            else:
                self.link_batches += 1
                self.link_frames_coalesced += len(chunk)
                self._transmit_unit(src, dest, encode_batch(chunk))

    def _gen(self, src: int, dest: int) -> tuple[int, int]:
        """Incarnation stamp a frame carries through the staged events."""
        return (self._generation[src], self._generation[dest])

    def _transmit_unit(self, src: int, dest: int, data: bytes) -> None:
        now = self.loop.now
        params = self.params
        wire_bytes = self.frame_wire_bytes(len(data))
        self.bytes_on_wire += wire_bytes
        if is_batch(data):
            self.batches_on_wire += 1
        send_done = self.hosts[src].cpu.acquire(
            now, self._cpu_cost(wire_bytes, params.cpu_send_s, src)
        )
        nic_done = self.hosts[src].nic_out.acquire(
            send_done, wire_bytes * 8.0 / params.bandwidth_bps
        )
        at_switch = nic_done + params.switch_latency_s
        if self.jitter_s > 0.0:
            at_switch += self._link_jitter(src, dest)
        # Downlink and receiver-CPU time must be claimed when the frame
        # actually reaches each resource (staged events), not now: frames
        # still in flight must never block the receiver's present work.
        gen = self._gen(src, dest)
        model = self.link_model
        if model is None:
            self.loop.schedule_at(at_switch, self._arrive, src, dest, data, wire_bytes, gen)
            return
        copies = model.deliveries(src, dest, wire_bytes, now)
        if not copies:
            self.link_frames_dropped_model += 1
            return
        clean = sum(1 for _, corrupt in copies if not corrupt)
        if clean > 1:
            self.link_frames_duplicated += clean - 1
        for extra_delay, corrupt in copies:
            payload = data
            if corrupt:
                payload = self._corrupt_frame(data)
                self.link_frames_corrupted += 1
            self.loop.schedule_at(
                at_switch + extra_delay, self._arrive, src, dest, payload, wire_bytes, gen
            )

    def _arrive(
        self, src: int, dest: int, data: bytes, wire_bytes: int, gen: tuple[int, int]
    ) -> None:
        now = self.loop.now
        clear_at = self.fault_plan.partition_clear_time(src, dest, now)
        if clear_at > now:
            # The link is partitioned: TCP holds and retransmits the
            # segment; it crosses once the partition heals.
            retransmit_at = clear_at + self.params.switch_latency_s
            self.loop.schedule_at(
                retransmit_at, self._arrive, src, dest, data, wire_bytes, gen
            )
            return
        serialization = wire_bytes * 8.0 / self.params.bandwidth_bps
        downlink_done = self.hosts[dest].nic_in.acquire(now, serialization)
        self.loop.schedule_at(
            downlink_done, self._receive, src, dest, data, wire_bytes, gen
        )

    def _receive(
        self, src: int, dest: int, data: bytes, wire_bytes: int, gen: tuple[int, int]
    ) -> None:
        recv_done = self.hosts[dest].cpu.acquire(
            self.loop.now, self._cpu_cost(wire_bytes, self.params.cpu_recv_s, dest)
        )
        self.loop.schedule_at(recv_done, self._deliver, src, dest, data, gen)

    def _deliver(
        self, src: int, dest: int, data: bytes, gen: tuple[int, int] | None = None
    ) -> None:
        if self.fault_plan.is_crashed(dest, self.loop.now):
            self.frames_dropped_crash += 1
            return
        if gen is not None and gen != self._gen(src, dest):
            # A restart severed the connection this frame was riding on.
            self.frames_dropped_crash += 1
            return
        self.frames_delivered += 1
        self.stacks[dest].receive(src, data)

    # -- driving --------------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.now

    def link_queue_depth(self) -> tuple[int, int]:
        """Total ``(frames, bytes)`` currently parked in link coalescing
        queues across every link -- zero once the network has drained
        (the soak harness asserts exactly that after each fault window).
        """
        frames = sum(len(queue) for queue in self._link_pending.values())
        size = sum(queue.bytes for queue in self._link_pending.values())
        return (frames, size)

    def correct_ids(self) -> list[int]:
        faulty = self.fault_plan.faulty_ids()
        return [pid for pid in self.config.process_ids if pid not in faulty]

    def run(
        self,
        until=None,
        max_time: float = 600.0,
        max_events: int | None = None,
    ) -> str:
        """Advance the simulation; see :meth:`EventLoop.run`."""
        return self.loop.run(until=until, max_time=max_time, max_events=max_events)
