"""Discrete-event network substrate for running the stack in simulation.

The paper evaluates RITAS on a testbed of four 500 MHz Pentium III PCs
linked by a 100 Mbps switch.  This package substitutes that hardware
with a deterministic discrete-event model that captures what the
evaluation section shows actually matters:

- per-message CPU cost at sender and receiver (the dominant term on the
  500 MHz hosts),
- NIC serialization at link rate and receiver-side contention (why the
  fail-stop faultload is *faster* than failure-free),
- frame overheads: Ethernet/IP/TCP headers plus the IPSec AH header and
  hashing cost (Table 1's last column).

See :mod:`repro.net.network` for the calibrated parameter presets.
"""

from repro.net.faults import FaultPlan, Partition
from repro.net.group import SimGroup
from repro.net.links import (
    Chain,
    Degrading,
    Delay,
    Duplicating,
    FlakyMac,
    LinkBehavior,
    LinkModel,
    Lossy,
    Reordering,
    latency_matrix,
    zoned_matrix,
)
from repro.net.network import LAN_2006, WAN_EMULATED, LanSimulation, NetworkParameters
from repro.net.simulator import EventLoop

__all__ = [
    "Chain",
    "Degrading",
    "Delay",
    "Duplicating",
    "EventLoop",
    "FaultPlan",
    "FlakyMac",
    "LAN_2006",
    "LinkBehavior",
    "LinkModel",
    "Lossy",
    "Partition",
    "Reordering",
    "SimGroup",
    "WAN_EMULATED",
    "LanSimulation",
    "NetworkParameters",
    "latency_matrix",
    "zoned_matrix",
]
