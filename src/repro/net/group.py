"""A one-call facade for simulated group runs.

Driving :class:`LanSimulation` directly means creating instances on
every stack, wiring callbacks, and spelling out a run predicate.  For
experiments, notebooks and teaching, :class:`SimGroup` wraps the whole
dance into one call per service, mirroring the paper's service requests
(Section 3.1) at group granularity::

    group = SimGroup(n=4, seed=1)
    group.binary_consensus([1, 0, 1, 1])      # -> [1, 1, 1, 1]
    group.multivalued_consensus([b"v"] * 4)   # -> [b"v", b"v", b"v", b"v"]
    group.atomic_broadcast({0: [b"a"], 2: [b"b"]})
    group.elapsed                             # simulated seconds so far

Each call submits the proposals/broadcasts and advances the simulation
until every correct process has its result.  The same ``SimGroup`` can
issue many calls; instances are numbered internally.
"""

from __future__ import annotations

from typing import Any

from repro.core.atomic_broadcast import AbDelivery
from repro.net.network import LanSimulation


class SimGroup:
    """High-level driver over one :class:`LanSimulation`.

    Accepts either an existing simulation (``SimGroup(sim=...)``) or the
    keyword arguments of :class:`LanSimulation` to build one.
    """

    def __init__(self, sim: LanSimulation | None = None, **sim_kwargs: Any):
        self.sim = sim if sim is not None else LanSimulation(**sim_kwargs)
        self._counter = 0
        self._live = self.sim.correct_ids()

    @property
    def n(self) -> int:
        return self.sim.config.num_processes

    @property
    def elapsed(self) -> float:
        """Simulated seconds consumed so far."""
        return self.sim.now

    def _next_path(self, kind: str) -> tuple:
        self._counter += 1
        return ("simgroup", kind, self._counter)

    def _check_proposals(self, proposals: list[Any]) -> None:
        if len(proposals) != self.n:
            raise ValueError(
                f"need one proposal per process ({self.n}), got {len(proposals)}"
            )

    def _run_consensus(
        self, kind: str, proposals: list[Any], max_time: float
    ) -> list[Any]:
        self._check_proposals(proposals)
        path = self._next_path(kind)
        results: dict[int, Any] = {}
        for pid in self._live:
            instance = self.sim.stacks[pid].create(kind, path)
            instance.on_deliver = (
                lambda _i, value, pid=pid: results.setdefault(pid, value)
            )
        for pid in self._live:
            self.sim.stacks[pid].instance_at(path).propose(proposals[pid])
        reason = self.sim.run(
            until=lambda: len(results) == len(self._live), max_time=self.sim.now + max_time
        )
        if reason != "until":
            raise RuntimeError(f"{kind} did not complete (stop reason: {reason})")
        return [results[pid] for pid in self._live]

    # -- services -------------------------------------------------------------------

    def binary_consensus(self, proposals: list[int], max_time: float = 60.0) -> list[int]:
        """Propose one bit per process; returns each live process's decision."""
        return self._run_consensus("bc", proposals, max_time)

    def multivalued_consensus(
        self, proposals: list[Any], max_time: float = 60.0
    ) -> list[Any]:
        return self._run_consensus("mvc", proposals, max_time)

    def vector_consensus(
        self, proposals: list[Any], max_time: float = 60.0
    ) -> list[list[Any]]:
        return self._run_consensus("vc", proposals, max_time)

    def reliable_broadcast(
        self, sender: int, payload: Any, max_time: float = 60.0
    ) -> list[Any]:
        """One RB from *sender*; returns what each live process delivered."""
        return self._run_broadcast("rb", sender, payload, max_time)

    def echo_broadcast(
        self, sender: int, payload: Any, max_time: float = 60.0
    ) -> list[Any]:
        return self._run_broadcast("eb", sender, payload, max_time)

    def _run_broadcast(
        self, kind: str, sender: int, payload: Any, max_time: float
    ) -> list[Any]:
        if sender not in self._live:
            raise ValueError(f"sender p{sender} is not a live process")
        path = self._next_path(kind)
        results: dict[int, Any] = {}
        for pid in self._live:
            instance = self.sim.stacks[pid].create(kind, path, sender=sender)
            instance.on_deliver = (
                lambda _i, value, pid=pid: results.setdefault(pid, value)
            )
        self.sim.stacks[sender].instance_at(path).broadcast(payload)
        reason = self.sim.run(
            until=lambda: len(results) == len(self._live),
            max_time=self.sim.now + max_time,
        )
        if reason != "until":
            raise RuntimeError(f"{kind} did not complete (stop reason: {reason})")
        return [results[pid] for pid in self._live]

    def atomic_broadcast(
        self, messages: dict[int, list[Any]], max_time: float = 120.0
    ) -> list[list[AbDelivery]]:
        """Broadcast *messages* (sender -> payload list); returns each live
        process's delivery sequence for this call.

        The atomic broadcast session persists across calls (total order
        spans the whole group lifetime); only the deliveries triggered
        by this call are returned.
        """
        path = ("simgroup", "ab")
        orders: dict[int, list[AbDelivery]] = {}
        for pid in self._live:
            existing = self.sim.stacks[pid].instance_at(path)
            if existing is None:
                existing = self.sim.stacks[pid].create("ab", path)
            orders[pid] = []
            existing.on_deliver = (
                lambda _i, delivery, pid=pid: orders[pid].append(delivery)
            )
        expected = 0
        for sender, payloads in messages.items():
            if sender not in self._live:
                raise ValueError(f"sender p{sender} is not a live process")
            for payload in payloads:
                self.sim.stacks[sender].instance_at(path).broadcast(payload)
                expected += 1
        reason = self.sim.run(
            until=lambda: all(len(o) >= expected for o in orders.values()),
            max_time=self.sim.now + max_time,
        )
        if reason != "until":
            raise RuntimeError(f"atomic broadcast stalled (stop reason: {reason})")
        return [orders[pid] for pid in self._live]
