"""A minimal deterministic discrete-event loop.

Events are ``(time, tie_break, sequence, callback)`` tuples in a binary
heap; the sequence number makes execution order total and therefore
reproducible run-to-run for a fixed seed, which the whole evaluation
pipeline relies on.

The *tie_break* component is 0.0 by default, so same-time events run in
scheduling order.  Passing a seeded ``tie_break_rng`` replaces it with a
random draw per event: same-time events then execute in a shuffled --
but still fully deterministic, given the seed -- order.  The schedule
explorer (:mod:`repro.check`) uses this to drive the protocols through
interleavings a fixed insertion order would never produce, exactly the
adversarial-scheduler territory where randomized consensus bugs hide.
"""

from __future__ import annotations

import heapq
import math
from random import Random
from typing import Any, Callable

_Event = tuple[float, float, int, Callable[..., None], tuple[Any, ...]]


class EventLoop:
    """Deterministic event loop with virtual time in seconds.

    Args:
        tie_break_rng: when given, same-time events execute in an order
            drawn from this RNG instead of insertion order.  Execution
            stays deterministic for a fixed RNG seed.
    """

    def __init__(self, tie_break_rng: Random | None = None) -> None:
        self._heap: list[_Event] = []
        self._sequence = 0
        self._now = 0.0
        self._tie_rng = tie_break_rng
        self.events_processed = 0
        #: Optional callable invoked (with no arguments) after every
        #: processed event; the invariant checker hangs off this.
        self.on_event: Callable[[], None] | None = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def pending(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` *delay* seconds from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual *time* (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        tie_break = self._tie_rng.random() if self._tie_rng is not None else 0.0
        heapq.heappush(self._heap, (time, tie_break, self._sequence, fn, args))
        self._sequence += 1

    def schedule_every(
        self, period: float, fn: Callable[..., None], *args: Any
    ) -> "PeriodicHandle":
        """Run ``fn(*args)`` every *period* seconds (first run one period
        from now) until the returned handle is cancelled.

        Note that a pending periodic event keeps the loop's queue
        non-empty, so drive the simulation with ``until=...`` or
        ``max_time=...`` rather than waiting for it to go idle.
        """
        if period <= 0:
            raise ValueError(f"period must be positive (got {period})")
        handle = PeriodicHandle()

        def tick() -> None:
            if handle.cancelled:
                return
            fn(*args)
            if not handle.cancelled:
                self.schedule(period, tick)

        self.schedule(period, tick)
        return handle

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_time: float = math.inf,
        max_events: int | None = None,
    ) -> str:
        """Process events in order.

        Stops when the *until* predicate becomes true (checked after
        each event), the queue drains ("idle"), virtual time would pass
        *max_time*, or *max_events* have run.  Returns the stop reason:
        one of ``"until"``, ``"idle"``, ``"max_time"``, ``"max_events"``.
        """
        if until is not None and until():
            return "until"
        # Tight loop: locals for the heap and heappop, and one pop per
        # event -- an over-horizon event is pushed back unchanged
        # instead of being peeked every iteration.  events_processed is
        # bumped per event, *before* the hooks run: on_event/until
        # callbacks (the invariant checker) read it as the index of the
        # event that just executed.
        heap = self._heap
        pop = heapq.heappop
        remaining = -1 if max_events is None else max_events
        while heap:
            if remaining == 0:
                return "max_events"
            event = pop(heap)
            time = event[0]
            if time > max_time:
                heapq.heappush(heap, event)
                return "max_time"
            self._now = time
            event[3](*event[4])
            self.events_processed += 1
            remaining -= 1
            on_event = self.on_event
            if on_event is not None:
                on_event()
            if until is not None and until():
                return "until"
        return "idle"


class PeriodicHandle:
    """Cancellation token for :meth:`EventLoop.schedule_every`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
