"""Pluggable per-link behavior models for the simulated network.

The paper's testbed is one perfectly symmetric switch; Section 4.2
cautions that the one-round fast path "may not survive a more
asymmetrical environment, like a WAN".  This module makes that
environment constructible: every ordered pair of hosts gets a
:class:`LinkBehavior` that decides, per frame, *when* (and in what
shape) copies of the frame reach the far side.

The contract is deliberately narrow so behaviors stay composable and
deterministic: :meth:`LinkBehavior.deliveries` receives a per-link
seeded RNG plus the frame's metadata and returns a list of
``(extra_delay_s, corrupt)`` pairs -- one entry per copy that reaches
the destination (an empty list drops the frame outright).  The
simulator schedules one arrival per entry on top of its usual
CPU/NIC/switch timing.

Two modeling rules keep the catalog faithful to the stack's
assumptions:

- **Loss is retransmission.**  The protocols assume reliable
  point-to-point channels (TCP in the paper), so :class:`Lossy` and the
  clean copy behind a :class:`FlakyMac` corruption model packet loss as
  a retransmission *delay* (geometric RTO backoff), never as silent
  message loss -- exactly how the simulator already treats partitions.
- **Corruption is detectable.**  A ``corrupt`` copy reaches the stack
  with its frame-version byte mangled, which the wire codec rejects
  deterministically (``WireFormatError``); the receiver counts and
  scores it, it never enters protocol state.

Determinism: a :class:`LinkModel` lazily derives one ``random.Random``
per ordered link from the simulation's master seed, so the draws on one
link never depend on traffic order across unrelated links (the same
property the per-link jitter RNG fix gives plain ``jitter_s``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

#: One scheduled copy of a frame: extra latency past the switch, and
#: whether the copy arrives corrupted (detectably -- see module doc).
Delivery = tuple[float, bool]

#: Bound on consecutive simulated retransmissions, so a loss
#: probability of 1.0 cannot loop forever (2**16 RTOs is "down").
_MAX_RETRANSMITS = 16


@dataclass(frozen=True)
class LinkBehavior:
    """A perfect link: every frame arrives once, immediately, intact.

    Subclasses override :meth:`deliveries`; they must draw randomness
    only from *rng* (the per-link seeded stream) so runs stay
    replayable.
    """

    def deliveries(
        self, rng: random.Random, *, src: int, dest: int, size: int, now: float
    ) -> list[Delivery]:
        return [(0.0, False)]


@dataclass(frozen=True)
class Delay(LinkBehavior):
    """Fixed propagation delay plus optional uniform jitter."""

    base_s: float = 0.0
    jitter_s: float = 0.0

    def deliveries(self, rng, *, src, dest, size, now):
        extra = self.base_s
        if self.jitter_s > 0.0:
            extra += rng.uniform(0.0, self.jitter_s)
        return [(extra, False)]


@dataclass(frozen=True)
class Lossy(LinkBehavior):
    """Packet loss under a reliable transport: retransmit-after-RTO.

    Each transmission attempt is lost with probability *p*; every loss
    adds one RTO (doubling per attempt, TCP-style) before the copy that
    finally gets through.  The frame always arrives -- the channel is
    reliable -- it just arrives late, which is what loss does to a
    protocol stack riding TCP.
    """

    p: float = 0.05
    rto_s: float = 0.02

    def deliveries(self, rng, *, src, dest, size, now):
        delay = 0.0
        rto = self.rto_s
        for _ in range(_MAX_RETRANSMITS):
            if rng.random() >= self.p:
                break
            delay += rto
            rto *= 2.0
        return [(delay, False)]


@dataclass(frozen=True)
class Duplicating(LinkBehavior):
    """A link that occasionally delivers a frame twice.

    With probability *p* a second, identical copy arrives
    *echo_delay_s* later (a retransmission the original survived, a
    misbehaving middlebox).  The protocols must be idempotent under
    duplication; this behavior sweeps that claim.
    """

    p: float = 0.1
    echo_delay_s: float = 0.002

    def deliveries(self, rng, *, src, dest, size, now):
        copies: list[Delivery] = [(0.0, False)]
        if rng.random() < self.p:
            copies.append((self.echo_delay_s, False))
        return copies


@dataclass(frozen=True)
class Reordering(LinkBehavior):
    """A link that reorders: some frames take a detour.

    With probability *p* a frame is held an extra ``U(0, spread_s)``,
    letting later frames overtake it -- the asynchronous-model
    adversary's favorite move, now drawn from a seeded distribution.
    """

    p: float = 0.3
    spread_s: float = 0.005

    def deliveries(self, rng, *, src, dest, size, now):
        if rng.random() < self.p:
            return [(rng.uniform(0.0, self.spread_s), False)]
        return [(0.0, False)]


@dataclass(frozen=True)
class FlakyMac(LinkBehavior):
    """A NIC that intermittently corrupts frames in flight (gray failure).

    With probability *p* the frame arrives *corrupted* (the receiver's
    codec rejects it deterministically) and the reliable transport's
    clean retransmission follows one RTO later.  The host is alive and
    mostly healthy -- exactly the failure shape that evades both crash
    detection and Byzantine accusation.
    """

    p: float = 0.05
    rto_s: float = 0.01

    def deliveries(self, rng, *, src, dest, size, now):
        if rng.random() < self.p:
            return [(0.0, True), (self.rto_s, False)]
        return [(0.0, False)]


@dataclass(frozen=True)
class Degrading(LinkBehavior):
    """A link whose latency ramps up over simulated time.

    From *start_s* the extra delay climbs linearly over *ramp_s*
    seconds to *max_extra_s* and stays there -- a failing transceiver,
    a congesting path.  Gray failure in its slow-burn form: no single
    event to alarm on, just a property that quietly rots.
    """

    start_s: float = 0.0
    ramp_s: float = 1.0
    max_extra_s: float = 0.01

    def deliveries(self, rng, *, src, dest, size, now):
        progress = (now - self.start_s) / self.ramp_s if self.ramp_s > 0 else 1.0
        progress = min(1.0, max(0.0, progress))
        return [(self.max_extra_s * progress, False)]


@dataclass(frozen=True)
class Chain(LinkBehavior):
    """Compose behaviors: delays add, corruption ORs, copies multiply.

    ``Chain((Delay(0.01), Lossy(0.02)))`` is a 10 ms link that also
    loses packets.  Each stage expands every copy the previous stages
    produced, so a Duplicating stage behind a Lossy one duplicates the
    retransmitted copy too.
    """

    parts: tuple[LinkBehavior, ...] = ()

    def deliveries(self, rng, *, src, dest, size, now):
        copies: list[Delivery] = [(0.0, False)]
        for part in self.parts:
            expanded: list[Delivery] = []
            for delay, corrupt in copies:
                for extra, extra_corrupt in part.deliveries(
                    rng, src=src, dest=dest, size=size, now=now
                ):
                    expanded.append((delay + extra, corrupt or extra_corrupt))
            copies = expanded
        return copies


class LinkModel:
    """Per-link behaviors plus per-host slowdown factors for one run.

    Built once and handed to :class:`~repro.net.network.LanSimulation`
    via ``link_model=``; the simulation binds it to the master seed
    (:meth:`bind`), after which every ordered link draws from its own
    ``random.Random`` stream.  Behaviors are swappable at runtime
    (:meth:`set_default`, :meth:`set_behavior`,
    :meth:`set_host_slowdown`), which is what lets the soak harness
    rotate fault modes through one long-lived simulation.

    Args:
        default: behavior for links without an override (perfect link).
        behaviors: initial ``(src, dest) -> behavior`` overrides.
        host_slowdowns: initial ``pid -> CPU cost multiplier`` map (a
            factor of 100.0 is the paper-adjacent "alive but 100x slow"
            gray failure).
    """

    def __init__(
        self,
        default: LinkBehavior | None = None,
        behaviors: dict[tuple[int, int], LinkBehavior] | None = None,
        host_slowdowns: dict[int, float] | None = None,
    ):
        self._initial_default = default if default is not None else LinkBehavior()
        self._default = self._initial_default
        self._behaviors: dict[tuple[int, int], LinkBehavior] = dict(behaviors or {})
        self._initial_behaviors = dict(self._behaviors)
        self._slowdowns: dict[int, float] = dict(host_slowdowns or {})
        self._initial_slowdowns = dict(self._slowdowns)
        self._seed: int | None = None
        self._rngs: dict[tuple[int, int], random.Random] = {}

    # -- seeding ---------------------------------------------------------------------

    def bind(self, seed: int) -> "LinkModel":
        """Derive per-link RNG streams from the simulation's *seed*.

        Called by the simulation's constructor; rebinding resets the
        streams (a fresh run replays identically).
        """
        self._seed = seed
        self._rngs.clear()
        return self

    def _rng(self, src: int, dest: int) -> random.Random:
        rng = self._rngs.get((src, dest))
        if rng is None:
            if self._seed is None:
                raise RuntimeError("LinkModel.bind(seed) must run before use")
            rng = random.Random(f"{self._seed}/linkmodel/{src}->{dest}")
            self._rngs[(src, dest)] = rng
        return rng

    # -- configuration ---------------------------------------------------------------

    def behavior_for(self, src: int, dest: int) -> LinkBehavior:
        return self._behaviors.get((src, dest), self._default)

    def set_default(self, behavior: LinkBehavior) -> None:
        """Swap the behavior of every link without an override."""
        self._default = behavior

    def set_behavior(self, src: int, dest: int, behavior: LinkBehavior) -> None:
        """Override one ordered link."""
        self._behaviors[(src, dest)] = behavior

    def set_host_slowdown(self, pid: int, factor: float) -> None:
        """Multiply host *pid*'s simulated CPU costs by *factor*
        (1.0 restores full speed)."""
        if factor == 1.0:
            self._slowdowns.pop(pid, None)
        else:
            self._slowdowns[pid] = factor

    def cpu_factor(self, pid: int) -> float:
        return self._slowdowns.get(pid, 1.0)

    def reset(self) -> None:
        """Restore the constructor-time behaviors and slowdowns (the
        soak harness calls this when a fault window clears).  RNG
        streams are kept -- clearing a fault must not replay past
        draws."""
        self._default = self._initial_default
        self._behaviors = dict(self._initial_behaviors)
        self._slowdowns = dict(self._initial_slowdowns)

    # -- the hook the simulator calls -------------------------------------------------

    def deliveries(self, src: int, dest: int, size: int, now: float) -> list[Delivery]:
        """All copies of one frame that reach *dest* (possibly none)."""
        return self.behavior_for(src, dest).deliveries(
            self._rng(src, dest), src=src, dest=dest, size=size, now=now
        )


def latency_matrix(
    matrix: Sequence[Sequence[float]], jitter_s: float = 0.0
) -> LinkModel:
    """A :class:`LinkModel` from an explicit per-link delay matrix.

    ``matrix[src][dest]`` is the extra one-way propagation delay in
    seconds (the diagonal is ignored -- loopback skips the wire).
    """
    behaviors: dict[tuple[int, int], LinkBehavior] = {}
    for src, row in enumerate(matrix):
        for dest, base_s in enumerate(row):
            if src != dest:
                behaviors[(src, dest)] = Delay(base_s=base_s, jitter_s=jitter_s)
    return LinkModel(behaviors=behaviors)


def zoned_matrix(
    zones: Iterable[Iterable[int]],
    *,
    intra_s: float = 2e-4,
    inter_s: float = 0.015,
    jitter_s: float = 0.0,
) -> LinkModel:
    """A geo-replication latency matrix: cheap within a zone, expensive
    across zones.

    *zones* partitions the process ids (e.g. ``((0, 1), (2, 3))`` for
    two sites); same-zone links get *intra_s*, cross-zone links
    *inter_s*, each with optional uniform *jitter_s* on top.  This is
    the asymmetric-WAN shape Section 4.2 warns about, as one line.
    """
    zone_of: dict[int, int] = {}
    for index, zone in enumerate(zones):
        for pid in zone:
            zone_of[pid] = index
    if not zone_of:
        raise ValueError("zones must name at least one process")
    size = max(zone_of) + 1
    matrix = [
        [
            intra_s if zone_of.get(src) == zone_of.get(dest) else inter_s
            for dest in range(size)
        ]
        for src in range(size)
    ]
    return latency_matrix(matrix, jitter_s=jitter_s)
