"""Executable checks of the paper's Section 4.3 claims.

EXPERIMENTS.md *documents* the reproduction; this module *checks* it:
each claim from the paper's summary of results becomes a function that
runs the relevant mini-experiment and returns a verdict with evidence.
``ritas-bench claims`` runs them all, and the test suite pins them.

The checks use reduced workloads (seconds, not minutes); the claims are
about shape, which survives the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.eval.atomic_burst import run_burst
from repro.eval.stack_analysis import PROTOCOL_ORDER, measure_protocol_latency


@dataclass(frozen=True)
class ClaimResult:
    """Verdict for one paper claim."""

    number: int
    claim: str
    holds: bool
    evidence: str


def check_latency_ordering(seed: int = 2) -> ClaimResult:
    """Claim 1: EB < RB < BC < MVC < VC < AB (Table 1)."""
    latencies = {
        protocol: measure_protocol_latency(protocol, runs=1, seed=seed)
        for protocol in PROTOCOL_ORDER
    }
    values = [latencies[p] for p in PROTOCOL_ORDER]
    return ClaimResult(
        1,
        "latency ordering EB < RB < BC < MVC < VC < AB",
        values == sorted(values),
        " < ".join(f"{p}={v * 1e6:.0f}us" for p, v in latencies.items()),
    )


def check_ipsec_overhead(seed: int = 2) -> ClaimResult:
    """Claim 2: message integrity (IPSec AH) costs double-digit percent."""
    with_ipsec = measure_protocol_latency("rb", ipsec=True, runs=2, seed=seed)
    without = measure_protocol_latency("rb", ipsec=False, runs=2, seed=seed)
    overhead = with_ipsec / without - 1
    return ClaimResult(
        2,
        "IPSec adds measurable latency overhead",
        0.0 < overhead < 1.0,
        f"reliable broadcast overhead {overhead:.0%}",
    )


def check_one_round_consensus(seed: int = 2) -> ClaimResult:
    """Claim 3: consensus decides in one round under every faultload."""
    rounds = {
        faultload: run_burst(32, 10, faultload, seed=seed).max_bc_rounds
        for faultload in ("failure-free", "fail-stop", "byzantine")
    }
    return ClaimResult(
        3,
        "binary consensus decides in one round under all faultloads",
        all(value == 1 for value in rounds.values()),
        str(rounds),
    )


def check_no_default_decisions(seed: int = 2) -> ClaimResult:
    """Claim 4: multi-valued consensus never lands on ⊥."""
    bottoms = {
        faultload: run_burst(32, 10, faultload, seed=seed).mvc_default_decisions
        for faultload in ("failure-free", "fail-stop", "byzantine")
    }
    return ClaimResult(
        4,
        "multi-valued consensus never decides the default value",
        all(value == 0 for value in bottoms.values()),
        str(bottoms),
    )


def check_throughput_shape(seed: int = 2) -> ClaimResult:
    """Claim 5: L_burst grows with k; T_max falls with message size."""
    small = run_burst(32, 10, "failure-free", seed=seed)
    large = run_burst(128, 10, "failure-free", seed=seed)
    fat = run_burst(32, 10000, "failure-free", seed=seed)
    holds = (
        large.latency_s > small.latency_s
        and fat.throughput_msgs_s < small.throughput_msgs_s
    )
    return ClaimResult(
        5,
        "burst latency grows with k; throughput falls with message size",
        holds,
        f"L(32)={small.latency_s * 1e3:.0f}ms L(128)={large.latency_s * 1e3:.0f}ms; "
        f"T(10B)={small.throughput_msgs_s:.0f} T(10KB)={fat.throughput_msgs_s:.0f} msg/s",
    )


def check_fail_stop_speedup(seed: int = 2) -> ClaimResult:
    """Claim 6: a crash makes the system faster (less contention)."""
    free = run_burst(64, 10, "failure-free", seed=seed)
    stop = run_burst(64, 10, "fail-stop", seed=seed)
    return ClaimResult(
        6,
        "fail-stop runs faster than failure-free",
        stop.latency_s < free.latency_s,
        f"failure-free {free.latency_s * 1e3:.0f}ms vs fail-stop "
        f"{stop.latency_s * 1e3:.0f}ms",
    )


def check_byzantine_immunity(seed: int = 2) -> ClaimResult:
    """Claim 7: the Section 4.2 attack costs nothing."""
    free = run_burst(64, 10, "failure-free", seed=seed)
    byz = run_burst(64, 10, "byzantine", seed=seed)
    overhead = byz.latency_s / free.latency_s - 1
    return ClaimResult(
        7,
        "Byzantine faultload performance ~ failure-free",
        abs(overhead) < 0.25,
        f"attack overhead {overhead:+.1%}",
    )


def check_agreement_dilution(seed: int = 2) -> ClaimResult:
    """Claim 8: agreement cost ~92% at k=4, a few percent at k=1000."""
    small = run_burst(4, 10, "failure-free", seed=seed)
    large = run_burst(1000, 10, "failure-free", seed=seed)
    holds = (
        small.agreement_cost > 0.85
        and large.agreement_cost < 0.08
        and large.agreements <= 3
    )
    return ClaimResult(
        8,
        "agreement cost dilutes (~92% at k=4 to a few % at k=1000, ~2 agreements)",
        holds,
        f"k=4: {small.agreement_cost:.1%}; k=1000: {large.agreement_cost:.1%} "
        f"in {large.agreements} agreements",
    )


ALL_CHECKS: tuple[Callable[[int], ClaimResult], ...] = (
    check_latency_ordering,
    check_ipsec_overhead,
    check_one_round_consensus,
    check_no_default_decisions,
    check_throughput_shape,
    check_fail_stop_speedup,
    check_byzantine_immunity,
    check_agreement_dilution,
)


def check_all(seed: int = 2) -> list[ClaimResult]:
    """Run every claim check; returns verdicts in claim order."""
    return [check(seed) for check in ALL_CHECKS]


def format_results(results: list[ClaimResult]) -> str:
    lines = ["Paper claims (Section 4.3) -- reproduction verdicts:", ""]
    for result in results:
        mark = "PASS" if result.holds else "FAIL"
        lines.append(f"  [{mark}] {result.number}. {result.claim}")
        lines.append(f"         {result.evidence}")
    passed = sum(1 for r in results if r.holds)
    lines.append("")
    lines.append(f"{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
