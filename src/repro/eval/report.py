"""Plain-text rendering of benchmark results next to the paper's numbers."""

from __future__ import annotations

from repro.eval import paper_data
from repro.eval.atomic_burst import BurstResult
from repro.eval.stack_analysis import LatencyRow


def format_table1(rows: list[LatencyRow]) -> str:
    """Render Table 1: measured vs paper, with IPSec overhead columns."""
    lines = [
        "Table 1 -- average latency for isolated executions (microseconds)",
        f"{'protocol':<24}{'w/IPSec':>10}{'w/o':>10}{'ovh':>6}"
        f"{'p50':>9}{'p95':>9}{'p99':>9}"
        f"{'paper w/':>10}{'paper w/o':>10}{'ovh':>6}",
    ]
    for row in rows:
        paper = paper_data.TABLE1_US[row.protocol]
        paper_ovh = paper["ipsec"] / paper["plain"] - 1.0
        lines.append(
            f"{row.name:<24}"
            f"{row.with_ipsec_us:>10.0f}{row.without_ipsec_us:>10.0f}"
            f"{row.ipsec_overhead:>6.0%}"
            f"{row.p50_us:>9.0f}{row.p95_us:>9.0f}{row.p99_us:>9.0f}"
            f"{paper['ipsec']:>10}{paper['plain']:>10}{paper_ovh:>6.0%}"
        )
    return "\n".join(lines)


def format_burst_sweep(results: list[BurstResult], title: str) -> str:
    """Render one of Figures 4-6 as latency/throughput series."""
    lines = [
        title,
        f"{'m (B)':>7}{'k':>6}{'latency ms':>12}{'msgs/s':>9}"
        f"{'p50 ms':>9}{'p99 ms':>9}"
        f"{'agr%':>7}{'agrs':>6}{'bc rnds':>8}{'mvc ⊥':>6}",
    ]
    for r in results:
        lines.append(
            f"{r.message_bytes:>7}{r.burst_size:>6}"
            f"{r.latency_s * 1e3:>12.1f}{r.throughput_msgs_s:>9.0f}"
            f"{r.latency_p50_s * 1e3:>9.1f}{r.latency_p99_s * 1e3:>9.1f}"
            f"{r.agreement_cost:>7.1%}{r.agreements:>6}"
            f"{r.max_bc_rounds:>8}{r.mvc_default_decisions:>6}"
        )
    return "\n".join(lines)


def tmax_by_size(results: list[BurstResult]) -> dict[int, float]:
    """Maximum observed throughput per message size (the T_max of the
    paper: where the throughput curve stabilizes)."""
    tmax: dict[int, float] = {}
    for r in results:
        tmax[r.message_bytes] = max(
            tmax.get(r.message_bytes, 0.0), r.throughput_msgs_s
        )
    return tmax


def format_fig7(results: list[BurstResult]) -> str:
    """Render Figure 7: relative agreement cost versus burst size."""
    lines = [
        "Figure 7 -- relative cost of agreement (agreement broadcasts / all broadcasts)",
        f"{'k':>6}{'agreement':>11}{'total':>8}{'cost':>8}",
    ]
    for r in results:
        lines.append(
            f"{r.burst_size:>6}{r.agreement_broadcasts:>11}"
            f"{r.total_broadcasts:>8}{r.agreement_cost:>8.1%}"
        )
    paper = paper_data.FIG7_AGREEMENT_COST
    lines.append(f"paper anchors: k=4 -> {paper[4]:.0%}, k=1000 -> {paper[1000]:.1%}")
    return "\n".join(lines)
