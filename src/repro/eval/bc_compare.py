"""Head-to-head comparison of the binary-consensus engines.

In the style of the experimental BFT-comparison literature (arXiv
2004.09547): the same workload is run over every registered
(engine, coin) pair and three views are reported --

- **isolated latency** (Table-1 style): wall-clock seconds from propose
  to the observer's decision, one instance on the simulated 2006 LAN;
- **burst throughput**: atomic-broadcast burst delivery rate with the
  engine underneath every agreement round
  (:func:`repro.eval.atomic_burst.run_burst` with the engine knobs);
- **rounds-to-decide distribution**: split proposals over many shuffled
  adversarial-ish schedules, with an optional always-zero Byzantine
  attacker.  This is where the engines actually differ: the local-coin
  Bracha engine has a geometric tail (each process's coin must line up),
  the shared-coin engines decide in a bounded number of rounds.

All runs are seeded and schedule-deterministic, so the distributions --
not just their summary statistics -- are reproducible run to run.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any

from repro.adversary.strategies import byzantine_paper_faultload
from repro.core.config import GroupConfig
from repro.core.stack import ProtocolFactory, Stack
from repro.crypto.coin import SharedCoinDealer
from repro.crypto.keys import TrustedDealer
from repro.eval.atomic_burst import run_burst
from repro.net.network import LAN_2006, LanSimulation, NetworkParameters

#: The engine/coin combinations under comparison.  (crain, local) is
#: absent by construction: the Crain decide rule is unsafe over
#: independent local coins and the config layer rejects it.
ENGINE_PAIRS: tuple[tuple[str, str], ...] = (
    ("bracha", "local"),
    ("bracha", "shared"),
    ("crain", "shared"),
)


def pair_config(engine: str, coin: str, n: int = 4, **kwargs: Any) -> GroupConfig:
    """Group config running *engine* over *coin*."""
    return GroupConfig(n, bc_engine=engine, bc_coin=coin, **kwargs)


def isolated_latency(
    engine: str,
    coin: str,
    *,
    n: int = 4,
    seed: int = 0,
    ipsec: bool = True,
    params: NetworkParameters = LAN_2006,
    unanimous: bool = True,
) -> float:
    """Seconds from propose to process 0's decision, one instance on the
    simulated LAN (Table-1 style)."""
    sim = LanSimulation(pair_config(engine, coin, n), seed=seed, ipsec=ipsec, params=params)
    done_at: list[float | None] = [None]

    def observe(_instance, _event) -> None:
        if done_at[0] is None:
            done_at[0] = sim.now

    for pid in sim.config.process_ids:
        instance = sim.stacks[pid].create("bc", ("bench",))
        if pid == 0:
            instance.on_deliver = observe
    for pid in sim.config.process_ids:
        proposal = 1 if unanimous else pid % 2
        sim.stacks[pid].instance_at(("bench",)).propose(proposal)
    reason = sim.run(until=lambda: done_at[0] is not None, max_time=120.0)
    if reason != "until" or done_at[0] is None:
        raise RuntimeError(f"bc/{engine}+{coin} did not decide (stop reason: {reason})")
    return done_at[0]


def burst_throughput(
    engine: str,
    coin: str,
    *,
    burst: int = 16,
    message_bytes: int = 100,
    n: int = 4,
    seed: int = 0,
) -> float:
    """Atomic-broadcast burst throughput (msgs/s) with the engine under
    every agreement round."""
    result = run_burst(
        burst,
        message_bytes,
        n=n,
        seed=seed,
        metrics=False,
        config_kwargs={"bc_engine": engine, "bc_coin": coin},
    )
    return result.throughput_msgs_s


def decision_rounds(
    engine: str,
    coin: str,
    seed: int,
    *,
    n: int = 4,
    attacker: bool = False,
) -> int:
    """One split-proposal binary consensus on a shuffled schedule;
    returns the latest decision round among correct processes.

    With *attacker*, process ``n - 1`` runs the paper's always-zero
    Byzantine strategy (grafted onto whichever engine is configured);
    correct proposals stay split so the adversary can actually steer.
    """
    config = pair_config(engine, coin, n)
    dealer = TrustedDealer(n, seed=b"bc-compare")
    # The dealer secret varies with the sample seed: under a *fixed*
    # secret every sample sees the same per-round coin sequence for this
    # instance path, which degenerates the distribution of any engine
    # whose decide rule must *match* the coin (Crain) to a single value.
    coin_dealer = (
        SharedCoinDealer(secret=f"bc-compare-shared/{seed}".encode())
        if coin == "shared"
        else None
    )
    honest = ProtocolFactory.default(config)
    pairs: dict[tuple[int, int], list[bytes]] = {}
    stacks: list[Stack] = []
    for pid in range(n):
        factory = honest
        if attacker and pid == n - 1:
            factory = byzantine_paper_faultload(honest)
        stacks.append(
            Stack(
                config,
                pid,
                outbox=lambda dest, data, pid=pid: pairs.setdefault(
                    (pid, dest), []
                ).append(data),
                keystore=dealer.keystore_for(pid),
                factory=factory,
                rng=random.Random(f"{seed}/{pid}"),
                coin=coin_dealer.coin_for(pid) if coin_dealer else None,
            )
        )
    rng = random.Random(f"schedule/{seed}")
    for stack in stacks:
        stack.create("bc", ("b",))
    correct = range(n - 1) if attacker else range(n)
    for pid, stack in enumerate(stacks):
        stack.instance_at(("b",)).propose(1 if pid < (n + 1) // 2 else 0)
    while True:
        live = [pair for pair, queue in pairs.items() if queue]
        if not live:
            break
        src, dest = rng.choice(live)
        stacks[dest].receive(src, pairs[(src, dest)].pop(0))
    rounds = []
    for pid in correct:
        instance = stacks[pid].instance_at(("b",))
        if not instance.decided:
            raise RuntimeError(f"bc/{engine}+{coin} seed {seed}: p{pid} never decided")
        rounds.append(instance.decision_round)
    return max(rounds)


def rounds_distribution(
    engine: str,
    coin: str,
    *,
    samples: int = 120,
    n: int = 4,
    attacker: bool = False,
    base_seed: int = 0,
) -> Counter:
    """Decision-round distribution over *samples* shuffled schedules."""
    return Counter(
        decision_rounds(engine, coin, base_seed + seed, n=n, attacker=attacker)
        for seed in range(samples)
    )


def head_to_head(
    *,
    samples: int = 60,
    n: int = 4,
    attacker: bool = True,
    pairs: tuple[tuple[str, str], ...] = ENGINE_PAIRS,
) -> dict[str, dict[str, Any]]:
    """The full comparison table, one entry per (engine, coin) pair."""
    table: dict[str, dict[str, Any]] = {}
    for engine, coin in pairs:
        dist = rounds_distribution(engine, coin, samples=samples, n=n, attacker=attacker)
        total = sum(dist.values())
        table[f"{engine}+{coin}"] = {
            "engine": engine,
            "coin": coin,
            "isolated_latency_s": isolated_latency(engine, coin, n=n),
            "burst_throughput_msgs_s": burst_throughput(engine, coin, n=n),
            "rounds_histogram": dict(sorted(dist.items())),
            "rounds_mean": sum(r * c for r, c in dist.items()) / total,
            "rounds_max": max(dist),
            "rounds_tail_gt2": sum(c for r, c in dist.items() if r > 2),
        }
    return table
