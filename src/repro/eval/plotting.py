"""Terminal plots for the benchmark figures.

The paper presents Figures 4-7 as latency/throughput line charts; this
module renders the same series as ASCII charts so ``ritas-bench`` can
show curve *shapes* directly in the terminal with no plotting
dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.eval.atomic_burst import BurstResult

CHART_WIDTH = 64
CHART_HEIGHT = 14
MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One labelled line: x values and y values, same length."""

    label: str
    xs: list[float]
    ys: list[float]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("series x and y lengths differ")
        if not self.xs:
            raise ValueError("series needs at least one point")


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    if hi <= lo:
        return 0
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    position = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, round(position * (steps - 1))))


def render_chart(
    series: list[Series],
    *,
    title: str,
    x_label: str,
    y_label: str,
    log_x: bool = False,
    log_y: bool = False,
    width: int = CHART_WIDTH,
    height: int = CHART_HEIGHT,
) -> str:
    """Render line series into a monospace chart."""
    if not series:
        raise ValueError("nothing to plot")
    xs = [x for s in series for x in s.xs]
    ys = [y for s in series for y in s.ys]
    if (log_x and min(xs) <= 0) or (log_y and min(ys) <= 0):
        raise ValueError("log scale requires positive values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for index, one in enumerate(series):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(one.xs, one.ys):
            column = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            grid[row][column] = marker
    lines = [title]
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        elif row_index == height // 2:
            prefix = y_label[: gutter - 1].rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * (gutter + 1) + x_axis)
    lines.append(" " * (gutter + 1) + x_label)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def burst_latency_chart(results: list[BurstResult], title: str) -> str:
    """The latency half of Figures 4-6: one series per message size."""
    return render_chart(
        _series_by_size(results, lambda r: r.latency_s * 1e3),
        title=title,
        x_label="burst size k (log)",
        y_label="ms",
        log_x=True,
        log_y=True,
    )


def burst_throughput_chart(results: list[BurstResult], title: str) -> str:
    """The throughput half of Figures 4-6."""
    return render_chart(
        _series_by_size(results, lambda r: r.throughput_msgs_s),
        title=title,
        x_label="burst size k (log)",
        y_label="msg/s",
        log_x=True,
    )


def agreement_cost_chart(results: list[BurstResult]) -> str:
    """Figure 7's dilution curve."""
    ordered = sorted(results, key=lambda r: r.burst_size)
    series = Series(
        label="agreement cost",
        xs=[float(r.burst_size) for r in ordered],
        ys=[r.agreement_cost * 100 for r in ordered],
    )
    return render_chart(
        [series],
        title="Figure 7 -- relative cost of agreement (%)",
        x_label="burst size k (log)",
        y_label="%",
        log_x=True,
    )


def _series_by_size(results, metric) -> list[Series]:
    by_size: dict[int, list[BurstResult]] = {}
    for result in results:
        by_size.setdefault(result.message_bytes, []).append(result)
    series = []
    for size in sorted(by_size):
        ordered = sorted(by_size[size], key=lambda r: r.burst_size)
        series.append(
            Series(
                label=f"{size} B",
                xs=[float(r.burst_size) for r in ordered],
                ys=[metric(r) for r in ordered],
            )
        )
    return series
