"""Atomic broadcast burst benchmarks (Figures 4-7, Section 4.2).

Methodology mirrors the paper: on the signal, every (live) sender
atomically broadcasts ``k / senders`` messages of *m* bytes; the burst
latency ``L_burst`` is the interval until the observer delivers the
k-th message, throughput is ``k / L_burst``, and the relative cost of
agreement is the fraction of all (reliable + echo) broadcasts that were
executed on behalf of the agreement task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary import byzantine_paper_faultload
from repro.core.config import GroupConfig
from repro.core.stats import StackStats
from repro.net.faults import FaultPlan
from repro.net.network import LAN_2006, LanSimulation, NetworkParameters
from repro.obs.metrics import Histogram

FAULTLOADS = ("failure-free", "fail-stop", "byzantine")

#: The message sizes (bytes) measured in Figures 4-6.
PAPER_MESSAGE_SIZES = (10, 100, 1000, 10000)

#: Burst sizes spanning the paper's x-axis, 4..1000.
PAPER_BURST_SIZES = (4, 8, 16, 32, 64, 125, 250, 500, 1000)


@dataclass(frozen=True)
class BurstResult:
    """Measurements from one atomic broadcast burst.

    The quantile fields describe per-message submit-to-ordered-delivery
    latency across all senders, taken from the stacks'
    ``ritas_ab_delivery_latency_seconds`` histograms (0 when the burst
    ran with metrics off).
    """

    faultload: str
    burst_size: int
    message_bytes: int
    latency_s: float
    throughput_msgs_s: float
    agreement_cost: float
    total_broadcasts: int
    agreement_broadcasts: int
    agreements: int
    max_bc_rounds: int
    mvc_default_decisions: int
    delivered: int
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0


def _fault_plan(faultload: str, n: int) -> FaultPlan:
    if faultload == "failure-free":
        return FaultPlan.failure_free()
    if faultload == "fail-stop":
        return FaultPlan.fail_stop(n - 1)
    if faultload == "byzantine":
        return FaultPlan.with_byzantine(n - 1, byzantine_paper_faultload)
    raise ValueError(f"unknown faultload {faultload!r}")


def run_burst(
    burst_size: int,
    message_bytes: int,
    faultload: str = "failure-free",
    *,
    n: int = 4,
    seed: int = 0,
    ipsec: bool = True,
    params: NetworkParameters = LAN_2006,
    observer: int = 0,
    max_time: float = 900.0,
    batching: bool = True,
    metrics: bool = True,
    config_kwargs: dict | None = None,
) -> BurstResult:
    """Run one burst and return its measurements (observer is a correct
    process; the burst is split evenly across the live senders).

    With *batching* on (the default) each sender hands its share of the
    burst to the channel in one flush window, so frames coalesce into
    batches all the way down the stack; off reproduces the unbatched
    per-frame traffic.  Extra :class:`GroupConfig` knobs (e.g.
    ``bc_engine`` / ``bc_coin`` for engine head-to-heads) pass through
    *config_kwargs*."""
    plan = _fault_plan(faultload, n)
    config = GroupConfig(n, batching=batching, **(config_kwargs or {}))
    sim = LanSimulation(
        config, seed=seed, ipsec=ipsec, params=params, fault_plan=plan
    )
    if metrics:
        sim.enable_metrics()
    if observer in plan.faulty_ids():
        raise ValueError("the observer must be a correct process")

    # Under fail-stop only the n-1 live processes send (paper Section 4.2);
    # under the Byzantine faultload the corrupt process's broadcast task is
    # honest -- its consensus layers are what attack -- so it sends too.
    senders = [pid for pid in sim.config.process_ids if pid not in plan.crashed]
    per_sender = burst_size // len(senders)
    remainder = burst_size - per_sender * len(senders)

    delivered_at: list[float] = []

    def observe(_instance, _delivery) -> None:
        delivered_at.append(sim.now)

    for pid in sim.config.process_ids:
        if pid in plan.crashed:
            continue
        ab = sim.stacks[pid].create("ab", ("burst",))
        if pid == observer:
            ab.on_deliver = observe

    payload = bytes(message_bytes)
    for index, pid in enumerate(senders):
        count = per_sender + (1 if index < remainder else 0)
        stack = sim.stacks[pid]
        ab = stack.instance_at(("burst",))
        # One flush window per sender: the whole burst share leaves as
        # coalesced batches (a no-op when batching is off).
        with stack.coalesce():
            for _ in range(count):
                ab.broadcast(payload)

    reason = sim.run(
        until=lambda: len(delivered_at) >= burst_size, max_time=max_time
    )
    if reason != "until":
        raise RuntimeError(
            f"burst(k={burst_size}, m={message_bytes}, {faultload}) stalled: "
            f"{len(delivered_at)}/{burst_size} delivered, reason={reason}"
        )
    latency = delivered_at[burst_size - 1]

    combined = StackStats()
    for pid in sim.correct_ids():
        combined.merge(sim.stacks[pid].stats)
    per_message = Histogram("ritas_ab_delivery_latency_seconds")
    if metrics:
        for pid in sim.correct_ids():
            for metric in sim.stacks[pid].metrics.metrics():
                if (
                    isinstance(metric, Histogram)
                    and metric.name == "ritas_ab_delivery_latency_seconds"
                ):
                    per_message.merge(metric)
    observer_ab = sim.stacks[observer].instance_at(("burst",))
    return BurstResult(
        faultload=faultload,
        burst_size=burst_size,
        message_bytes=message_bytes,
        latency_s=latency,
        throughput_msgs_s=burst_size / latency,
        agreement_cost=combined.agreement_cost(),
        total_broadcasts=combined.total_broadcasts(),
        agreement_broadcasts=combined.broadcasts_for("agreement"),
        agreements=observer_ab.round,  # type: ignore[union-attr]
        max_bc_rounds=combined.max_rounds("bc"),
        mvc_default_decisions=combined.decisions.get("mvc-default", 0),
        delivered=len(delivered_at),
        latency_p50_s=per_message.quantile(0.5) if per_message.count else 0.0,
        latency_p95_s=per_message.quantile(0.95) if per_message.count else 0.0,
        latency_p99_s=per_message.quantile(0.99) if per_message.count else 0.0,
    )


def sweep_bursts(
    faultload: str,
    *,
    burst_sizes: tuple[int, ...] = PAPER_BURST_SIZES,
    message_sizes: tuple[int, ...] = PAPER_MESSAGE_SIZES,
    n: int = 4,
    seed: int = 0,
    ipsec: bool = True,
    params: NetworkParameters = LAN_2006,
) -> list[BurstResult]:
    """The full latency/throughput sweep behind one of Figures 4-6."""
    results = []
    for message_bytes in message_sizes:
        for burst_size in burst_sizes:
            results.append(
                run_burst(
                    burst_size,
                    message_bytes,
                    faultload,
                    n=n,
                    seed=seed,
                    ipsec=ipsec,
                    params=params,
                )
            )
    return results
