"""Benchmark harness reproducing Section 4 of the paper.

- :mod:`repro.eval.stack_analysis` -- Table 1: isolated latency of each
  protocol with and without IPSec.
- :mod:`repro.eval.atomic_burst` -- Figures 4-6: atomic broadcast burst
  latency and throughput under the three faultloads; Figure 7: relative
  cost of agreement.
- :mod:`repro.eval.paper_data` -- the numbers the paper reports, for
  side-by-side comparison.
- :mod:`repro.eval.report` -- plain-text tables.
- :mod:`repro.eval.cli` -- the ``ritas-bench`` entry point.
"""

from repro.eval.atomic_burst import BurstResult, run_burst, sweep_bursts
from repro.eval.claims import ClaimResult, check_all
from repro.eval.stack_analysis import (
    PROTOCOL_ORDER,
    latency_table,
    measure_protocol_latency,
)

__all__ = [
    "BurstResult",
    "ClaimResult",
    "PROTOCOL_ORDER",
    "check_all",
    "latency_table",
    "measure_protocol_latency",
    "run_burst",
    "sweep_bursts",
]
