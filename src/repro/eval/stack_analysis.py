"""Stack analysis: per-protocol isolated latency (Table 1, Section 4.1).

Mirrors the paper's methodology: a signaling machine triggers one
protocol instance at a time; for broadcasts the lowest-id process is
the sender; for consensus all processes propose identical values;
payloads are 10 bytes (1 byte for binary consensus); latency is the
signal-to-delivery interval at one observer process, averaged over N
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stack import METRIC_INSTANCE_LATENCY
from repro.net.network import LAN_2006, LanSimulation, NetworkParameters
from repro.obs.metrics import Histogram

#: Bottom-up order in which Table 1 lists the protocols.
PROTOCOL_ORDER = ("eb", "rb", "bc", "mvc", "vc", "ab")

PROTOCOL_NAMES = {
    "eb": "Echo Broadcast",
    "rb": "Reliable Broadcast",
    "bc": "Binary Consensus",
    "mvc": "Multi-valued Consensus",
    "vc": "Vector Consensus",
    "ab": "Atomic Broadcast",
}

_BROADCASTS = {"rb", "eb", "ab"}


def measure_protocol_latency(
    protocol: str,
    *,
    n: int = 4,
    ipsec: bool = True,
    runs: int = 5,
    seed: int = 0,
    params: NetworkParameters = LAN_2006,
    payload_bytes: int | None = None,
    observer: int = 0,
) -> float:
    """Average signal-to-delivery latency of one *protocol* instance, in
    seconds, at the *observer* process."""
    hist = measure_protocol_distribution(
        protocol,
        n=n,
        ipsec=ipsec,
        runs=runs,
        seed=seed,
        params=params,
        payload_bytes=payload_bytes,
        observer=observer,
    )
    return hist.sum / hist.count


def measure_protocol_distribution(
    protocol: str,
    *,
    n: int = 4,
    ipsec: bool = True,
    runs: int = 5,
    seed: int = 0,
    params: NetworkParameters = LAN_2006,
    payload_bytes: int | None = None,
    observer: int = 0,
) -> Histogram:
    """Signal-to-delivery latency distribution of *protocol* over *runs*
    isolated executions, as one merged :class:`~repro.obs.metrics.Histogram`.

    The samples come from the stack's own ``ritas_instance_latency_seconds``
    instrumentation at the observer (each run contributes the observed
    instance's create-to-deliver latency), so Table 1 quantiles and the
    obs exporters report from the same source.
    """
    if protocol not in PROTOCOL_ORDER:
        raise ValueError(f"unknown protocol {protocol!r}")
    if payload_bytes is None:
        payload_bytes = 1 if protocol == "bc" else 10
    merged = Histogram(METRIC_INSTANCE_LATENCY, (("protocol", protocol),))
    for run_index in range(runs):
        _single_run(
            protocol,
            n=n,
            ipsec=ipsec,
            seed=seed * 10_000 + run_index,
            params=params,
            payload_bytes=payload_bytes,
            observer=observer,
            collect=merged,
        )
    return merged


def _single_run(
    protocol: str,
    *,
    n: int,
    ipsec: bool,
    seed: int,
    params: NetworkParameters,
    payload_bytes: int,
    observer: int,
    collect: Histogram | None = None,
) -> float:
    sim = LanSimulation(n=n, ipsec=ipsec, seed=seed, params=params)
    if collect is not None:
        sim.enable_metrics()
    done_at: list[float | None] = [None]

    def observe(_instance, _event) -> None:
        if done_at[0] is None:
            done_at[0] = sim.now

    payload = bytes(payload_bytes)
    if protocol in _BROADCASTS:
        sender = 0
        for pid in sim.config.process_ids:
            kwargs = {"sender": sender} if protocol in ("rb", "eb") else {}
            instance = sim.stacks[pid].create(protocol, ("bench",), **kwargs)
            if pid == observer:
                instance.on_deliver = observe
        sim.stacks[sender].instance_at(("bench",)).broadcast(payload)
    else:
        for pid in sim.config.process_ids:
            instance = sim.stacks[pid].create(protocol, ("bench",))
            if pid == observer:
                instance.on_deliver = observe
        proposal = 1 if protocol == "bc" else payload
        for pid in sim.config.process_ids:
            sim.stacks[pid].instance_at(("bench",)).propose(proposal)
    reason = sim.run(until=lambda: done_at[0] is not None, max_time=120.0)
    if reason != "until" or done_at[0] is None:
        raise RuntimeError(f"{protocol} did not complete (stop reason: {reason})")
    if collect is not None:
        registry = sim.stacks[observer].metrics
        for metric in registry.metrics():
            if (
                isinstance(metric, Histogram)
                and metric.name == METRIC_INSTANCE_LATENCY
                and dict(metric.labels).get("protocol") == protocol
            ):
                collect.merge(metric)
    return done_at[0]


@dataclass(frozen=True)
class LatencyRow:
    """One row of Table 1.

    The quantile columns (defaulting to 0 for rows built without a
    distribution) describe the with-IPSec latency distribution.
    """

    protocol: str
    name: str
    with_ipsec_us: float
    without_ipsec_us: float
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0

    @property
    def ipsec_overhead(self) -> float:
        return self.with_ipsec_us / self.without_ipsec_us - 1.0


def latency_table(
    *,
    n: int = 4,
    runs: int = 5,
    seed: int = 0,
    params: NetworkParameters = LAN_2006,
) -> list[LatencyRow]:
    """Measure the full Table 1: every protocol, with and without IPSec."""
    rows = []
    for protocol in PROTOCOL_ORDER:
        with_ipsec = measure_protocol_distribution(
            protocol, n=n, ipsec=True, runs=runs, seed=seed, params=params
        )
        without_ipsec = measure_protocol_distribution(
            protocol, n=n, ipsec=False, runs=runs, seed=seed, params=params
        )
        rows.append(
            LatencyRow(
                protocol=protocol,
                name=PROTOCOL_NAMES[protocol],
                with_ipsec_us=with_ipsec.sum / with_ipsec.count * 1e6,
                without_ipsec_us=without_ipsec.sum / without_ipsec.count * 1e6,
                p50_us=with_ipsec.quantile(0.5) * 1e6,
                p95_us=with_ipsec.quantile(0.95) * 1e6,
                p99_us=with_ipsec.quantile(0.99) * 1e6,
            )
        )
    return rows
