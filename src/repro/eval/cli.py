"""``ritas-bench`` -- regenerate the paper's tables and figures from the
command line.

Examples::

    ritas-bench table1
    ritas-bench fig4 --quick
    ritas-bench all --quick
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.atomic_burst import (
    PAPER_BURST_SIZES,
    PAPER_MESSAGE_SIZES,
    run_burst,
    sweep_bursts,
)
from repro.eval.report import (
    format_burst_sweep,
    format_fig7,
    format_table1,
    tmax_by_size,
)
from repro.eval.stack_analysis import latency_table

QUICK_BURSTS = (4, 16, 64, 250, 1000)
QUICK_SIZES = (10, 100, 1000)

FIG_TITLES = {
    "fig4": ("failure-free", "Figure 4 -- atomic broadcast, failure-free faultload"),
    "fig5": ("fail-stop", "Figure 5 -- atomic broadcast, fail-stop faultload"),
    "fig6": ("byzantine", "Figure 6 -- atomic broadcast, Byzantine faultload"),
}


def _run_table1(args: argparse.Namespace) -> None:
    rows = latency_table(runs=2 if args.quick else 5, seed=args.seed)
    print(format_table1(rows))


def _run_figure(which: str, args: argparse.Namespace) -> None:
    faultload, title = FIG_TITLES[which]
    results = sweep_bursts(
        faultload,
        burst_sizes=QUICK_BURSTS if args.quick else PAPER_BURST_SIZES,
        message_sizes=QUICK_SIZES if args.quick else PAPER_MESSAGE_SIZES,
        seed=args.seed,
    )
    print(format_burst_sweep(results, title))
    print("T_max (msgs/s):", {m: round(t) for m, t in tmax_by_size(results).items()})
    if args.plot:
        from repro.eval.plotting import burst_latency_chart, burst_throughput_chart

        print()
        print(burst_latency_chart(results, f"{title}: burst latency"))
        print()
        print(burst_throughput_chart(results, f"{title}: throughput"))


def _run_fig7(args: argparse.Namespace) -> None:
    bursts = QUICK_BURSTS if args.quick else PAPER_BURST_SIZES
    results = [run_burst(k, 10, "failure-free", seed=args.seed) for k in bursts]
    print(format_fig7(results))
    if args.plot:
        from repro.eval.plotting import agreement_cost_chart

        print()
        print(agreement_cost_chart(results))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ritas-bench",
        description="Reproduce the evaluation of Moniz et al., DSN 2006.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "fig4", "fig5", "fig6", "fig7", "claims", "all"],
        help="which table/figure to regenerate (or 'claims' for the "
        "Section 4.3 verdicts)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps (seconds, not minutes)"
    )
    parser.add_argument(
        "--plot", action="store_true", help="render ASCII charts of the curves"
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation master seed")
    args = parser.parse_args(argv)

    experiments = (
        ["table1", "fig4", "fig5", "fig6", "fig7"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for experiment in experiments:
        if experiment == "table1":
            _run_table1(args)
        elif experiment in FIG_TITLES:
            _run_figure(experiment, args)
        elif experiment == "claims":
            from repro.eval.claims import check_all, format_results

            print(format_results(check_all(seed=args.seed)))
        else:
            _run_fig7(args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
