"""The numbers the paper reports, for side-by-side comparison.

Source: Moniz et al., DSN 2006, Section 4.  Our reproduction runs on a
calibrated simulator, so absolute values are model-derived; the *shape*
(orderings, ratios, crossovers) is what EXPERIMENTS.md checks.
"""

from __future__ import annotations

#: Table 1 -- average latency (microseconds) for isolated executions.
TABLE1_US = {
    "eb": {"ipsec": 1724, "plain": 1497},
    "rb": {"ipsec": 2134, "plain": 1641},
    "bc": {"ipsec": 8922, "plain": 6816},
    "mvc": {"ipsec": 16359, "plain": 11186},
    "vc": {"ipsec": 20673, "plain": 15382},
    "ab": {"ipsec": 23744, "plain": 18604},
}

#: Figures 4-6 -- burst latency at k=1000 (milliseconds) and maximum
#: throughput (messages/second), per message size (bytes).
FIG4_FAILURE_FREE = {
    10: {"latency_ms_k1000": 1386, "tmax_msgs_s": 721},
    100: {"latency_ms_k1000": 1539, "tmax_msgs_s": 650},
    1000: {"latency_ms_k1000": 2150, "tmax_msgs_s": 465},
    10000: {"latency_ms_k1000": 12340, "tmax_msgs_s": 81},
}

FIG5_FAIL_STOP = {
    10: {"latency_ms_k1000": 988, "tmax_msgs_s": 858},
    100: {"latency_ms_k1000": 1164, "tmax_msgs_s": 621},
    1000: {"latency_ms_k1000": 1607, "tmax_msgs_s": 834},
    10000: {"latency_ms_k1000": 8655, "tmax_msgs_s": 115},
}

FIG6_BYZANTINE = {
    10: {"latency_ms_k1000": 1404, "tmax_msgs_s": 711},
    100: {"latency_ms_k1000": 1576, "tmax_msgs_s": 634},
    1000: {"latency_ms_k1000": 2175, "tmax_msgs_s": 460},
    10000: {"latency_ms_k1000": 12347, "tmax_msgs_s": 81},
}

#: Figure 7 -- relative cost of agreement (fraction of all reliable+echo
#: broadcasts spent on agreement) at the extreme burst sizes.
FIG7_AGREEMENT_COST = {4: 0.92, 1000: 0.024}

#: Section 4.3 qualitative claims checked by tests and benches.
CLAIMS = (
    "binary consensus always decides in one round under all faultloads",
    "multi-valued consensus never decides the default value under all faultloads",
    "fail-stop runs are faster than failure-free runs (less contention)",
    "Byzantine faultload performance is approximately failure-free performance",
    "a whole burst is delivered within about two agreements",
    "agreement cost dilutes from ~92% at k=4 to ~2.4% at k=1000",
)
