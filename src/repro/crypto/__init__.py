"""Cryptographic building blocks for the RITAS stack.

The paper's protocols are *signature-free*: the only cryptography they use
is a collision-resistant hash function and pairwise-keyed message
authentication codes (``H(m, s_ij)``).  This package provides:

- :mod:`repro.crypto.hashing` -- the hash function ``H``.
- :mod:`repro.crypto.keys` -- pairwise secret keys and the trusted dealer.
- :mod:`repro.crypto.mac` -- MACs and the MAC vectors used by echo broadcast.
- :mod:`repro.crypto.coin` -- random coins for binary consensus (Ben-Or
  local coin, plus a Rabin-style predistributed shared coin as an
  extension).
"""

from repro.crypto.coin import CoinSource, LocalCoin, SharedCoin, SharedCoinDealer
from repro.crypto.hashing import HASH_LEN, hash_bytes
from repro.crypto.keys import KeyStore, TrustedDealer
from repro.crypto.mac import mac, mac_vector, verify_mac

__all__ = [
    "CoinSource",
    "LocalCoin",
    "SharedCoin",
    "SharedCoinDealer",
    "HASH_LEN",
    "hash_bytes",
    "KeyStore",
    "TrustedDealer",
    "mac",
    "mac_vector",
    "verify_mac",
]
