"""The cryptographic hash function ``H`` used throughout the stack.

The paper assumes a collision-resistant, one-way hash function (its
testbed used SHA-1 inside IPSec AH).  We use SHA-256 truncated to 20
bytes so that the *wire size* of a hash matches the SHA-1 digests the
original system shipped, which matters for the byte-accurate network
model in :mod:`repro.net`.
"""

from __future__ import annotations

import hashlib

#: Length, in bytes, of every digest produced by :func:`hash_bytes`.
#: 20 bytes = SHA-1 digest size, matching the original testbed's IPSec
#: AH (HMAC-SHA1) configuration.
HASH_LEN = 20


def hash_bytes(*parts: bytes) -> bytes:
    """Return ``H(parts[0] || parts[1] || ...)`` as a 20-byte digest.

    Parts are length-prefixed before concatenation so that the encoding
    is injective: ``hash_bytes(b"ab", b"c") != hash_bytes(b"a", b"bc")``.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()[:HASH_LEN]
