"""Pairwise secret keys and the trusted dealer.

Section 2 of the paper: *"Each pair of processes (p_i, p_j) shares a
secret key s_ij"*, distributed before the protocols run (by a trusted
dealer or a key-distribution protocol).  The dealer here hands every
process a :class:`KeyStore` holding its row of the symmetric key matrix
(``s_ij == s_ji``).

Key distribution is explicitly out of the paper's scope, so the dealer
is deliberately simple; what matters to the protocols is only the shared
-key property and that corrupt processes learn nothing about keys they
do not own.
"""

from __future__ import annotations

import hashlib
import os

KEY_LEN = 16


class KeyStore:
    """The secret keys one process shares with every other process."""

    def __init__(self, process_id: int, keys: dict[int, bytes]):
        if process_id not in keys:
            raise ValueError(f"key store for p{process_id} is missing its self-key")
        self._process_id = process_id
        self._keys = dict(keys)

    @property
    def process_id(self) -> int:
        return self._process_id

    @property
    def peers(self) -> list[int]:
        """All process ids this store holds a key for (including self)."""
        return sorted(self._keys)

    def key_for(self, peer: int) -> bytes:
        """Return ``s_ij`` for peer ``j`` (symmetric: both sides get the same bytes)."""
        try:
            return self._keys[peer]
        except KeyError:
            raise KeyError(f"p{self._process_id} shares no key with p{peer}") from None


class TrustedDealer:
    """Generates the symmetric matrix of pairwise keys for *n* processes.

    Two modes:

    - ``TrustedDealer(n)`` draws keys from ``os.urandom`` (deployment).
    - ``TrustedDealer(n, seed=...)`` derives keys deterministically from
      the seed (reproducible tests and simulations).  Determinism is a
      property of the *dealer*, never of the protocols.
    """

    def __init__(self, num_processes: int, seed: bytes | None = None):
        if num_processes < 1:
            raise ValueError("need at least one process")
        self._n = num_processes
        self._matrix: dict[tuple[int, int], bytes] = {}
        for i in range(num_processes):
            for j in range(i, num_processes):
                if seed is None:
                    key = os.urandom(KEY_LEN)
                else:
                    material = seed + b"|" + str((i, j)).encode()
                    key = hashlib.sha256(material).digest()[:KEY_LEN]
                self._matrix[(i, j)] = key

    @property
    def num_processes(self) -> int:
        return self._n

    def pair_key(self, i: int, j: int) -> bytes:
        """The key shared by processes *i* and *j* (order-insensitive)."""
        lo, hi = min(i, j), max(i, j)
        return self._matrix[(lo, hi)]

    def keystore_for(self, process_id: int) -> KeyStore:
        """Build the :class:`KeyStore` handed to process ``process_id``."""
        if not 0 <= process_id < self._n:
            raise ValueError(f"process id {process_id} out of range [0, {self._n})")
        keys = {j: self.pair_key(process_id, j) for j in range(self._n)}
        return KeyStore(process_id, keys)
