"""Message authentication codes and the echo-broadcast MAC vectors.

The paper replaces Reiter's digital signatures with *vectors of hashes*:
process ``p_i`` authenticates message ``m`` towards every peer ``j`` by
computing ``V_i[j] = H(m, s_ij)`` -- "a simple and efficient form of
Message Authentication Code" (Section 2.3).
"""

from __future__ import annotations

import hmac

from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyStore


def mac(message: bytes, key: bytes) -> bytes:
    """Return ``H(m, s)``: the keyed digest of *message* under *key*."""
    return hash_bytes(message, key)


def verify_mac(message: bytes, key: bytes, tag: bytes) -> bool:
    """Constant-time check that *tag* authenticates *message* under *key*."""
    return hmac.compare_digest(mac(message, key), tag)


def mac_vector(message: bytes, keystore: KeyStore) -> list[bytes]:
    """Build the vector ``V_i`` with ``V_i[j] = H(m, s_ij)`` for every peer.

    Index *j* of the result authenticates *message* towards process *j*,
    including the entry for the local process itself (the sender verifies
    its own row when assembling the matrix).
    """
    return [mac(message, keystore.key_for(j)) for j in keystore.peers]
