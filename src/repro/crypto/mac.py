"""Message authentication codes and the echo-broadcast MAC vectors.

The paper replaces Reiter's digital signatures with *vectors of hashes*:
process ``p_i`` authenticates message ``m`` towards every peer ``j`` by
computing ``V_i[j] = H(m, s_ij)`` -- "a simple and efficient form of
Message Authentication Code" (Section 2.3).

Hot-path note: with ``H`` built as in :mod:`repro.crypto.hashing`
(length-prefixed parts into one SHA-256), every entry of a vector hashes
the *same* message prefix followed by a different key tail.  The vector
builder therefore absorbs the message once and forks the hash state per
peer with ``.copy()`` -- output bytes identical to calling :func:`mac`
per peer, but the message is only compressed once per vector instead of
once per entry.  The 4-byte length prefix of each peer key is likewise
precomputed once per keystore.
"""

from __future__ import annotations

import hashlib
import hmac
import weakref

from repro.crypto.hashing import HASH_LEN, hash_bytes
from repro.crypto.keys import KeyStore


def mac(message: bytes, key: bytes) -> bytes:
    """Return ``H(m, s)``: the keyed digest of *message* under *key*."""
    return hash_bytes(message, key)


def verify_mac(message: bytes, key: bytes, tag: bytes) -> bool:
    """Constant-time check that *tag* authenticates *message* under *key*."""
    return hmac.compare_digest(mac(message, key), tag)


#: Per-keystore cache of ``(peers, [len(key) || key, ...])`` -- the
#: constant per-peer suffix each vector entry hashes after the message.
#: Weak so dropping a keystore drops its cached key material too.
_KEY_TAILS: "weakref.WeakKeyDictionary[KeyStore, tuple[list[int], list[bytes]]]" = (
    weakref.WeakKeyDictionary()
)


def _key_tails(keystore: KeyStore) -> tuple[list[int], list[bytes]]:
    cached = _KEY_TAILS.get(keystore)
    if cached is None:
        peers = keystore.peers
        tails = [
            len(key).to_bytes(4, "big") + key
            for key in (keystore.key_for(j) for j in peers)
        ]
        cached = (peers, tails)
        _KEY_TAILS[keystore] = cached
    return cached


def _message_state(message) -> "hashlib._Hash":
    """SHA-256 state that has absorbed the length-prefixed message."""
    state = hashlib.sha256()
    state.update(len(message).to_bytes(4, "big"))
    state.update(message)
    return state


def mac_vector(message: bytes, keystore: KeyStore) -> list[bytes]:
    """Build the vector ``V_i`` with ``V_i[j] = H(m, s_ij)`` for every peer.

    Index *j* of the result authenticates *message* towards process *j*,
    including the entry for the local process itself (the sender verifies
    its own row when assembling the matrix).
    """
    prefix = _message_state(message)
    vector = []
    append = vector.append
    for tail in _key_tails(keystore)[1]:
        state = prefix.copy()
        state.update(tail)
        append(state.digest()[:HASH_LEN])
    return vector


def verify_mac_batch(message: bytes, checks: list[tuple[bytes, bytes]]) -> list[bool]:
    """Verify many ``(key, tag)`` pairs against one *message* at once.

    Equivalent to ``[verify_mac(message, k, t) for k, t in checks]`` but
    the message is absorbed into the hash state once and forked per
    check -- the batched form of the same key-schedule reuse
    :func:`mac_vector` does on the build side.
    """
    prefix = _message_state(message)
    results = []
    append = results.append
    for key, tag in checks:
        state = prefix.copy()
        state.update(len(key).to_bytes(4, "big"))
        state.update(key)
        append(hmac.compare_digest(state.digest()[:HASH_LEN], tag))
    return results
