"""Random coins for the binary consensus protocol.

RITAS uses a Ben-Or-style *local* coin: "each process has access to a
random bit generator that returns unbiased bits observable only by the
process" (Section 2).  :class:`LocalCoin` implements exactly that.

As an extension (discussed in the paper's related work, Section 5), a
Rabin-style *shared* coin is also provided: a trusted dealer
predistributes a common random bit sequence, so every correct process
sees the same coin for the same (instance, round).  A shared coin makes
the expected round count constant at the price of the dealer setup.
"""

from __future__ import annotations

import hashlib
import os
import random
from typing import Protocol


class CoinSource(Protocol):
    """Interface binary consensus uses to obtain its round coins.

    Implementations that guarantee every correct process the *same*
    toss per (instance, round) advertise ``common = True``; consensus
    engines whose safety depends on that property (``requires_common_coin``
    in :mod:`repro.core.bc_engine`) are refused by the stack over a
    coin that does not.
    """

    def toss(self, instance: bytes, round_number: int) -> int:
        """Return an unbiased bit in {0, 1} for the given round."""
        ...


class LocalCoin:
    """Ben-Or local coin: an independent unbiased bit per toss.

    The generator is injectable so that simulations are reproducible;
    pass no argument for a securely seeded coin.  Note that a stack
    built without an explicit coin does NOT take that default: it
    derives a dedicated ``random.Random`` stream from its seeded RNG,
    preserving byte-identical same-seed replay (the bare-``LocalCoin()``
    SystemRandom fallback exists for standalone/production use only).
    """

    #: Tosses are process-local: two correct processes may disagree.
    common = False

    def __init__(self, rng: random.Random | None = None):
        self._rng = rng if rng is not None else random.SystemRandom()

    def toss(self, instance: bytes, round_number: int) -> int:
        return self._rng.getrandbits(1)


class SharedCoinDealer:
    """Trusted dealer for the Rabin-style shared coin (extension).

    The dealer fixes a secret; every process derives the *same* bit for
    the same (instance id, round) from it.  A real deployment would hand
    out secret shares; for the reproduction the whole secret is given to
    every correct process, which preserves the property the protocol
    needs -- all correct processes observe identical coins.
    """

    def __init__(self, secret: bytes | None = None):
        self._secret = secret if secret is not None else os.urandom(32)

    def coin_for(self, process_id: int) -> "SharedCoin":
        return SharedCoin(self._secret)


class SharedCoin:
    """A coin whose tosses agree across all holders of the dealer secret."""

    #: Every holder of the dealer secret sees the same toss per
    #: (instance, round) -- safe under engines that require a common coin.
    common = True

    def __init__(self, secret: bytes):
        self._secret = secret

    def toss(self, instance: bytes, round_number: int) -> int:
        material = self._secret + b"|" + instance + b"|" + round_number.to_bytes(8, "big")
        return hashlib.sha256(material).digest()[0] & 1
