"""repro -- RITAS: Randomized Intrusion-Tolerant Asynchronous Services.

A from-scratch Python reproduction of the protocol stack of

    H. Moniz, N. F. Neves, M. Correia, P. Veríssimo,
    "Randomized Intrusion-Tolerant Asynchronous Services", DSN 2006.

The stack tolerates up to ``f = floor((n-1)/3)`` Byzantine processes
with no synchrony assumptions, no signatures, and no leader:

- reliable broadcast and matrix echo broadcast,
- randomized binary consensus (the only coin-flipping layer),
- multi-valued consensus, vector consensus, atomic broadcast.

Quickstart (simulated 4-process LAN)::

    from repro import LanSimulation

    sim = LanSimulation(n=4, seed=7)
    deliveries = [[] for _ in range(4)]
    for pid, stack in enumerate(sim.stacks):
        ab = stack.create("ab", ("demo",))
        ab.on_deliver = lambda _, d, pid=pid: deliveries[pid].append(d)
    sim.stacks[0].instance_at(("demo",)).broadcast(b"hello")
    sim.run(until=lambda: all(len(d) == 1 for d in deliveries))

See :mod:`repro.transport` for running over real TCP sockets and
:mod:`repro.eval` for the paper's benchmark harness.
"""

from repro.core import (
    AbDelivery,
    AtomicBroadcast,
    BinaryConsensus,
    ControlBlock,
    EchoBroadcast,
    GroupConfig,
    MultiValuedConsensus,
    ProtocolFactory,
    ReliableBroadcast,
    RitasError,
    Stack,
    StackStats,
    VectorConsensus,
)
from repro.crypto import KeyStore, LocalCoin, SharedCoinDealer, TrustedDealer
from repro.net import (
    LAN_2006,
    FaultPlan,
    LanSimulation,
    NetworkParameters,
    Partition,
    SimGroup,
)

__version__ = "1.0.0"

__all__ = [
    "AbDelivery",
    "AtomicBroadcast",
    "BinaryConsensus",
    "ControlBlock",
    "EchoBroadcast",
    "FaultPlan",
    "GroupConfig",
    "KeyStore",
    "LAN_2006",
    "LanSimulation",
    "LocalCoin",
    "MultiValuedConsensus",
    "NetworkParameters",
    "Partition",
    "ProtocolFactory",
    "ReliableBroadcast",
    "RitasError",
    "SharedCoinDealer",
    "SimGroup",
    "Stack",
    "StackStats",
    "TrustedDealer",
    "VectorConsensus",
    "__version__",
]
