"""The persistent performance trajectory (``python -m repro.perf``).

Speed work across PRs is only credible against a fixed measurement: this
package drives the existing benchmarks in a calibrated, deterministic
configuration and emits ``BENCH_core.json`` at the repo root, one entry
per PR, so the trajectory persists in version control instead of in
someone's terminal scrollback.

Four areas are measured (see :mod:`repro.perf.bench`):

- ``wire``   -- codec encode/decode ops/sec on representative frames;
- ``mac``    -- MAC-vector builds and authenticated-channel frame
  verifies per second, batched and unbatched;
- ``sim``    -- the discrete-event simulator driving a failure-free n=4
  atomic-broadcast burst: events/sec and delivered msgs/sec in *wall*
  time, plus the simulated-time throughput and per-message delivery
  latency quantiles from the obs histograms;
- ``tcp``    -- the asyncio runtime on loopback sockets: delivered
  msgs/sec in wall time plus delivery-latency quantiles.

Workloads are seeded and fixed per schema version; wall-clock numbers
move with the host, so the trajectory is read as *ratios between
commits measured on the same machine* (CI re-measures both sides when
it compares).  See ``docs/PERF.md`` for the schema and how to read it.
"""

from __future__ import annotations

from repro.perf.bench import (
    AREAS,
    SCHEMA,
    load_report,
    run_all,
    speedups,
    write_report,
)

__all__ = [
    "AREAS",
    "SCHEMA",
    "load_report",
    "run_all",
    "speedups",
    "write_report",
]
