"""CLI: run the perf areas and write one ``BENCH_core.json`` entry.

Examples::

    python -m repro.perf                       # full run -> BENCH_core.json
    python -m repro.perf --quick               # CI-sized run
    python -m repro.perf --area wire --area sim --out /tmp/b.json
    python -m repro.perf --area gateway --out BENCH_gateway.json
    python -m repro.perf --area shard              # -> BENCH_shard.json
    python -m repro.perf --baseline BENCH_core.json --warn-threshold 0.10

With ``--baseline`` the previous entry is embedded in the new report and
per-metric speedups are printed; rate metrics that regressed more than
``--warn-threshold`` produce a warning.  Warnings never change the exit
code unless ``--strict`` is given -- the trajectory is a measurement,
not a gate.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any

from repro.perf.bench import (
    ALL_AREAS,
    EXTRA_AREAS,
    load_report,
    run_all,
    speedups,
    write_report,
)


def _default_out(areas: list[str] | None) -> str:
    """``BENCH_<area>.json`` when exactly one extra area was selected
    (so ``--area shard`` lands in its own trajectory file by default),
    ``BENCH_core.json`` otherwise."""
    if areas:
        distinct = sorted(set(areas))
        if len(distinct) == 1 and distinct[0] in EXTRA_AREAS:
            return f"BENCH_{distinct[0]}.json"
    return "BENCH_core.json"


def _print_report(report: dict[str, Any]) -> None:
    print(f"perf trajectory entry  sha={report['git_sha']}  date={report['date']}")
    for area, metrics in report["areas"].items():
        print(f"  [{area}]")
        for name, value in sorted(metrics.items()):
            # "_s" marks seconds (latency quantiles); rate metrics like
            # ab_throughput_msgs_s merely end in a unit denominator.
            if name.endswith("_s") and not name.endswith("_msgs_s"):
                print(f"    {name:32s} {value * 1e6:14.1f} us")
            else:
                print(f"    {name:32s} {value:14.1f}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workloads (smaller bursts)"
    )
    parser.add_argument(
        "--area",
        action="append",
        choices=ALL_AREAS,
        help="run only this area (repeatable; default: the core four -- "
        "extra areas like 'gateway' must be selected explicitly)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="where to write the trajectory entry (default: BENCH_core.json, "
        "or BENCH_<area>.json when exactly one extra area is selected)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous entry to embed and compare against (a BENCH_core.json)",
    )
    parser.add_argument(
        "--warn-threshold",
        type=float,
        default=0.10,
        help="warn when a rate metric regresses by more than this fraction "
        "vs the baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any regression warning (default: warn only)",
    )
    args = parser.parse_args(argv)
    out = args.out if args.out is not None else _default_out(args.area)

    report = run_all(quick=args.quick, areas=tuple(args.area) if args.area else None)
    regressed = []
    baseline = None
    if args.baseline:
        # A baseline that can't be compared is loud, never silent: a run
        # that skips the comparison looks identical to a clean one, and
        # that is exactly how regressions used to slip past CI.
        if not os.path.exists(args.baseline):
            print(
                f"WARNING: baseline {args.baseline} not found; "
                "skipping speedup comparison",
                file=sys.stderr,
            )
        else:
            try:
                baseline = load_report(args.baseline)
            except (OSError, ValueError) as exc:
                print(
                    f"WARNING: baseline {args.baseline} unusable "
                    f"({type(exc).__name__}: {exc}); skipping speedup comparison",
                    file=sys.stderr,
                )
    if baseline is not None:
        report["baseline"] = {
            "git_sha": baseline.get("git_sha", "unknown"),
            "date": baseline.get("date", "unknown"),
            "quick": baseline.get("quick", False),
            "areas": baseline.get("areas", {}),
        }
        report["speedup"] = speedups(report, baseline)
        for metric, ratio in sorted(report["speedup"].items()):
            print(f"  speedup {metric:40s} {ratio:6.2f}x")
            if ratio < 1.0 - args.warn_threshold:
                regressed.append((metric, ratio))
    _print_report(report)
    write_report(report, out)
    print(f"wrote {out}")
    for metric, ratio in regressed:
        print(
            f"WARNING: {metric} regressed to {ratio:.2f}x of the baseline "
            f"(threshold {1.0 - args.warn_threshold:.2f}x)",
            file=sys.stderr,
        )
    if regressed and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
