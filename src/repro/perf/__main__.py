"""CLI: run the perf areas and write one ``BENCH_core.json`` entry.

Examples::

    python -m repro.perf                       # full run -> BENCH_core.json
    python -m repro.perf --quick               # CI-sized run
    python -m repro.perf --area wire --area sim --out /tmp/b.json
    python -m repro.perf --area gateway --out BENCH_gateway.json
    python -m repro.perf --baseline BENCH_core.json --warn-threshold 0.10

With ``--baseline`` the previous entry is embedded in the new report and
per-metric speedups are printed; rate metrics that regressed more than
``--warn-threshold`` produce a warning.  Warnings never change the exit
code unless ``--strict`` is given -- the trajectory is a measurement,
not a gate.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any

from repro.perf.bench import ALL_AREAS, load_report, run_all, speedups, write_report


def _print_report(report: dict[str, Any]) -> None:
    print(f"perf trajectory entry  sha={report['git_sha']}  date={report['date']}")
    for area, metrics in report["areas"].items():
        print(f"  [{area}]")
        for name, value in sorted(metrics.items()):
            # "_s" marks seconds (latency quantiles); rate metrics like
            # ab_throughput_msgs_s merely end in a unit denominator.
            if name.endswith("_s") and not name.endswith("_msgs_s"):
                print(f"    {name:32s} {value * 1e6:14.1f} us")
            else:
                print(f"    {name:32s} {value:14.1f}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workloads (smaller bursts)"
    )
    parser.add_argument(
        "--area",
        action="append",
        choices=ALL_AREAS,
        help="run only this area (repeatable; default: the core four -- "
        "extra areas like 'gateway' must be selected explicitly)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_core.json",
        help="where to write the trajectory entry (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous entry to embed and compare against (a BENCH_core.json)",
    )
    parser.add_argument(
        "--warn-threshold",
        type=float,
        default=0.10,
        help="warn when a rate metric regresses by more than this fraction "
        "vs the baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any regression warning (default: warn only)",
    )
    args = parser.parse_args(argv)

    report = run_all(quick=args.quick, areas=tuple(args.area) if args.area else None)
    regressed = []
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
        report["baseline"] = {
            "git_sha": baseline.get("git_sha", "unknown"),
            "date": baseline.get("date", "unknown"),
            "quick": baseline.get("quick", False),
            "areas": baseline.get("areas", {}),
        }
        report["speedup"] = speedups(report, baseline)
        for metric, ratio in sorted(report["speedup"].items()):
            print(f"  speedup {metric:40s} {ratio:6.2f}x")
            if ratio < 1.0 - args.warn_threshold:
                regressed.append((metric, ratio))
    _print_report(report)
    write_report(report, args.out)
    print(f"wrote {args.out}")
    for metric, ratio in regressed:
        print(
            f"WARNING: {metric} regressed to {ratio:.2f}x of the baseline "
            f"(threshold {1.0 - args.warn_threshold:.2f}x)",
            file=sys.stderr,
        )
    if regressed and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
