"""Area benchmarks behind ``python -m repro.perf``.

Every workload here is fixed -- sizes, seeds, message bytes are part of
the schema version -- so two runs of the same schema on the same host
are comparable.  Wall-clock numbers are best-of-``repeats`` to shave
scheduler noise; the simulated-time numbers (``ab_throughput``, the
latency quantiles) are deterministic given the seed.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import time
from typing import Any, Callable

from repro.core.config import GroupConfig
from repro.core.wire import (
    decode_batch,
    decode_frame,
    encode_batch,
    encode_frame,
    encode_memo_clear,
    fastpath_memo_clear,
)
from repro.crypto.keys import TrustedDealer
from repro.crypto.mac import mac_vector
from repro.eval.atomic_burst import run_burst
from repro.net.network import LanSimulation
from repro.obs.metrics import Histogram
from repro.transport.framing import FrameCodec
from repro.transport.tcp import PeerAddress, RitasNode

SCHEMA = "repro.perf/v1"
#: The core trajectory areas (a default run = these four, so every
#: BENCH_core.json entry stays comparable across the whole history).
AREAS = ("wire", "mac", "sim", "tcp")
#: Extra opt-in areas, selected explicitly with ``--area`` and written
#: to their own trajectory file (e.g. ``--area gateway --out
#: BENCH_gateway.json``).
EXTRA_AREAS = ("gateway", "bc", "shard")
ALL_AREAS = AREAS + EXTRA_AREAS

#: Histogram every runtime records per-message AB delivery latency into.
_AB_LATENCY = "ritas_ab_delivery_latency_seconds"

#: A path shaped like the deep agreement paths the stack routes all day:
#: an AB round's vector consensus chaining down to binary consensus.
_PERF_PATH = ("perf", "vect", 3, "mvc", "bc")


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError, ValueError) as exc:
        # Never fail a perf run over provenance, but never hide why it
        # is missing either -- an "unknown" sha in a trajectory file is
        # only diagnosable if the cause was printed at capture time.
        print(
            f"WARNING: git sha unavailable ({type(exc).__name__}: {exc}); "
            'recording git_sha="unknown"',
            file=sys.stderr,
        )
        return "unknown"


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    """Smallest wall time returned by *fn* over *repeats* runs."""
    return min(fn() for _ in range(repeats))


# -- wire --------------------------------------------------------------------


def bench_wire(quick: bool) -> dict[str, float]:
    """Codec ops/sec on one agreement-shaped frame and a 16-frame batch."""
    iterations = 4_000 if quick else 20_000
    payload = [7, list(range(4)), bytes(100)]
    frame = encode_frame(_PERF_PATH, 1, payload)
    batch = encode_batch([frame] * 16)
    encode_memo_clear()
    fastpath_memo_clear()

    def encode_pass() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            encode_frame(_PERF_PATH, 1, payload)
        return time.perf_counter() - start

    def decode_pass() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            decode_frame(frame)
        return time.perf_counter() - start

    def batch_pass() -> float:
        start = time.perf_counter()
        for _ in range(iterations // 16):
            for member in decode_batch(batch):
                decode_frame(member)
        return time.perf_counter() - start

    repeats = 2 if quick else 3
    encode_s = _best_of(repeats, encode_pass)
    decode_s = _best_of(repeats, decode_pass)
    batch_s = _best_of(repeats, batch_pass)
    batch_frames = (iterations // 16) * 16
    return {
        "encode_ops_per_sec": iterations / encode_s,
        "decode_ops_per_sec": iterations / decode_s,
        "batch_decode_frames_per_sec": batch_frames / batch_s,
    }


# -- mac ---------------------------------------------------------------------


def bench_mac(quick: bool) -> dict[str, float]:
    """MAC-vector builds and authenticated-channel verifies per second."""
    iterations = 2_000 if quick else 10_000
    dealer = TrustedDealer(4, seed=b"repro-perf")
    keystore = dealer.keystore_for(0)
    message = bytes(100)

    def vector_pass() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            mac_vector(message, keystore)
        return time.perf_counter() - start

    # One peer link: sender codec encodes, receiver codec verifies --
    # the per-frame HMAC work both TCP directions pay.
    key = keystore.key_for(1)
    frame = encode_frame(_PERF_PATH, 1, [7, bytes(100)])
    sender = FrameCodec(key, 0)
    wire = [sender.encode(frame)[4:] for _ in range(iterations)]

    def verify_pass() -> float:
        receiver = FrameCodec(key, 0)
        start = time.perf_counter()
        for body in wire:
            receiver.decode(body)
        return time.perf_counter() - start

    repeats = 2 if quick else 3
    vector_s = _best_of(repeats, vector_pass)
    verify_s = _best_of(repeats, verify_pass)
    return {
        "mac_vector_per_sec": iterations / vector_s,
        "channel_verify_per_sec": iterations / verify_s,
    }


# -- sim ---------------------------------------------------------------------


def _timed_sim_burst(k: int, seed: int) -> tuple[float, int, float]:
    """One failure-free n=4 burst with metrics off.

    Returns ``(wall_seconds, loop_events, simulated_seconds)`` for the
    submit-to-last-delivery section.
    """
    sim = LanSimulation(n=4, seed=seed)
    delivered = 0

    def observe(_instance, _delivery) -> None:
        nonlocal delivered
        delivered += 1

    for pid in sim.config.process_ids:
        ab = sim.stacks[pid].create("ab", ("perf",))
        if pid == 0:
            ab.on_deliver = observe
    payload = bytes(100)
    encode_memo_clear()
    fastpath_memo_clear()
    start = time.perf_counter()
    for pid in sim.config.process_ids:
        stack = sim.stacks[pid]
        ab = stack.instance_at(("perf",))
        with stack.coalesce():
            for _ in range(k // 4):
                ab.broadcast(payload)
    reason = sim.run(until=lambda: delivered >= k, max_time=600.0)
    wall = time.perf_counter() - start
    if reason != "until":
        raise RuntimeError(f"sim perf burst stalled: {delivered}/{k} ({reason})")
    return wall, sim.loop.events_processed, sim.now


def bench_sim(quick: bool) -> dict[str, float]:
    """Simulator wall-time rates plus deterministic simulated-time stats."""
    k = 32 if quick else 96
    repeats = 2 if quick else 3
    best_wall = float("inf")
    events = 0
    for _ in range(repeats):
        wall, run_events, _sim_s = _timed_sim_burst(k, seed=2)
        if wall < best_wall:
            best_wall = wall
            events = run_events
    # Distribution run: same workload through the eval harness with
    # metrics on -- simulated-time throughput and per-message quantiles
    # are deterministic, so one run suffices.
    dist = run_burst(k, 100, "failure-free", seed=2, metrics=True)
    return {
        "events_per_sec": events / best_wall,
        "msgs_per_sec": k / best_wall,
        "ab_throughput_msgs_s": dist.throughput_msgs_s,
        "p50_s": dist.latency_p50_s,
        "p95_s": dist.latency_p95_s,
        "p99_s": dist.latency_p99_s,
        "events": float(events),
        "k": float(k),
    }


# -- tcp ---------------------------------------------------------------------


async def _tcp_burst(k: int, seed: int, metrics: bool) -> tuple[float, list[Histogram]]:
    """One n=4 loopback burst; returns ``(wall_seconds, ab histograms)``."""
    config = GroupConfig(4)
    dealer = TrustedDealer(4, seed=b"repro-perf")
    blank = [PeerAddress("127.0.0.1", 0)] * 4
    nodes = [
        RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=seed)
        for pid in range(4)
    ]
    try:
        for node in nodes:
            await node.listen()
        addresses = [PeerAddress("127.0.0.1", n.bound_port) for n in nodes]
        for node in nodes:
            node.set_peer_addresses(addresses)
        for node in nodes:
            if metrics:
                node.enable_metrics()
            await node.connect()
            node.stack.create("ab", ("perf",))
        done = asyncio.Event()
        delivered = 0

        def observe(_instance, _delivery) -> None:
            nonlocal delivered
            delivered += 1
            if delivered >= k:
                done.set()

        nodes[0].stack.instance_at(("perf",)).on_deliver = observe
        payload = bytes(100)
        encode_memo_clear()
        fastpath_memo_clear()
        start = time.perf_counter()
        for node in nodes:
            ab = node.stack.instance_at(("perf",))
            with node.stack.coalesce():
                for _ in range(k // 4):
                    ab.broadcast(payload)
        await asyncio.wait_for(done.wait(), timeout=120.0)
        wall = time.perf_counter() - start
        histograms: list[Histogram] = []
        if metrics:
            for node in nodes:
                for metric in node.stack.metrics.metrics():
                    if isinstance(metric, Histogram) and metric.name == _AB_LATENCY:
                        histograms.append(metric)
        return wall, histograms
    finally:
        for node in nodes:
            await node.close()


def bench_tcp(quick: bool) -> dict[str, float]:
    """Asyncio-runtime delivered msgs/sec plus delivery-latency quantiles."""
    k = 40 if quick else 160
    repeats = 2 if quick else 3
    best_wall = min(
        asyncio.run(_tcp_burst(k, seed=5, metrics=False))[0] for _ in range(repeats)
    )
    _, histograms = asyncio.run(_tcp_burst(k, seed=5, metrics=True))
    merged = Histogram(_AB_LATENCY)
    for histogram in histograms:
        merged.merge(histogram)
    return {
        "msgs_per_sec": k / best_wall,
        "p50_s": merged.quantile(0.5) if merged.count else 0.0,
        "p95_s": merged.quantile(0.95) if merged.count else 0.0,
        "p99_s": merged.quantile(0.99) if merged.count else 0.0,
        "k": float(k),
    }


# -- gateway -----------------------------------------------------------------


def bench_gateway(quick: bool) -> dict[str, float]:
    """Open-loop client goodput through the gateway, with tail latency.

    The workload is the fixed-size cousin of
    ``benchmarks/bench_gateway.py``: a 4-replica loopback group, one
    gateway, a seeded Poisson schedule spread over a pool of concurrent
    sessions.  Quantiles are client-observed (schedule instant to ack),
    read from the loadgen's :mod:`repro.obs` histogram; write safety
    (no acked op missing from or duplicated in the replicated log) is
    asserted, not just reported.
    """
    from repro.gateway.loadgen import LoadProfile, run_load
    from repro.gateway.server import ClientGateway, GatewayServices

    profile = LoadProfile(
        sessions=50 if quick else 200,
        rate=300.0 if quick else 500.0,
        ops=150 if quick else 600,
        read_fraction=0.5,
        seed=17,
    )

    async def scenario() -> dict[str, float]:
        config = GroupConfig(4)
        dealer = TrustedDealer(4, seed=b"repro-perf")
        blank = [PeerAddress("127.0.0.1", 0)] * 4
        nodes = [
            RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=29)
            for pid in range(4)
        ]
        try:
            for node in nodes:
                await node.listen()
            addresses = [PeerAddress("127.0.0.1", n.bound_port) for n in nodes]
            for node in nodes:
                node.set_peer_addresses(addresses)
            for node in nodes:
                await node.connect()
            services = [GatewayServices.attach(node) for node in nodes]
            gateway = ClientGateway(nodes[0], services[0])
            try:
                port = await gateway.listen()
                report = await asyncio.wait_for(
                    run_load("127.0.0.1", port, profile), timeout=300.0
                )
            finally:
                await gateway.close()
            applied = {d.msg_id for d, _ in services[0].kv.rsm.applied}
            lost = sum(1 for a in report.acked_ids if tuple(a) not in applied)
            duplicated = len(report.acked_ids) - len(set(report.acked_ids))
            if lost or duplicated or report.errors:
                raise RuntimeError(
                    f"gateway area violated write safety: lost={lost} "
                    f"duplicated={duplicated} errors={report.errors}"
                )
            return {
                "goodput_per_sec": report.goodput_ops_s,
                "p50_s": report.latency_p50_s,
                "p95_s": report.latency_p95_s,
                "p99_s": report.latency_p99_s,
                "retry_after": float(report.retry_after),
                "timeouts": float(report.timeouts),
                "sessions": float(profile.sessions),
                "k": float(profile.ops),
            }
        finally:
            for node in nodes:
                await node.close()

    return asyncio.run(scenario())


# -- bc engines --------------------------------------------------------------


def bench_bc(quick: bool) -> dict[str, float]:
    """Head-to-head of the binary-consensus engines (see
    :mod:`repro.eval.bc_compare`).

    Per (engine, coin) pair: Table-1-style isolated decision latency
    (simulated seconds -- comparable across runs, not a host rate),
    atomic-broadcast burst throughput with the engine under every
    agreement round, and the rounds-to-decide distribution over shuffled
    adversarial schedules with the paper's always-zero attacker.  The
    engine-separating number is the rounds tail: local-coin Bracha's is
    visible, the shared-coin pairs stay bounded.
    """
    from repro.eval.bc_compare import head_to_head

    samples = 30 if quick else 120
    table = head_to_head(samples=samples, attacker=True)
    report: dict[str, float] = {"samples": float(samples)}
    for key, row in table.items():
        tag = key.replace("+", "_")
        report[f"{tag}_latency_s"] = row["isolated_latency_s"]
        report[f"{tag}_burst_msgs_s"] = row["burst_throughput_msgs_s"]
        report[f"{tag}_rounds_mean"] = row["rounds_mean"]
        report[f"{tag}_rounds_max"] = float(row["rounds_max"])
        report[f"{tag}_rounds_tail_gt2"] = float(row["rounds_tail_gt2"])
    return report


# -- shard -------------------------------------------------------------------


def _timed_shard_burst(
    num_shards: int, k_per_shard: int, seed: int, colocate: bool = False
) -> tuple[float, float, int]:
    """One failure-free sharded burst: S groups of n=4, ``k_per_shard``
    AB messages each, on one shared virtual-time loop.

    Returns ``(simulated_seconds, wall_seconds, loop_events)`` for the
    submit-to-last-delivery section across *all* shards -- the makespan
    the aggregate-throughput numbers divide by.
    """
    from repro.shard.sim import ShardedLanSimulation

    sharded = ShardedLanSimulation(num_shards, n=4, seed=seed, colocate=colocate)
    delivered = 0
    total = num_shards * k_per_shard

    def observe(_instance, _delivery) -> None:
        nonlocal delivered
        delivered += 1

    for sim in sharded.shards:
        for pid in sim.config.process_ids:
            ab = sim.stacks[pid].create("ab", ("perf",))
            if pid == 0:
                ab.on_deliver = observe
    payload = bytes(100)
    encode_memo_clear()
    fastpath_memo_clear()
    start = time.perf_counter()
    for sim in sharded.shards:
        for pid in sim.config.process_ids:
            stack = sim.stacks[pid]
            ab = stack.instance_at(("perf",))
            with stack.coalesce():
                for _ in range(k_per_shard // 4):
                    ab.broadcast(payload)
    reason = sharded.run(until=lambda: delivered >= total, max_time=600.0)
    wall = time.perf_counter() - start
    if reason != "until":
        raise RuntimeError(
            f"shard perf burst stalled: {delivered}/{total} ({reason})"
        )
    return sharded.now, wall, sharded.loop.events_processed


def bench_shard(quick: bool) -> dict[str, float]:
    """Aggregate ordered throughput of S independent groups, S=1,2,4.

    Scale-out placement (each shard its own n=4 hosts): shards order in
    parallel on disjoint resources, so aggregate delivered msgs per
    simulated second should grow near-linearly with S -- the number the
    sharding tentpole exists to move.  The ``s4_colocate`` point is the
    honest contrast: the same four groups stacked on one set of hosts
    contend for CPU/NIC and stay near flat.  All rates are simulated
    time, hence deterministic given the seed.
    """
    k = 24 if quick else 48
    points: dict[int, float] = {}
    events = 0.0
    for num_shards in (1, 2, 4):
        sim_s, _wall, run_events = _timed_shard_burst(num_shards, k, seed=11)
        points[num_shards] = (num_shards * k) / sim_s
        events = float(run_events)
    colo_s, _wall, _events = _timed_shard_burst(4, k, seed=11, colocate=True)
    return {
        "s1_agg_msgs_s": points[1],
        "s2_agg_msgs_s": points[2],
        "s4_agg_msgs_s": points[4],
        "s4_colocate_agg_msgs_s": (4 * k) / colo_s,
        "scaling_s4_over_s1": points[4] / points[1],
        "events_s4": events,
        "k_per_shard": float(k),
    }


# -- report ------------------------------------------------------------------

_AREA_FNS: dict[str, Callable[[bool], dict[str, float]]] = {
    "wire": bench_wire,
    "mac": bench_mac,
    "sim": bench_sim,
    "tcp": bench_tcp,
    "gateway": bench_gateway,
    "bc": bench_bc,
    "shard": bench_shard,
}

#: Metrics where bigger is better; only these enter the speedup block
#: (latency quantiles are reported but not ratioed -- they are simulated
#: time for the sim area, and tail-noise for the tcp one).
_RATE_SUFFIXES = ("_per_sec", "_msgs_s")


def run_all(
    quick: bool = False, areas: tuple[str, ...] | None = None
) -> dict[str, Any]:
    """Run the selected areas and return one trajectory entry."""
    selected = AREAS if areas is None else tuple(areas)
    unknown = [area for area in selected if area not in _AREA_FNS]
    if unknown:
        raise ValueError(f"unknown perf area(s): {unknown}; pick from {ALL_AREAS}")
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "git_sha": _git_sha(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "quick": quick,
        "areas": {},
    }
    for area in selected:
        report["areas"][area] = _AREA_FNS[area](quick)
    return report


def speedups(current: dict[str, Any], baseline: dict[str, Any]) -> dict[str, float]:
    """Per-metric ``current / baseline`` ratios for the rate metrics."""
    ratios: dict[str, float] = {}
    for area, metrics in current.get("areas", {}).items():
        base_metrics = baseline.get("areas", {}).get(area, {})
        for name, value in metrics.items():
            base = base_metrics.get(name)
            if (
                name.endswith(_RATE_SUFFIXES)
                and isinstance(base, (int, float))
                and base > 0
            ):
                ratios[f"{area}.{name}"] = value / base
    return ratios


def load_report(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} report")
    return report


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
