"""Protocol invariant checking and schedule exploration.

The paper's correctness claims -- agreement, validity, total order --
are asserted *while a simulation runs* instead of only at the end of a
happy-path test:

- :mod:`repro.check.invariants` attaches an :class:`InvariantChecker`
  to a :class:`~repro.net.network.LanSimulation`; after every simulator
  event it compares the :meth:`~repro.core.stack.ControlBlock.inspect`
  snapshots of same-path instances across correct processes and checks
  each stack's out-of-context accounting conservation law.
- :mod:`repro.check.scenarios` registers named workloads (failure-free,
  crash, every Byzantine strategy, and an n=6 split-vote stress).
- :mod:`repro.check.explore` sweeps seeds, event-queue tie-break orders
  and latency jitter across a scenario, and shrinks any violation to a
  minimal JSON reproducer that ``python -m repro.check replay``
  re-executes deterministically (runs are fully determined by their
  parameters, so the reproducer needs only those).
- :mod:`repro.check.soak` drives one long-lived group through hours of
  simulated time under a rotating fault schedule, asserting gauge
  flatness from :mod:`repro.obs` each time a fault clears (imported on
  demand -- it pulls in the application and recovery layers).

CLI: ``python -m repro.check {explore,replay,scenarios,soak}``.
"""

from repro.check.explore import (
    REPRODUCER_FORMAT,
    explore,
    replay,
    run_one,
    shrink,
)
from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.scenarios import SCENARIOS, Scenario

__all__ = [
    "REPRODUCER_FORMAT",
    "InvariantChecker",
    "InvariantViolation",
    "SCENARIOS",
    "Scenario",
    "explore",
    "replay",
    "run_one",
    "shrink",
]
