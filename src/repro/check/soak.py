"""Long-horizon soak: hours of simulated time under rotating faults.

The explorer (:mod:`repro.check.explore`) answers "does a fresh run
survive environment X?"; the soak harness answers the ops question
behind intrusion *tolerance*: does one long-lived group, run through
every hostile environment in sequence, come back to baseline each time
a fault clears?  It builds a single n-process simulation with a
replicated KV store, a recovery manager per replica and a sustained
client load, then cycles **fault windows** -- each window arms one
fault mode from the :mod:`repro.net.links` catalog (or a partition, or
a crash/rejoin churn cycle), holds it under load, clears it, lets the
group settle, and asserts **gauge flatness** from :mod:`repro.obs`:

- out-of-context tables drained (``ritas_ooc_pending`` / ``_bytes`` 0),
- no locally-pending AB payloads (``ritas_ab_pending_local`` 0),
- the switch fabric idle (no queued frames on any link),
- live-instance counts back at the post-warmup baseline (bounded GC),
- every recovery manager in ``PHASE_LIVE``.

Any residue is a leak that only shows up under sustained operation --
the failure class unit tests structurally cannot see.  The protocol
invariant checker rides along the whole run (bounded ``order_log_cap``
windows keep its memory flat too), so safety violations surface at the
event that caused them even hours of simulated time in.

Entry points: :func:`run_soak` (library) and
``python -m repro.check soak`` (CLI; ``--smoke`` runs the shortened CI
variant that still covers every gray-failure window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.kv_store import ReplicatedKvStore
from repro.check.invariants import InvariantChecker
from repro.core.config import GroupConfig
from repro.net.faults import FaultPlan, Partition
from repro.net.links import (
    Degrading,
    Delay,
    Duplicating,
    FlakyMac,
    LinkModel,
    Lossy,
    Reordering,
)
from repro.net.network import LanSimulation
from repro.obs.export import write_jsonl_path
from repro.recovery import PHASE_LIVE, RecoveryManager

#: Two-site split reused by the WAN and partition windows.
_ZONES = ((0, 1), (2, 3))

def _instances_per_round(n: int) -> int:
    """Upper bound on protocol instances one AB agreement round can
    hold live at once.  A fully-populated round's subtree measures 26
    instances at n=4 (n vector-consensus receivers, the multi-valued
    consensus with its per-proposal reliable broadcasts, the binary
    consensus with per-round echo broadcasts, payload broadcasts);
    ``8 * n`` keeps honest headroom above that.  Deliberately generous
    -- the ceiling exists to catch monotone leaks over hours, not to
    second-guess the collector's cadence."""
    return 8 * n


class SoakError(RuntimeError):
    """A flatness assertion failed after a fault window cleared."""

    def __init__(self, window: str, time_s: float, failures: list[str]):
        self.window = window
        self.time_s = time_s
        self.failures = failures
        detail = "; ".join(failures)
        super().__init__(
            f"soak flatness violated after window {window!r} at t={time_s:.1f}s: {detail}"
        )


@dataclass(frozen=True)
class FaultWindow:
    """One entry in the rotating schedule.

    *arm* mutates the runner's live machinery (link model, fault plan,
    churn timers) at window start; *disarm* undoes anything
    :meth:`LinkModel.reset` does not (default: nothing extra).
    *load_period* throttles the per-replica write rate while the fault
    holds -- the slow-replica window must not outrun a 100x-slow CPU.
    """

    name: str
    description: str
    gray: bool = False
    load_period: float = 0.25
    arm: Callable[["SoakRunner"], None] | None = None
    disarm: Callable[["SoakRunner"], None] | None = None


@dataclass
class WindowReport:
    name: str
    start_s: float
    end_s: float
    writes: int
    gauges: dict[str, Any] = field(default_factory=dict)


@dataclass
class SoakReport:
    seed: int
    simulated_s: float
    events: int
    writes: int
    windows: list[WindowReport] = field(default_factory=list)

    @property
    def gray_windows(self) -> int:
        names = {w.name for w in SCHEDULE if w.gray}
        return sum(1 for w in self.windows if w.name in names)


# -- the rotating schedule ---------------------------------------------------------


def _arm_slow_replica(runner: "SoakRunner") -> None:
    runner.model.set_host_slowdown(2, 100.0)


def _arm_flaky_mac(runner: "SoakRunner") -> None:
    flaky = FlakyMac(p=0.1, rto_s=5e-3)
    for dest in runner.sim.config.process_ids:
        if dest != 1:
            runner.model.set_behavior(1, dest, flaky)


def _arm_degrading(runner: "SoakRunner") -> None:
    runner.model.set_default(
        Degrading(
            start_s=runner.sim.now,
            ramp_s=runner.fault_s / 2.0,
            max_extra_s=0.01,
        )
    )


def _arm_wan_asym(runner: "SoakRunner") -> None:
    zone_of = {pid: index for index, zone in enumerate(_ZONES) for pid in zone}
    cross = Delay(base_s=0.015, jitter_s=2e-3)
    for src in runner.sim.config.process_ids:
        for dest in runner.sim.config.process_ids:
            if src != dest and zone_of.get(src) != zone_of.get(dest):
                runner.model.set_behavior(src, dest, cross)


def _arm_lossy(runner: "SoakRunner") -> None:
    runner.model.set_default(Lossy(p=0.08, rto_s=0.01))


def _arm_duplicating(runner: "SoakRunner") -> None:
    runner.model.set_default(Duplicating(p=0.15, echo_delay_s=2e-3))


def _arm_reordering(runner: "SoakRunner") -> None:
    runner.model.set_default(Reordering(p=0.5, spread_s=3e-3))


def _arm_partition(runner: "SoakRunner") -> None:
    now = runner.sim.now
    partition = Partition(now, now + runner.fault_s * 0.6, _ZONES)
    runner.sim.fault_plan.partitions.append(partition)
    runner._armed_partition = partition


def _disarm_partition(runner: "SoakRunner") -> None:
    # Expired anyway -- removed so hours of rotation cannot grow the plan.
    if runner._armed_partition is not None:
        runner.sim.fault_plan.partitions.remove(runner._armed_partition)
        runner._armed_partition = None


def _arm_churn(runner: "SoakRunner") -> None:
    sim = runner.sim

    def crash() -> None:
        sim.fault_plan.crashed[3] = sim.now

    def restart() -> None:
        sim.restart_process(3)
        runner.attach_replica(3, recovering=True)

    sim.loop.schedule_at(sim.now + 1.0, crash)
    sim.loop.schedule_at(sim.now + runner.fault_s * 0.4, restart)


#: The rotation.  Gray-failure windows lead so the CI smoke run (which
#: covers only a prefix of one rotation) always exercises all of them.
SCHEDULE: tuple[FaultWindow, ...] = (
    FaultWindow(
        "gray-slow-replica",
        "replica 2 alive but 100x slow",
        gray=True,
        load_period=2.0,
        arm=_arm_slow_replica,
    ),
    FaultWindow(
        "gray-flaky-mac",
        "replica 1's NIC corrupts 10% of outbound frames",
        gray=True,
        arm=_arm_flaky_mac,
    ),
    FaultWindow(
        "gray-degrading",
        "every link's latency ramps to 10 ms",
        gray=True,
        arm=_arm_degrading,
    ),
    FaultWindow(
        "wan-asym", "15 ms asymmetric cross-zone latency", arm=_arm_wan_asym
    ),
    FaultWindow("wan-lossy", "8% loss as retransmit delay", arm=_arm_lossy),
    FaultWindow("wan-dup", "15% frame duplication", arm=_arm_duplicating),
    FaultWindow("wan-reorder", "half of all frames detour", arm=_arm_reordering),
    FaultWindow(
        "partition-heal",
        "2/2 split held mid-agreement, then healed",
        arm=_arm_partition,
        disarm=_disarm_partition,
    ),
    FaultWindow(
        "churn-rejoin",
        "replica 3 crashes and rejoins through recovery",
        arm=_arm_churn,
    ),
)


# -- the runner --------------------------------------------------------------------


class SoakRunner:
    """One long-lived simulated group driven through fault windows.

    The group runs a replicated KV store on AB with a recovery manager
    per replica (so the churn window can rejoin through checkpoint
    transfer) and a paced open-loop write load.  Windows are executed
    with :meth:`run_window`; :meth:`run` cycles :data:`SCHEDULE` until
    the simulated-time budget is spent.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        n: int = 4,
        fault_s: float = 20.0,
        settle_s: float = 10.0,
        load_period: float = 0.25,
        checkpoint_interval: int = 16,
        deep_check_interval: int = 4096,
        order_log_cap: int = 256,
    ):
        self.fault_s = fault_s
        self.settle_s = settle_s
        self.checkpoint_interval = checkpoint_interval
        self.default_load_period = load_period
        self.model = LinkModel()
        self.sim = LanSimulation(
            config=GroupConfig(n, checkpoint_interval=checkpoint_interval),
            seed=seed,
            fault_plan=FaultPlan(),
            tie_break_seed=seed,
            link_model=self.model,
        )
        self.checker = InvariantChecker(
            self.sim,
            deep_check_interval=deep_check_interval,
            order_log_cap=order_log_cap,
        )
        self.sim.enable_metrics()
        self.report = SoakReport(seed=seed, simulated_s=0.0, events=0, writes=0)
        self.stores: dict[int, ReplicatedKvStore] = {}
        self.managers: dict[int, RecoveryManager] = {}
        self._writes = 0
        self._load_period = load_period
        self._load_paused = False
        self._next_put: dict[int, float] = {}
        self._armed_partition: Partition | None = None
        for pid in self.sim.config.process_ids:
            self.attach_replica(pid, recovering=False)

    # -- application layer -----------------------------------------------------------

    def attach_replica(self, pid: int, *, recovering: bool) -> None:
        """(Re)build the application layer on *pid*'s current stack:
        KV store, recovery manager, poke ticker and load ticker.  Used
        at construction and again after the churn window's restart
        (tickers die with the old incarnation)."""
        stack = self.sim.stacks[pid]
        store = ReplicatedKvStore(stack.create("ab", ("kv",)))
        manager = RecoveryManager(stack, store.rsm, recovering=recovering)
        self.stores[pid] = store
        self.managers[pid] = manager
        self._next_put[pid] = self.sim.now
        self.sim.add_ticker(pid, 0.05, manager.poke)
        self.sim.add_ticker(pid, 0.05, lambda: self._tick_load(pid))

    def _tick_load(self, pid: int) -> None:
        sim = self.sim
        if self._load_paused or sim.fault_plan.is_crashed(pid, sim.now):
            return
        if sim.now < self._next_put[pid]:
            return
        # Time-based pacing (not ticker-rate): windows throttle by
        # raising the period, and a paused stretch does not burst when
        # load resumes.
        self._next_put[pid] = sim.now + self._load_period
        self._writes += 1
        if self.managers[pid].phase == PHASE_LIVE:
            self.stores[pid].try_put(
                f"soak/{pid}/{self._writes}", bytes([self._writes % 251])
            )

    # -- flatness --------------------------------------------------------------------

    def _gauges(self) -> dict[str, Any]:
        sim = self.sim
        sim.sample_metrics()
        frames, frame_bytes = sim.link_queue_depth()
        per: dict[int, dict[str, Any]] = {}
        for pid in sim.config.process_ids:
            registry = sim.stacks[pid].metrics
            ab = self.stores[pid].rsm.ab
            per[pid] = {
                "ooc_pending": registry.gauge("ritas_ooc_pending").value,
                "ooc_bytes": registry.gauge("ritas_ooc_bytes").value,
                "instances_live": registry.gauge("ritas_instances_live").value,
                "ab_pending_local": registry.gauge(
                    "ritas_ab_pending_local", path="kv"
                ).value,
                "gc_lag": ab.round - ab.gc_floor,
                "phase": self.managers[pid].phase,
            }
        return {"link_frames": frames, "link_bytes": frame_bytes, "process": per}

    def _assert_flat(self, window: str, gauges: dict[str, Any]) -> None:
        failures: list[str] = []
        if gauges["link_frames"]:
            failures.append(
                f"{gauges['link_frames']} frames still queued on the fabric"
            )
        # Structural ceilings: GC may lag the round counter by up to two
        # checkpoint windows (the collector clamps to round-2 and waits
        # for the next *stable* checkpoint), and the live-instance count
        # is bounded by the uncollected rounds.  Cadence-independent, so
        # they hold at any window boundary -- while a leak (instances or
        # rounds that never collect) grows past them within a few
        # windows.
        max_lag = 2 * self.checkpoint_interval + 4
        per_round = _instances_per_round(self.sim.config.num_processes)
        for pid, sample in gauges["process"].items():
            if sample["ooc_pending"]:
                failures.append(f"p{pid}: ooc_pending={sample['ooc_pending']:.0f}")
            if sample["ab_pending_local"]:
                failures.append(
                    f"p{pid}: ab_pending_local={sample['ab_pending_local']:.0f}"
                )
            if sample["phase"] != PHASE_LIVE:
                failures.append(f"p{pid}: recovery phase {sample['phase']!r}")
            if sample["gc_lag"] > max_lag:
                failures.append(
                    f"p{pid}: gc lag {sample['gc_lag']} rounds (cap {max_lag})"
                )
            ceiling = (min(sample["gc_lag"], max_lag) + 4) * per_round
            if sample["instances_live"] > ceiling:
                failures.append(
                    f"p{pid}: instances_live={sample['instances_live']:.0f} "
                    f"(ceiling {ceiling} for gc lag {sample['gc_lag']})"
                )
        if failures:
            raise SoakError(window, self.sim.now, failures)

    # -- window execution ------------------------------------------------------------

    def run_window(self, window: FaultWindow) -> WindowReport:
        """Arm, hold under load, disarm, settle, assert flatness."""
        sim = self.sim
        start = sim.now
        writes_before = self._writes
        self._load_period = window.load_period
        if window.arm is not None:
            window.arm(self)
        sim.run(max_time=start + self.fault_s)
        self.model.reset()
        if window.disarm is not None:
            window.disarm(self)
        self._load_period = self.default_load_period
        # Quiesce: pause the load so in-flight agreements finish, then
        # judge the leftovers.  Flat gauges here mean the fault left no
        # residue -- the soak's whole point.
        self._load_paused = True
        sim.run(max_time=sim.now + self.settle_s)
        self._load_paused = False
        gauges = self._gauges()
        self._assert_flat(window.name, gauges)
        report = WindowReport(
            name=window.name,
            start_s=start,
            end_s=sim.now,
            writes=self._writes - writes_before,
            gauges=gauges,
        )
        self.report.windows.append(report)
        return report

    def _warmup(self) -> WindowReport:
        """Fault-free shakeout window: the group must pass the same
        flatness bar *before* any fault runs, so a later failure is
        attributable to a fault window and not to the harness."""
        return self.run_window(FaultWindow("warmup", "fault-free shakeout"))

    def run(
        self,
        total_s: float,
        *,
        progress: Callable[[WindowReport], None] | None = None,
    ) -> SoakReport:
        """Cycle :data:`SCHEDULE` until *total_s* simulated seconds have
        elapsed (the window in flight always completes), then run the
        checker's final deep sweep."""
        report = self._warmup()
        if progress is not None:
            progress(report)
        index = 0
        while self.sim.now < total_s:
            report = self.run_window(SCHEDULE[index % len(SCHEDULE)])
            index += 1
            if progress is not None:
                progress(report)
        self.checker.check_all()
        self.report.simulated_s = self.sim.now
        self.report.events = self.sim.loop.events_processed
        self.report.writes = self._writes
        return self.report

    def export_obs(self, path: str) -> int:
        """Write the JSONL metrics snapshot CI uploads as an artifact."""
        return write_jsonl_path(
            path,
            self.sim.metric_registries(),
            meta={
                "harness": "soak",
                "seed": self.report.seed,
                "simulated_s": self.sim.now,
                "windows": len(self.report.windows),
            },
        )


def run_soak(
    *,
    hours: float = 1.0,
    seed: int = 0,
    smoke: bool = False,
    out: str | None = None,
    progress: Callable[[WindowReport], None] | None = None,
) -> SoakReport:
    """Run the rotating-fault soak for *hours* of simulated time.

    ``smoke=True`` is the CI variant: shortened windows and a few
    minutes of simulated time, still covering at least one full
    rotation (so every gray-failure window runs).  Raises
    :class:`SoakError` on a flatness failure and
    :class:`~repro.check.invariants.InvariantViolation` on a safety
    violation; *out* (optional) receives the obs JSONL snapshot either
    way -- the artifact matters most when the run fails.
    """
    if smoke:
        runner = SoakRunner(seed=seed, fault_s=6.0, settle_s=4.0)
        total_s = (len(SCHEDULE) + 1) * (runner.fault_s + runner.settle_s)
    else:
        runner = SoakRunner(seed=seed)
        total_s = hours * 3600.0
    try:
        return runner.run(total_s, progress=progress)
    finally:
        if out is not None:
            runner.export_obs(out)
