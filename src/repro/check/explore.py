"""Seed-driven schedule exploration, shrinking and replay.

A run is **fully determined** by its parameters: the master ``seed``
(per-process RNGs, coins, keys), the ``tie_break_seed`` (ordering of
same-time simulator events), ``jitter_s`` (per-message latency noise)
and the op list.  Recording the schedule therefore means recording
those parameters -- the reproducer JSON *is* the schedule, and replay
is simply re-running it.

:func:`explore` sweeps a budget of parameter combinations over one
scenario; on the first :class:`InvariantViolation` it calls
:func:`shrink`, which greedily drops ops (keeping the violation alive)
and then truncates the run to the violating event, and returns a
reproducer dict (format ``repro.check/v1``).  :func:`replay` re-executes
a reproducer and reports whether the violation still fires.
"""

from __future__ import annotations

import json
from typing import Any

from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.scenarios import SCENARIOS, Op, Scenario

REPRODUCER_FORMAT = "repro.check/v1"

#: Latency-noise settings cycled through during exploration: the
#: symmetric LAN, sub-switch-latency noise and switch-scale noise reach
#: meaningfully different interleaving families.
JITTER_CHOICES = (0.0, 1e-4, 1e-3)


def _resolve(scenario: "Scenario | str") -> Scenario:
    if isinstance(scenario, str):
        try:
            return SCENARIOS[scenario]
        except KeyError:
            known = ", ".join(sorted(SCENARIOS))
            raise ValueError(f"unknown scenario {scenario!r} (known: {known})") from None
    return scenario


def run_one(
    scenario: "Scenario | str",
    *,
    seed: int,
    tie_break_seed: int | None,
    jitter_s: float = 0.0,
    ops: list[Op] | None = None,
    max_events: int | None = None,
    deep_check_interval: int = 512,
) -> dict[str, Any]:
    """Execute one fully-parameterized run under the invariant checker.

    Returns a result dict: ``outcome`` is ``"ok"`` or ``"violation"``
    (with the violation's invariant/path/detail/event_index),
    ``events`` is the simulator event count, ``stop`` the loop's stop
    reason.
    """
    scenario = _resolve(scenario)
    if ops is None:
        ops = scenario.ops
    sim = scenario.build(seed, tie_break_seed, jitter_s)
    checker = InvariantChecker(sim, deep_check_interval=deep_check_interval)
    try:
        scenario.apply_ops(sim, ops)
        scenario.start(sim)
        stop = sim.run(max_time=scenario.max_time, max_events=max_events)
        # Final sweep regardless of why the run stopped: a truncated
        # replay must still surface a violation first caught by the
        # end-of-run sweep rather than mid-event.
        checker.check_all()
    except InvariantViolation as violation:
        return {
            "outcome": "violation",
            "invariant": violation.invariant,
            "path": list(violation.path),
            "detail": violation.detail,
            "event_index": (
                violation.event_index
                if violation.event_index >= 0
                else sim.loop.events_processed
            ),
            "events": sim.loop.events_processed,
        }
    return {"outcome": "ok", "events": sim.loop.events_processed, "stop": stop}


def shrink(
    scenario: "Scenario | str",
    *,
    seed: int,
    tie_break_seed: int | None,
    jitter_s: float,
    ops: list[Op],
    invariant: str,
) -> dict[str, Any]:
    """Minimize a violating run: greedily drop ops while the *same*
    invariant keeps failing, then truncate to the violating event.

    Returns the reproducer dict (see :data:`REPRODUCER_FORMAT`).
    """
    scenario = _resolve(scenario)

    def still_fails(candidate: list[Op]) -> dict[str, Any] | None:
        result = run_one(
            scenario,
            seed=seed,
            tie_break_seed=tie_break_seed,
            jitter_s=jitter_s,
            ops=candidate,
        )
        if result["outcome"] == "violation" and result["invariant"] == invariant:
            return result
        return None

    current = list(ops)
    result = still_fails(current)
    if result is None:
        # The violation depends on exactly the original ops; fall back
        # to reproducing it unshrunk.
        result = run_one(
            scenario, seed=seed, tie_break_seed=tie_break_seed, jitter_s=jitter_s, ops=current
        )
    else:
        progress = True
        while progress:
            progress = False
            for index in range(len(current) - 1, -1, -1):
                candidate = current[:index] + current[index + 1 :]
                if not candidate:
                    continue
                trimmed = still_fails(candidate)
                if trimmed is not None:
                    current = candidate
                    result = trimmed
                    progress = True
    return {
        "format": REPRODUCER_FORMAT,
        "scenario": scenario.name,
        "seed": seed,
        "tie_break_seed": tie_break_seed,
        "jitter_s": jitter_s,
        "ops": current,
        "max_events": result.get("event_index"),
        "violation": {
            "invariant": result.get("invariant"),
            "path": result.get("path"),
            "detail": result.get("detail"),
            "event_index": result.get("event_index"),
        },
    }


def explore(
    scenario: "Scenario | str",
    budget: int,
    *,
    base_seed: int = 0,
    jitter_choices: tuple[float, ...] = JITTER_CHOICES,
    progress: Any = None,
) -> dict[str, Any] | None:
    """Sweep *budget* parameter combinations over *scenario*.

    Seeds run ``base_seed .. base_seed + budget - 1``; each run pairs
    its seed with a distinct tie-break seed and cycles through
    *jitter_choices*.  Returns ``None`` when every run is clean, or the
    shrunken reproducer of the first violation.
    """
    scenario = _resolve(scenario)
    for index in range(budget):
        seed = base_seed + index
        tie_break_seed = base_seed + index
        jitter_s = jitter_choices[index % len(jitter_choices)] if jitter_choices else 0.0
        result = run_one(
            scenario, seed=seed, tie_break_seed=tie_break_seed, jitter_s=jitter_s
        )
        if progress is not None:
            progress(index, seed, result)
        if result["outcome"] == "violation":
            return shrink(
                scenario,
                seed=seed,
                tie_break_seed=tie_break_seed,
                jitter_s=jitter_s,
                ops=scenario.ops,
                invariant=result["invariant"],
            )
    return None


def replay(reproducer: dict[str, Any]) -> dict[str, Any]:
    """Re-execute a reproducer; returns the fresh :func:`run_one` result.

    Determinism guarantee: the same reproducer yields the same result
    dict every time (same violation at the same event index, or the
    same clean run if the underlying bug was fixed).
    """
    if reproducer.get("format") != REPRODUCER_FORMAT:
        raise ValueError(
            f"unsupported reproducer format {reproducer.get('format')!r} "
            f"(expected {REPRODUCER_FORMAT!r})"
        )
    return run_one(
        reproducer["scenario"],
        seed=reproducer["seed"],
        tie_break_seed=reproducer["tie_break_seed"],
        jitter_s=reproducer["jitter_s"],
        ops=[list(op) for op in reproducer["ops"]],
        max_events=reproducer.get("max_events"),
    )


def load_reproducer(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def dump_reproducer(reproducer: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(reproducer, handle, indent=2, sort_keys=True)
        handle.write("\n")
