"""Runtime protocol-invariant checking over a running simulation.

The checker hangs off two hooks the core exposes:

- :attr:`Stack.observer` -- called with the delivering control block on
  every :meth:`ControlBlock.deliver`, marking that instance path
  *dirty*;
- :attr:`EventLoop.on_event` -- called after every processed simulator
  event; the checker then re-examines only the dirty paths, comparing
  :meth:`ControlBlock.inspect` snapshots across *correct* processes.

Checked invariants, per protocol layer:

===========  ==================================================================
rb / eb      no conflicting deliveries: every correct process that delivered
             a same-path broadcast delivered the same value (by digest)
bc           agreement (one decision value per instance) and validity (a
             unanimous correct proposal is the only decidable value)
mvc          agreement on the decision key; a non-⊥ decision was proposed
             by some correct process
vc           agreement on the decided vector; a correct process's slot
             holds its proposal or ⊥
ab           the totally-ordered delivery logs of correct processes
             agree wherever their observation windows overlap (aligned
             on the first shared message id, so rejoined replicas'
             mid-history logs and bounded soak windows compare cleanly)
ooc          per-stack conservation: stored == pending + drained + purged
             + evicted (every stack, Byzantine included -- the table is
             honest machinery even under a corrupt protocol suite), plus
             a full :meth:`OocTable.check_consistency` sweep every
             ``deep_check_interval`` events
===========  ==================================================================

Violations raise :class:`InvariantViolation` from inside the event
loop, aborting the run at the exact event that broke the property --
which is what lets the explorer (:mod:`repro.check.explore`) record a
minimal reproducer.
"""

from __future__ import annotations

from typing import Any

from repro.core.stack import ControlBlock, Stack
from repro.core.wire import Path
from repro.net.network import LanSimulation


def _first_shared(
    log_a: list[tuple[int, int, bytes]], log_b: list[tuple[int, int, bytes]]
) -> tuple[int, int] | None:
    """Position of the first entry of *log_a* whose message id also
    appears in *log_b*, as ``(index_a, index_b)``; None when no id is
    shared."""
    index_b: dict[tuple[int, int], int] = {}
    for position, entry in enumerate(log_b):
        index_b.setdefault(entry[:2], position)
    for position_a, entry in enumerate(log_a):
        position_b = index_b.get(entry[:2])
        if position_b is not None:
            return (position_a, position_b)
    return None


def align_order_logs(
    log_a: list[tuple[int, int, bytes]], log_b: list[tuple[int, int, bytes]]
) -> tuple[int, int, int, bool] | None:
    """Align two delivery-order observation windows on their first
    shared message id.

    Order logs stopped being plain prefixes of one another the moment
    replicas could *rejoin* (a recovered replica's log starts
    mid-history) and logs could be *bounded* (``order_log_cap`` keeps a
    trailing window).  Both cases still expose a comparable overlap:
    message ids ``(sender, rbid)`` are unique across the total order,
    so the first id two logs share anchors them.

    Returns ``(index_a, index_b, overlap_length, anchors_agree)``, or
    ``None`` when the windows are disjoint (nothing to compare -- e.g.
    one replica's window was truncated past the other's history).

    ``anchors_agree`` guards against order *swaps* that a one-direction
    scan would anchor past: scanning A for its first entry shared with B
    and scanning B for its first entry shared with A must land on the
    same pair when both logs are windows of one total order (the window
    that starts later begins inside the other, so one index is 0).
    ``A=[m1, m2]`` vs ``B=[m2, m1]`` yields anchors ``(0, 1)`` and
    ``(1, 0)`` -- disagreement, which is itself an order violation.
    """
    if not log_a or not log_b:
        return None
    if log_a[0][:2] == log_b[0][:2]:  # fast path: windows start together
        return (0, 0, min(len(log_a), len(log_b)), True)
    forward = _first_shared(log_a, log_b)
    if forward is None:
        return None
    backward = _first_shared(log_b, log_a)
    agree = backward == (forward[1], forward[0])
    overlap = min(len(log_a) - forward[0], len(log_b) - forward[1])
    return (forward[0], forward[1], overlap, agree)


class InvariantViolation(AssertionError):
    """A cross-process protocol property failed.

    Attributes:
        invariant: short name of the violated property
            (``"rb-agreement"``, ``"bc-validity"``, ``"ab-order"``, ...).
        path: instance path involved (``()`` for stack-level checks).
        event_index: how many simulator events had been processed when
            the violation surfaced (the replayable position).
    """

    def __init__(self, invariant: str, path: Path, detail: str, event_index: int = -1):
        super().__init__(f"[{invariant}] at {path!r}: {detail}")
        self.invariant = invariant
        self.path = path
        self.detail = detail
        self.event_index = event_index


class InvariantChecker:
    """Asserts cross-process protocol invariants after every event.

    Attach to a simulation **before** creating protocol instances (the
    atomic-broadcast order log is sized at instance construction)::

        sim = LanSimulation(n=4, seed=7)
        checker = InvariantChecker(sim)
        ... create instances, propose ...
        sim.run(...)          # raises InvariantViolation on breakage
        checker.check_all()   # final full sweep

    Args:
        sim: the simulation to watch.
        deep_check_interval: run the O(entries) out-of-context table
            consistency sweep every this many events (0 disables it).
        order_log_cap: bound each atomic-broadcast order log to its most
            recent entries (0 = unbounded).  Soak runs set this so hours
            of simulated history check windowed order agreement at flat
            memory; :func:`align_order_logs` handles the windows.
    """

    def __init__(
        self,
        sim: LanSimulation,
        deep_check_interval: int = 512,
        order_log_cap: int = 0,
    ):
        self.sim = sim
        self.deep_check_interval = deep_check_interval
        self.order_log_cap = order_log_cap
        self.checks_run = 0
        self.correct = set(sim.correct_ids())
        self._dirty: set[Path] = set()
        for pid, stack in enumerate(sim.stacks):
            self._instrument(pid, stack)
        # Chain rather than overwrite: several simulations (shards) may
        # share one EventLoop, each with its own checker; every checker
        # in the chain still runs after every event.
        previous_on_event = sim.loop.on_event
        if previous_on_event is None:
            sim.loop.on_event = self._on_event
        else:

            def chained() -> None:
                previous_on_event()
                self._on_event()

            sim.loop.on_event = chained
        # A restarted process gets a fresh stack; re-instrument it (the
        # restart also cleared its crash entry, making it correct again).
        previous_hook = sim.on_stack_rebuilt

        def rebuilt(pid: int, stack: Stack) -> None:
            if previous_hook is not None:
                previous_hook(pid, stack)
            self.correct = set(self.sim.correct_ids())
            self._instrument(pid, stack)

        sim.on_stack_rebuilt = rebuilt

    def _instrument(self, pid: int, stack: Stack) -> None:
        stack.record_delivery_order = True
        stack.order_log_cap = self.order_log_cap
        if pid in self.correct:
            stack.observer = self._observe

    # -- hooks ---------------------------------------------------------------------

    def _observe(self, block: ControlBlock) -> None:
        # A delivery mutates not just the delivering block but every
        # ancestor that consumes it via child_event -- mark the whole
        # chain dirty so e.g. binary consensus's step bookkeeping is
        # rechecked when one of its round broadcasts completes.
        node: ControlBlock | None = block
        while node is not None:
            self._dirty.add(node.path)
            node = node.parent

    def _on_event(self) -> None:
        self.checks_run += 1
        event_index = self.sim.loop.events_processed
        try:
            for stack in self.sim.stacks:
                stack.check_ooc_accounting()
            if (
                self.deep_check_interval
                and self.checks_run % self.deep_check_interval == 0
            ):
                for stack in self.sim.stacks:
                    stack.ooc.check_consistency()
        except AssertionError as exc:
            if isinstance(exc, InvariantViolation):
                raise
            raise InvariantViolation(
                "ooc-accounting", (), str(exc), event_index
            ) from None
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, set()
        for path in dirty:
            self._check_path(path, event_index)

    # -- sweeps --------------------------------------------------------------------

    def check_all(self) -> None:
        """Full sweep over every live instance path on correct stacks.

        Call after a run quiesces; catches divergence on paths whose
        last delivery predates a later-created peer instance.
        """
        event_index = self.sim.loop.events_processed
        paths: set[Path] = set()
        for pid in self.correct:
            paths.update(self.sim.stacks[pid].instances())
        for path in paths:
            self._check_path(path, event_index)
        for stack in self.sim.stacks:
            try:
                stack.check_ooc_accounting()
                stack.ooc.check_consistency()
            except AssertionError as exc:
                if isinstance(exc, InvariantViolation):
                    raise
                raise InvariantViolation(
                    "ooc-accounting", (), str(exc), event_index
                ) from None

    def _check_path(self, path: Path, event_index: int) -> None:
        views: dict[int, dict[str, Any]] = {}
        protocol = None
        for pid in self.correct:
            instance = self.sim.stacks[pid].instance_at(path)
            if instance is None:
                continue
            views[pid] = instance.inspect()
            protocol = views[pid]["protocol"]
        if len(views) < 2:
            return
        checker = getattr(self, f"_check_{protocol}", None)
        if checker is not None:
            checker(path, views, event_index)

    # -- per-protocol invariants ----------------------------------------------------

    def _fail(self, invariant: str, path: Path, detail: str, event_index: int) -> None:
        raise InvariantViolation(invariant, path, detail, event_index)

    def _agree_on(
        self,
        key: str,
        invariant: str,
        path: Path,
        views: dict[int, dict[str, Any]],
        event_index: int,
    ) -> None:
        """All views carrying *key* must carry the same value."""
        seen: dict[int, Any] = {
            pid: view[key] for pid, view in views.items() if key in view
        }
        if len(set(map(repr, seen.values()))) > 1:
            self._fail(
                invariant,
                path,
                f"correct processes disagree on {key}: "
                + ", ".join(f"p{pid}={value!r}" for pid, value in sorted(seen.items())),
                event_index,
            )

    def _check_rb(self, path, views, event_index) -> None:
        self._agree_on("value_digest", "rb-agreement", path, views, event_index)

    def _check_eb(self, path, views, event_index) -> None:
        self._agree_on("value_digest", "eb-agreement", path, views, event_index)

    def _check_bc(self, path, views, event_index) -> None:
        decisions = {
            pid: v["decision"] for pid, v in views.items() if v.get("decided")
        }
        if len(set(decisions.values())) > 1:
            self._fail(
                "bc-agreement",
                path,
                f"conflicting decisions: "
                + ", ".join(f"p{pid}={d}" for pid, d in sorted(decisions.items())),
                event_index,
            )
        # Step-3 uniqueness: the strict-majority (> n/2) bar over step-2
        # values guarantees no two correct processes ever enter step 3 of
        # the same round with different non-⊥ values -- the lemma the
        # whole safety argument rests on.  Weakening the bar (e.g. to
        # (n-f)/2) breaks exactly this, well before decisions conflict.
        step3: dict[int, dict[int, int]] = {}
        for pid, view in views.items():
            for (round_number, step), value in view.get("step_values", {}).items():
                if step == 3 and value is not None:
                    step3.setdefault(round_number, {})[pid] = value
        for round_number, values in sorted(step3.items()):
            if len(set(values.values())) > 1:
                self._fail(
                    "bc-step3-uniqueness",
                    path,
                    f"round {round_number}: correct processes entered step 3 "
                    "with different values: "
                    + ", ".join(f"p{pid}={v}" for pid, v in sorted(values.items())),
                    event_index,
                )
        # Coin-branch legality (Bracha engine only -- `coin_rounds` holds
        # the step-3 tallies snapshotted at each toss): a correct process
        # may only fall through to the coin when its step-3 view could be
        # congruent with any correct peer's -- at most f counts per
        # definite value (more would mean f+1 step-3 votes for v, forcing
        # *adopt v*, never the coin) and a full n-f quorum of step-3
        # messages total.  An engine bug that tosses early (short quorum)
        # or past an adopt threshold shows up here before it can surface
        # as a (schedule-dependent) agreement violation.
        config = self.sim.config
        for pid, view in views.items():
            for round_number, counts in sorted(view.get("coin_rounds", {}).items()):
                c0, c1, cbot = counts
                if c0 > config.f or c1 > config.f:
                    self._fail(
                        "bc-coin-legality",
                        path,
                        f"p{pid} round {round_number}: tossed the coin with "
                        f"step-3 counts (c0={c0}, c1={c1}, ⊥={cbot}) although "
                        f"some value exceeded f={config.f} (adopt was forced)",
                        event_index,
                    )
                if c0 + c1 + cbot < config.wait_quorum:
                    self._fail(
                        "bc-coin-legality",
                        path,
                        f"p{pid} round {round_number}: tossed the coin on "
                        f"{c0 + c1 + cbot} step-3 messages, below the "
                        f"n-f={config.wait_quorum} quorum",
                        event_index,
                    )
        proposals = {
            pid: v["proposal"] for pid, v in views.items() if v["proposal"] is not None
        }
        if decisions and len(proposals) == len(views) and len(set(proposals.values())) == 1:
            unanimous = next(iter(proposals.values()))
            wrong = {pid: d for pid, d in decisions.items() if d != unanimous}
            if wrong:
                self._fail(
                    "bc-validity",
                    path,
                    f"all correct proposed {unanimous} but "
                    + ", ".join(f"p{pid} decided {d}" for pid, d in sorted(wrong.items())),
                    event_index,
                )

    def _check_mvc(self, path, views, event_index) -> None:
        self._agree_on("decision_key", "mvc-agreement", path, views, event_index)
        proposal_keys = {v["proposal_key"] for v in views.values() if v.get("proposed")}
        for pid, view in views.items():
            key = view.get("decision_key")
            if key is not None and len(proposal_keys) == len(views):
                # Every correct process has proposed, so a non-⊥ decision
                # must match one of their proposals (n - 2f >= f + 1
                # matching INITs force at least one correct proposer).
                if key not in proposal_keys:
                    self._fail(
                        "mvc-validity",
                        path,
                        f"p{pid} decided a value no correct process proposed",
                        event_index,
                    )

    def _check_vc(self, path, views, event_index) -> None:
        self._agree_on("decision_key", "vc-agreement", path, views, event_index)
        for pid, view in views.items():
            decision = view.get("decision")
            if decision is None:
                continue
            for other, other_view in views.items():
                if not other_view.get("proposed"):
                    continue
                slot = decision[other] if other < len(decision) else None
                if slot is not None and slot != other_view["proposal"]:
                    self._fail(
                        "vc-validity",
                        path,
                        f"p{pid}'s decided vector holds {slot!r} in correct "
                        f"p{other}'s slot, which proposed {other_view['proposal']!r}",
                        event_index,
                    )

    def _check_ab(self, path, views, event_index) -> None:
        logs = {
            pid: list(view["order_log"])
            for pid, view in views.items()
            if "order_log" in view
        }
        pids = sorted(logs)
        for a, b in zip(pids, pids[1:]):
            log_a, log_b = logs[a], logs[b]
            aligned = align_order_logs(log_a, log_b)
            if aligned is None:
                # Disjoint observation windows (a rejoined replica whose
                # history starts past the other's bounded window): the
                # logs share no message, so order cannot be compared --
                # and cannot conflict.
                continue
            start_a, start_b, overlap, anchors_agree = aligned
            if not anchors_agree or (start_a > 0 and start_b > 0):
                # Each log delivered messages the other never saw
                # *before* their first shared delivery -- under a total
                # order at most one window may extend further back.
                self._fail(
                    "ab-order",
                    path,
                    f"p{a} and p{b} each delivered messages the other "
                    f"lacks before their first shared delivery "
                    f"({log_a[start_a]!r}): {log_a[:start_a]!r} vs "
                    f"{log_b[:start_b]!r}",
                    event_index,
                )
            for offset in range(overlap):
                if log_a[start_a + offset] != log_b[start_b + offset]:
                    self._fail(
                        "ab-order",
                        path,
                        f"delivery order of p{a} and p{b} diverges "
                        f"{offset} deliveries after their common anchor: "
                        f"{log_a[start_a + offset]!r} vs "
                        f"{log_b[start_b + offset]!r}",
                        event_index,
                    )
