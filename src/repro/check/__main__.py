"""CLI for the invariant checker / schedule explorer.

Usage::

    python -m repro.check scenarios
    python -m repro.check explore --scenario byz-ooc-flood --budget 200
    python -m repro.check replay repro-check-byz-ooc-flood.json
    python -m repro.check soak --hours 1.0 --out soak-obs.jsonl

``explore`` exits 0 when every run is clean and 1 on a violation, after
writing the shrunken reproducer JSON (``--out``, default
``repro-check-<scenario>.json``) -- CI uploads that file as an
artifact.  ``replay`` exits 1 while the reproducer still violates
(the bug is alive) and 0 once it runs clean.

``soak`` runs hours of simulated time under the rotating fault
schedule (see :mod:`repro.check.soak`), asserting gauge flatness at
every window boundary; ``--smoke`` is the shortened CI variant and
``--out`` writes the obs JSONL snapshot CI uploads as an artifact.

The default budget honors the ``RITAS_EXPLORE_BUDGET`` environment
variable so CI can tune exploration depth without editing workflows,
mirroring ``RITAS_FUZZ_EXAMPLES``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.check.explore import (
    dump_reproducer,
    explore,
    load_reproducer,
    replay,
)
from repro.check.scenarios import SCENARIOS

DEFAULT_BUDGET = int(os.environ.get("RITAS_EXPLORE_BUDGET", "100"))


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in SCENARIOS)
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        print(f"{name:<{width}}  n={scenario.n}  {scenario.description}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    if args.scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        print(f"unknown scenario {args.scenario!r} (known: {known})", file=sys.stderr)
        return 2

    def progress(index: int, seed: int, result: dict) -> None:
        if args.verbose:
            print(
                f"[{index + 1}/{args.budget}] seed={seed} "
                f"{result['outcome']} ({result['events']} events)"
            )

    reproducer = explore(
        args.scenario,
        args.budget,
        base_seed=args.seed_base,
        progress=progress,
    )
    if reproducer is None:
        print(
            f"{args.scenario}: {args.budget} schedules explored, "
            "no invariant violations"
        )
        return 0
    out = args.out or f"repro-check-{args.scenario}.json"
    dump_reproducer(reproducer, out)
    violation = reproducer["violation"]
    print(
        f"{args.scenario}: INVARIANT VIOLATION [{violation['invariant']}] "
        f"{violation['detail']}",
        file=sys.stderr,
    )
    print(
        f"shrunk to {len(reproducer['ops'])} ops / "
        f"{reproducer['max_events']} events; reproducer written to {out}",
        file=sys.stderr,
    )
    return 1


def _cmd_soak(args: argparse.Namespace) -> int:
    # Imported here: the soak harness pulls in the application and
    # recovery layers, which the explore/replay paths never need.
    from repro.check.invariants import InvariantViolation
    from repro.check.soak import SoakError, WindowReport, run_soak

    def progress(window: WindowReport) -> None:
        lag = max(s["gc_lag"] for s in window.gauges["process"].values())
        print(
            f"[{window.end_s:8.1f}s] {window.name:<18} "
            f"writes={window.writes:<5d} gc_lag={lag} flat"
        )

    try:
        report = run_soak(
            hours=args.hours,
            seed=args.seed,
            smoke=args.smoke,
            out=args.out,
            progress=progress,
        )
    except SoakError as error:
        print(f"SOAK FLATNESS VIOLATION: {error}", file=sys.stderr)
        return 1
    except InvariantViolation as violation:
        print(
            f"SOAK INVARIANT VIOLATION [{violation.invariant}] {violation.detail}",
            file=sys.stderr,
        )
        return 1
    print(
        f"soak clean: {report.simulated_s:.0f}s simulated, "
        f"{len(report.windows)} windows ({report.gray_windows} gray), "
        f"{report.writes} writes, {report.events} events"
    )
    if args.out:
        print(f"obs snapshot written to {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    reproducer = load_reproducer(args.file)
    result = replay(reproducer)
    print(json.dumps(result, indent=2, sort_keys=True))
    if result["outcome"] == "violation":
        print("violation reproduced", file=sys.stderr)
        return 1
    print("reproducer runs clean (bug fixed?)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="protocol invariant checker and schedule explorer",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scenarios = sub.add_parser("scenarios", help="list registered scenarios")
    p_scenarios.set_defaults(func=_cmd_scenarios)

    p_explore = sub.add_parser("explore", help="sweep schedules over one scenario")
    p_explore.add_argument("--scenario", required=True)
    p_explore.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_BUDGET,
        help=f"runs to attempt (default {DEFAULT_BUDGET}, "
        "env RITAS_EXPLORE_BUDGET)",
    )
    p_explore.add_argument("--seed-base", type=int, default=0)
    p_explore.add_argument("--out", help="reproducer path on violation")
    p_explore.add_argument("--verbose", action="store_true")
    p_explore.set_defaults(func=_cmd_explore)

    p_replay = sub.add_parser("replay", help="re-execute a reproducer JSON")
    p_replay.add_argument("file")
    p_replay.set_defaults(func=_cmd_replay)

    p_soak = sub.add_parser(
        "soak", help="hours of simulated time under rotating faults"
    )
    p_soak.add_argument(
        "--hours",
        type=float,
        default=1.0,
        help="simulated hours to run (default 1.0)",
    )
    p_soak.add_argument(
        "--smoke",
        action="store_true",
        help="shortened CI variant: one full rotation with short windows",
    )
    p_soak.add_argument("--seed", type=int, default=0)
    p_soak.add_argument("--out", help="obs JSONL snapshot path")
    p_soak.set_defaults(func=_cmd_soak)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
