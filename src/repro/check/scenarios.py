"""Named workloads for the schedule explorer.

A :class:`Scenario` bundles a group size, a fault plan and a list of
**ops** -- the JSON-serializable workload the explorer can shrink.  One
op is one application action::

    ["bc",  instance, pid, bit]        # pid proposes bit on ("bc", instance)
    ["mvc", instance, pid, "value"]    # pid proposes value (utf-8 bytes)
    ["vc",  instance, pid, "value"]    # pid proposes its vector slot
    ["ab",  instance, pid, "payload"]  # pid atomically broadcasts payload

Instances are created lazily on *every* stack at first mention (the
fault plan's factory transforms make the Byzantine process's instances
adversarial, exactly like the evaluation tests), then ops execute in
list order at virtual time zero.  Removing any op still yields a legal
run -- the shrinker relies on that.

Beyond ops, a scenario may carry an *environment*: ``partitions``
(JSON-able split schedules applied through the fault plan), a ``link``
factory building a :class:`~repro.net.links.LinkModel` (asymmetric WAN
matrices, lossy/duplicating/reordering links, gray failures), and a
``driver`` callable that arms time-triggered machinery on the built
simulation (the churn scenario uses it to crash a replica mid-run and
rejoin it through the recovery path).

The registry covers the paper's faultloads (failure-free, fail-stop,
the Section 4.2 Byzantine process), every registered flooding strategy,
``byz-bc-split`` (the n=6 (n-f)/2 regression), and the hostile-network
catalog: ``wan-asym``, ``wan-lossy``, ``wan-dup``, ``wan-reorder``,
``gray-slow-replica``, ``gray-flaky-mac``, ``gray-degrading``,
``heal-mid-agreement`` and ``churn-rejoin``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.config import GroupConfig
from repro.net.faults import FaultPlan, Partition
from repro.net.links import (
    Degrading,
    Delay,
    Duplicating,
    FlakyMac,
    LinkModel,
    Lossy,
    Reordering,
    zoned_matrix,
)
from repro.net.network import LanSimulation

Op = list  # ["kind", instance, pid, value]

#: JSON-able partition spec: ``(start, end, islands)``.
PartitionSpec = tuple


@dataclass(frozen=True)
class Scenario:
    """One named exploration workload."""

    name: str
    n: int
    description: str
    ops: list[Op]
    byzantine: dict[int, str] = field(default_factory=dict)
    crashed: dict[int, float] = field(default_factory=dict)
    config_kwargs: dict[str, Any] = field(default_factory=dict)
    max_time: float = 120.0
    #: Temporary splits, as ``(start, end, islands)`` tuples.
    partitions: tuple[PartitionSpec, ...] = ()
    #: Factory building a fresh :class:`LinkModel` per run (a shared
    #: instance would leak RNG state between explorer runs).
    link: Callable[[], LinkModel] | None = None
    #: Callable run once on the built simulation, after :meth:`apply_ops`
    #: and before the clock starts -- arms timers, churn, application
    #: machinery.  Drivers must schedule deterministically (simulated
    #: clock only).
    driver: Callable[[LanSimulation], None] | None = None

    def fault_plan(self) -> FaultPlan:
        plan = FaultPlan(crashed=dict(self.crashed))
        for pid, strategy in self.byzantine.items():
            plan.byzantine[pid] = FaultPlan.with_byzantine(pid, strategy).byzantine[pid]
        for start, end, islands in self.partitions:
            plan.partitions.append(
                Partition(start, end, tuple(tuple(island) for island in islands))
            )
        return plan

    def config(self) -> GroupConfig:
        return GroupConfig(self.n, **self.config_kwargs)

    def build(
        self, seed: int, tie_break_seed: int | None, jitter_s: float
    ) -> LanSimulation:
        return LanSimulation(
            config=self.config(),
            seed=seed,
            fault_plan=self.fault_plan(),
            jitter_s=jitter_s,
            tie_break_seed=tie_break_seed,
            link_model=self.link() if self.link is not None else None,
        )

    def apply_ops(self, sim: LanSimulation, ops: list[Op]) -> None:
        """Create the instances ops mention, then execute the ops."""
        for kind, instance, _pid, _value in ops:
            path = (kind, instance)
            for stack in sim.stacks:
                if stack.instance_at(path) is None:
                    stack.create(kind, path)
        for kind, instance, pid, value in ops:
            target = sim.stacks[pid].instance_at((kind, instance))
            if kind == "bc":
                target.propose(value)
            elif kind in ("mvc", "vc"):
                target.propose(value.encode() if isinstance(value, str) else value)
            elif kind == "ab":
                target.broadcast(value.encode() if isinstance(value, str) else value)
            else:
                raise ValueError(f"unknown op kind {kind!r}")

    def start(self, sim: LanSimulation) -> None:
        """Arm the scenario's driver (if any) on the built simulation."""
        if self.driver is not None:
            self.driver(sim)


def _bc_ops(instance: str, proposals: dict[int, int]) -> list[Op]:
    return [["bc", instance, pid, bit] for pid, bit in sorted(proposals.items())]


def _ab_burst(instance: str, pids: list[int], count: int) -> list[Op]:
    return [
        ["ab", instance, pid, f"{pid}:{index}"] for pid in pids for index in range(count)
    ]


def _byz_scenario(strategy: str, n: int = 4, **kwargs: Any) -> Scenario:
    attacker = n - 1
    correct = list(range(n - 1))
    ops = _ab_burst("a", correct, 2) + _bc_ops(
        "v", {pid: pid % 2 for pid in range(n)}
    )
    return Scenario(
        name=f"byz-{strategy}",
        n=n,
        description=f"one process runs the {strategy!r} strategy under an "
        "AB burst and a mixed-proposal binary consensus",
        ops=ops,
        byzantine={attacker: strategy},
        **kwargs,
    )


# -- hostile-environment catalog (link models, partitions, churn) ------------------

#: The two-site geo-replication split used by the WAN scenarios.
WAN_ZONES = ((0, 1), (2, 3))

#: The standard mixed workload the environment scenarios run: an AB
#: burst from everyone plus a split-proposal binary consensus.
_ENV_OPS = _ab_burst("a", [0, 1, 2, 3], 2) + _bc_ops("v", {0: 1, 1: 0, 2: 1, 3: 0})


def _wan_asym_link() -> LinkModel:
    return zoned_matrix(WAN_ZONES, intra_s=2e-4, inter_s=0.015, jitter_s=2e-3)


def _wan_lossy_link() -> LinkModel:
    return LinkModel(default=Lossy(p=0.08, rto_s=0.01))


def _wan_dup_link() -> LinkModel:
    return LinkModel(default=Duplicating(p=0.15, echo_delay_s=2e-3))


def _wan_reorder_link() -> LinkModel:
    return LinkModel(default=Reordering(p=0.5, spread_s=3e-3))


def _gray_slow_link() -> LinkModel:
    return LinkModel(host_slowdowns={3: 100.0})


def _gray_flaky_mac_link() -> LinkModel:
    # Process 2's NIC corrupts outbound frames intermittently; the
    # clean TCP retransmission follows one RTO later.
    flaky = FlakyMac(p=0.1, rto_s=5e-3)
    return LinkModel(behaviors={(2, dest): flaky for dest in range(4) if dest != 2})


def _gray_degrading_link() -> LinkModel:
    return LinkModel(default=Degrading(start_s=0.02, ramp_s=0.5, max_extra_s=0.01))


def _churn_driver(sim: LanSimulation) -> None:
    """Crash replica 3 mid-run and rejoin it through the recovery path,
    twice, while every live replica keeps submitting commands.

    The whole application layer lives in the driver (ops stay empty):
    replicated KV stores over AB, a recovery manager per replica for
    checkpoint certificates, and workload tickers that survive the
    churn.  The invariant checker still sees every protocol instance
    underneath -- agreement under churn is exactly what it sweeps.
    """
    # Imported here: repro.recovery imports protocol modules that import
    # repro.core.stack, the hub this package hangs off.
    from repro.apps.kv_store import ReplicatedKvStore
    from repro.recovery import RecoveryManager

    stores: list[ReplicatedKvStore] = []
    writes = {"count": 0}

    def attach(pid: int, recovering: bool) -> None:
        stack = sim.stacks[pid]
        store = ReplicatedKvStore(stack.create("ab", ("kv",)))
        manager = RecoveryManager(stack, store.rsm, recovering=recovering)
        sim.add_ticker(pid, 0.01, manager.poke)
        if len(stores) > pid:
            stores[pid] = store
        else:
            stores.append(store)

    def write(pid: int) -> None:
        if sim.now > 1.8 or sim.fault_plan.is_crashed(pid, sim.now):
            return
        writes["count"] += 1
        stores[pid].try_put(f"c/{pid}/{writes['count']}", bytes([writes["count"] % 251]))

    def add_writer(pid: int) -> None:
        sim.add_ticker(pid, 0.05, lambda: write(pid))

    for pid in range(4):
        attach(pid, recovering=False)
        add_writer(pid)

    def crash() -> None:
        sim.fault_plan.crashed[3] = sim.now

    def restart() -> None:
        sim.restart_process(3)
        attach(3, recovering=True)
        add_writer(3)  # restart_process cancelled the old incarnation's tickers

    # Two full crash/rejoin cycles under sustained load.
    sim.loop.schedule_at(0.15, crash)
    sim.loop.schedule_at(0.45, restart)
    sim.loop.schedule_at(1.20, crash)
    sim.loop.schedule_at(1.50, restart)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="failure-free",
            n=4,
            description="no faults: AB burst plus mixed binary and "
            "multi-valued consensus instances",
            ops=_ab_burst("a", [0, 1, 2, 3], 2)
            + _bc_ops("v", {0: 1, 1: 0, 2: 1, 3: 0})
            + [["mvc", "m", pid, "cfg"] for pid in range(4)],
        ),
        Scenario(
            name="crash",
            n=4,
            description="the paper's fail-stop faultload: one process "
            "crashes shortly after the burst starts",
            ops=_ab_burst("a", [0, 1, 3], 2) + _bc_ops("v", {0: 1, 1: 1, 3: 0}),
            crashed={2: 0.010},
        ),
        _byz_scenario("paper"),
        _byz_scenario("noise"),
        _byz_scenario("crash-consensus"),
        _byz_scenario(
            "ooc-flood",
            config_kwargs={"ooc_capacity": 256, "ooc_peer_quota": 64},
            max_time=300.0,
        ),
        _byz_scenario("duplicate-storm"),
        _byz_scenario("bad-mac"),
        Scenario(
            name="byz-bc-split",
            n=6,
            description="n=6 under the always-zero attack with a 3/2 "
            "split among correct proposals -- the smallest group where "
            "the (n-f)/2 strict-majority bug becomes schedule-reachable",
            ops=_bc_ops("v", {0: 1, 1: 1, 2: 1, 3: 0, 4: 0, 5: 0}),
            byzantine={5: "paper"},
        ),
        Scenario(
            name="byz-bc-split-shared",
            n=6,
            description="byz-bc-split over the Rabin-style shared coin: "
            "the same split and attack, but every correct process sees "
            "the same toss, so rounds-to-decide is bounded",
            ops=_bc_ops("v", {0: 1, 1: 1, 2: 1, 3: 0, 4: 0, 5: 0}),
            byzantine={5: "paper"},
            config_kwargs={"bc_coin": "shared"},
        ),
        Scenario(
            name="byz-bc-split-crain",
            n=6,
            description="byz-bc-split under the Crain 2020 engine "
            "(EST/AUX/CONF rounds over the shared coin): the bc "
            "invariants must hold engine-independently",
            ops=_bc_ops("v", {0: 1, 1: 1, 2: 1, 3: 0, 4: 0, 5: 0}),
            byzantine={5: "paper"},
            config_kwargs={"bc_engine": "crain", "bc_coin": "shared"},
        ),
        Scenario(
            name="wan-asym",
            n=4,
            description="two-site geo-replication: 15 ms asymmetric "
            "cross-zone latency (the Section 4.2 WAN caution, measured)",
            ops=_ENV_OPS,
            link=_wan_asym_link,
        ),
        Scenario(
            name="wan-lossy",
            n=4,
            description="every link loses 8% of frames (modeled as TCP "
            "retransmit delay with doubling RTO)",
            ops=_ENV_OPS,
            link=_wan_lossy_link,
        ),
        Scenario(
            name="wan-dup",
            n=4,
            description="every link duplicates 15% of frames with a "
            "2 ms echo -- the idempotence sweep",
            ops=_ENV_OPS,
            link=_wan_dup_link,
        ),
        Scenario(
            name="wan-reorder",
            n=4,
            description="half of all frames take a jittered detour, "
            "letting later frames overtake them",
            ops=_ENV_OPS,
            link=_wan_reorder_link,
        ),
        Scenario(
            name="gray-slow-replica",
            n=4,
            description="gray failure: replica 3 is correct but 100x "
            "slow -- alive enough to dodge crash handling, slow enough "
            "to lag every quorum",
            ops=_ENV_OPS,
            link=_gray_slow_link,
            max_time=300.0,
        ),
        Scenario(
            name="gray-flaky-mac",
            n=4,
            description="gray failure: process 2's NIC corrupts 10% of "
            "outbound frames (detectably); TCP retransmits clean copies",
            ops=_ENV_OPS,
            link=_gray_flaky_mac_link,
        ),
        Scenario(
            name="gray-degrading",
            n=4,
            description="every link's latency quietly ramps from LAN to "
            "10 ms over half a second -- gray failure in slow-burn form",
            ops=_ENV_OPS,
            link=_gray_degrading_link,
        ),
        Scenario(
            name="heal-mid-agreement",
            n=4,
            description="an AB burst is submitted, then the group splits "
            "2/2 (no quorum anywhere) and heals mid-agreement; every "
            "delivery must land identically after the heal",
            ops=_ab_burst("a", [0, 1, 2, 3], 3),
            partitions=((0.003, 0.4, ((0, 1), (2, 3))),),
        ),
        Scenario(
            name="churn-rejoin",
            n=4,
            description="replica 3 crashes and rejoins through the "
            "recovery path twice while the group keeps ordering KV "
            "writes (checkpoint transfer under sustained load)",
            ops=[],
            config_kwargs={"checkpoint_interval": 8},
            driver=_churn_driver,
            max_time=4.0,
        ),
    ]
}
