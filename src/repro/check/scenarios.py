"""Named workloads for the schedule explorer.

A :class:`Scenario` bundles a group size, a fault plan and a list of
**ops** -- the JSON-serializable workload the explorer can shrink.  One
op is one application action::

    ["bc",  instance, pid, bit]        # pid proposes bit on ("bc", instance)
    ["mvc", instance, pid, "value"]    # pid proposes value (utf-8 bytes)
    ["vc",  instance, pid, "value"]    # pid proposes its vector slot
    ["ab",  instance, pid, "payload"]  # pid atomically broadcasts payload

Instances are created lazily on *every* stack at first mention (the
fault plan's factory transforms make the Byzantine process's instances
adversarial, exactly like the evaluation tests), then ops execute in
list order at virtual time zero.  Removing any op still yields a legal
run -- the shrinker relies on that.

The registry covers the paper's faultloads (failure-free, fail-stop,
the Section 4.2 Byzantine process) plus every other registered
strategy, and ``byz-bc-split``: an n=6 group under the always-zero
attack with a 3/2 split among the five correct proposals.  n=6 is the
smallest group where weakening binary consensus's step-2 strict
majority bar from ``n/2`` to ``(n-f)/2`` opens a real agreement hole
(two disjoint 3-subsets of the 5 correct step-2 values can then both
look like "majorities"), making it the regression scenario for that
deliberately reintroducible bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.config import GroupConfig
from repro.net.faults import FaultPlan
from repro.net.network import LanSimulation

Op = list  # ["kind", instance, pid, value]


@dataclass(frozen=True)
class Scenario:
    """One named exploration workload."""

    name: str
    n: int
    description: str
    ops: list[Op]
    byzantine: dict[int, str] = field(default_factory=dict)
    crashed: dict[int, float] = field(default_factory=dict)
    config_kwargs: dict[str, Any] = field(default_factory=dict)
    max_time: float = 120.0

    def fault_plan(self) -> FaultPlan:
        plan = FaultPlan(crashed=dict(self.crashed))
        for pid, strategy in self.byzantine.items():
            plan.byzantine[pid] = FaultPlan.with_byzantine(pid, strategy).byzantine[pid]
        return plan

    def config(self) -> GroupConfig:
        return GroupConfig(self.n, **self.config_kwargs)

    def build(
        self, seed: int, tie_break_seed: int | None, jitter_s: float
    ) -> LanSimulation:
        return LanSimulation(
            config=self.config(),
            seed=seed,
            fault_plan=self.fault_plan(),
            jitter_s=jitter_s,
            tie_break_seed=tie_break_seed,
        )

    def apply_ops(self, sim: LanSimulation, ops: list[Op]) -> None:
        """Create the instances ops mention, then execute the ops."""
        for kind, instance, _pid, _value in ops:
            path = (kind, instance)
            for stack in sim.stacks:
                if stack.instance_at(path) is None:
                    stack.create(kind, path)
        for kind, instance, pid, value in ops:
            target = sim.stacks[pid].instance_at((kind, instance))
            if kind == "bc":
                target.propose(value)
            elif kind in ("mvc", "vc"):
                target.propose(value.encode() if isinstance(value, str) else value)
            elif kind == "ab":
                target.broadcast(value.encode() if isinstance(value, str) else value)
            else:
                raise ValueError(f"unknown op kind {kind!r}")


def _bc_ops(instance: str, proposals: dict[int, int]) -> list[Op]:
    return [["bc", instance, pid, bit] for pid, bit in sorted(proposals.items())]


def _ab_burst(instance: str, pids: list[int], count: int) -> list[Op]:
    return [
        ["ab", instance, pid, f"{pid}:{index}"] for pid in pids for index in range(count)
    ]


def _byz_scenario(strategy: str, n: int = 4, **kwargs: Any) -> Scenario:
    attacker = n - 1
    correct = list(range(n - 1))
    ops = _ab_burst("a", correct, 2) + _bc_ops(
        "v", {pid: pid % 2 for pid in range(n)}
    )
    return Scenario(
        name=f"byz-{strategy}",
        n=n,
        description=f"one process runs the {strategy!r} strategy under an "
        "AB burst and a mixed-proposal binary consensus",
        ops=ops,
        byzantine={attacker: strategy},
        **kwargs,
    )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="failure-free",
            n=4,
            description="no faults: AB burst plus mixed binary and "
            "multi-valued consensus instances",
            ops=_ab_burst("a", [0, 1, 2, 3], 2)
            + _bc_ops("v", {0: 1, 1: 0, 2: 1, 3: 0})
            + [["mvc", "m", pid, "cfg"] for pid in range(4)],
        ),
        Scenario(
            name="crash",
            n=4,
            description="the paper's fail-stop faultload: one process "
            "crashes shortly after the burst starts",
            ops=_ab_burst("a", [0, 1, 3], 2) + _bc_ops("v", {0: 1, 1: 1, 3: 0}),
            crashed={2: 0.010},
        ),
        _byz_scenario("paper"),
        _byz_scenario("noise"),
        _byz_scenario("crash-consensus"),
        _byz_scenario(
            "ooc-flood",
            config_kwargs={"ooc_capacity": 256, "ooc_peer_quota": 64},
            max_time=300.0,
        ),
        _byz_scenario("duplicate-storm"),
        _byz_scenario("bad-mac"),
        Scenario(
            name="byz-bc-split",
            n=6,
            description="n=6 under the always-zero attack with a 3/2 "
            "split among correct proposals -- the smallest group where "
            "the (n-f)/2 strict-majority bug becomes schedule-reachable",
            ops=_bc_ops("v", {0: 1, 1: 1, 2: 1, 3: 0, 4: 0, 5: 0}),
            byzantine={5: "paper"},
        ),
    ]
}
