"""The Rampart-style sequencer baseline: cheap when the leader is honest,
dead when the leader crashes -- the paper's Section 5 contrast."""

from repro.baselines import with_sequencer
from repro.core.stack import ProtocolFactory

from util import InstantNet, ShuffleNet


def seq_net(n=4, seed=0, crashed=None):
    factory = with_sequencer(ProtocolFactory.default())
    factories = {pid: factory for pid in range(n)}
    return ShuffleNet(n, seed=seed, factories=factories, crashed=crashed or set())


def setup(net, leader=0):
    orders = {}
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        ab = stack.create("seq-ab", ("s",), leader=leader)
        orders[pid] = []
        ab.on_deliver = (
            lambda _i, d, pid=pid: orders[pid].append((d.sender, d.rbid))
        )
    return orders


class TestHappyPath:
    def test_total_order(self):
        for seed in range(8):
            net = seq_net(seed=seed)
            orders = setup(net)
            for pid in range(4):
                net.stacks[pid].instance_at(("s",)).broadcast(b"m%d" % pid)
            net.run()
            reference = orders[0]
            assert len(reference) == 4, f"seed {seed}"
            assert all(o == reference for o in orders.values()), f"seed {seed}"

    def test_sequence_dense_from_zero(self):
        net = seq_net()
        sequences = []
        ab = net.stacks[1].create("seq-ab", ("s",), leader=0)
        ab.on_deliver = lambda _i, d: sequences.append(d.sequence)
        for pid in (0, 2, 3):
            net.stacks[pid].create("seq-ab", ("s",), leader=0)
        for pid in range(4):
            net.stacks[pid].instance_at(("s",)).broadcast(b"x")
        net.run()
        assert sequences == [0, 1, 2, 3]

    def test_cheaper_than_ritas_ab(self):
        net_seq = seq_net()
        setup(net_seq)
        for pid in range(4):
            net_seq.stacks[pid].instance_at(("s",)).broadcast(b"m")
        seq_frames = net_seq.run()

        net_ab = InstantNet(4)
        for pid, stack in enumerate(net_ab.stacks):
            stack.create("ab", ("a",))
        for pid in range(4):
            net_ab.stacks[pid].instance_at(("a",)).broadcast(b"m")
        ab_frames = net_ab.run()
        assert seq_frames < ab_frames


class TestLeaderFailure:
    def test_crashed_leader_halts_delivery(self):
        net = seq_net(crashed={0})
        orders = setup(net, leader=0)
        for pid in (1, 2, 3):
            net.stacks[pid].instance_at(("s",)).broadcast(b"m%d" % pid)
        net.run()
        assert all(order == [] for order in orders.values())

    def test_ritas_ab_survives_the_same_crash(self):
        """The punchline: same fault, RITAS keeps delivering."""
        net = InstantNet(4, crashed={0})
        orders = {}
        for pid in (1, 2, 3):
            ab = net.stacks[pid].create("ab", ("a",))
            orders[pid] = []
            ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
        for pid in (1, 2, 3):
            net.stacks[pid].instance_at(("a",)).broadcast(b"m%d" % pid)
        net.run()
        assert all(len(order) == 3 for order in orders.values())

    def test_malformed_order_records_ignored(self):
        from repro.core.echo_broadcast import MSG_INIT

        net = seq_net(crashed=set())
        orders = setup(net, leader=0)
        # A corrupt process forges an ordering record as if from p2 (not
        # the leader); the EB instance is bound to the leader as sender,
        # so the forgery is rejected at the broadcast layer.
        net.stacks[2].send_frame(1, ("s", "ord", 0), MSG_INIT, [2, 0])
        for pid in range(4):
            net.stacks[pid].instance_at(("s",)).broadcast(b"m%d" % pid)
        net.run()
        reference = orders[0]
        assert len(reference) == 4
        assert all(o == reference for o in orders.values())
