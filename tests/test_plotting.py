"""ASCII chart rendering for the benchmark figures."""

import pytest

from repro.eval.atomic_burst import BurstResult
from repro.eval.plotting import (
    Series,
    agreement_cost_chart,
    burst_latency_chart,
    burst_throughput_chart,
    render_chart,
)


def burst(k, m, latency, cost=0.1):
    return BurstResult(
        faultload="failure-free",
        burst_size=k,
        message_bytes=m,
        latency_s=latency,
        throughput_msgs_s=k / latency,
        agreement_cost=cost,
        total_broadcasts=100,
        agreement_broadcasts=int(100 * cost),
        agreements=2,
        max_bc_rounds=1,
        mvc_default_decisions=0,
        delivered=k,
    )


class TestRenderChart:
    def test_basic_render(self):
        chart = render_chart(
            [Series("a", [1, 2, 3], [1, 4, 9])],
            title="squares",
            x_label="x",
            y_label="y",
        )
        assert "squares" in chart
        assert "o a" in chart
        assert chart.count("\n") > 10

    def test_multiple_series_distinct_markers(self):
        chart = render_chart(
            [Series("one", [1, 2], [1, 2]), Series("two", [1, 2], [2, 1])],
            title="t",
            x_label="x",
            y_label="y",
        )
        assert "o one" in chart
        assert "x two" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            render_chart(
                [Series("a", [0, 1], [1, 2])],
                title="t",
                x_label="x",
                y_label="y",
                log_x=True,
            )

    def test_empty_series_list_rejected(self):
        with pytest.raises(ValueError):
            render_chart([], title="t", x_label="x", y_label="y")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [1, 2], [1])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [], [])

    def test_single_point(self):
        chart = render_chart(
            [Series("a", [5], [7])], title="t", x_label="x", y_label="y"
        )
        assert "o" in chart

    def test_axis_labels_present(self):
        chart = render_chart(
            [Series("a", [1, 10], [2, 20])],
            title="t",
            x_label="burst",
            y_label="ms",
        )
        assert "burst" in chart
        assert "ms" in chart
        assert "20" in chart  # y max label


class TestFigureCharts:
    def results(self):
        return [
            burst(k, m, latency=0.001 * k * (1 + m / 1000))
            for m in (10, 1000)
            for k in (4, 64, 1000)
        ]

    def test_latency_chart(self):
        chart = burst_latency_chart(self.results(), "figure")
        assert "10 B" in chart
        assert "1000 B" in chart
        assert "ms" in chart

    def test_throughput_chart(self):
        chart = burst_throughput_chart(self.results(), "figure")
        assert "msg/s" in chart

    def test_agreement_cost_chart(self):
        results = [burst(k, 10, 0.01 * k, cost=1.0 / k) for k in (4, 64, 1000)]
        chart = agreement_cost_chart(results)
        assert "Figure 7" in chart
