"""Frame coalescing: flush windows, batch receive, byte-identity off."""

import pytest

from repro.core.config import GroupConfig
from repro.core.errors import ConfigurationError
from repro.core.stack import CHANNEL_HEADER_BYTES, ControlBlock, Stack
from repro.core.wire import (
    MAX_BATCH_DEPTH,
    decode_batch,
    encode_batch,
    encode_frame,
    is_batch,
)
from repro.net.network import LanSimulation


def make_stack(config=None, pid=0):
    sent = []
    stack = Stack(
        config or GroupConfig(4),
        pid,
        outbox=lambda dest, data: sent.append((dest, data)),
    )
    return stack, sent


class TestConfigKnobs:
    def test_defaults(self):
        config = GroupConfig(4)
        assert config.batching is True
        assert config.batch_max_frames == 64
        assert config.batch_window_s == 0.0

    def test_batch_max_frames_validated(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(4, batch_max_frames=0)

    def test_batch_window_validated(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(4, batch_window_s=-0.1)


class TestFlushWindow:
    def test_no_window_means_bare_frames(self):
        stack, sent = make_stack()
        stack.broadcast_frame(("t",), 0, b"x")
        assert len(sent) == 4
        assert not any(is_batch(data) for _, data in sent)

    def test_window_coalesces_per_destination(self):
        stack, sent = make_stack()
        with stack.coalesce():
            stack.broadcast_frame(("t",), 0, b"one")
            stack.broadcast_frame(("t",), 1, b"two")
            assert sent == []  # parked until the window closes
        assert len(sent) == 4
        for dest, data in sent:
            frames = decode_batch(data)
            assert len(frames) == 2
            assert b"one" in frames[0] and b"two" in frames[1]
        assert stack.stats.batches_sent == 4
        assert stack.stats.frames_coalesced == 8
        assert stack.stats.header_bytes_saved == 4 * CHANNEL_HEADER_BYTES

    def test_lone_frame_travels_bare(self):
        """One frame in the window: no container, byte-identical."""
        stack, sent = make_stack()
        with stack.coalesce():
            stack.send_frame(1, ("t",), 0, b"solo")
        assert sent == [(1, encode_frame(("t",), 0, b"solo"))]
        assert stack.stats.batches_sent == 0

    def test_windows_nest_and_flush_once(self):
        stack, sent = make_stack()
        with stack.coalesce():
            stack.send_frame(1, ("t",), 0, b"a")
            with stack.coalesce():
                stack.send_frame(1, ("t",), 0, b"b")
            assert sent == []  # inner exit does not flush
        assert len(sent) == 1
        assert len(decode_batch(sent[0][1])) == 2

    def test_cap_splits_long_windows(self):
        stack, sent = make_stack(GroupConfig(4, batch_max_frames=2))
        with stack.coalesce():
            for k in range(5):
                stack.send_frame(1, ("t",), 0, b"m%d" % k)
        sizes = [
            len(decode_batch(data)) if is_batch(data) else 1 for _, data in sent
        ]
        assert sizes == [2, 2, 1]

    def test_batching_off_window_is_noop(self):
        stack, sent = make_stack(GroupConfig(4, batching=False))
        with stack.coalesce():
            stack.send_frame(1, ("t",), 0, b"a")
            stack.send_frame(1, ("t",), 0, b"b")
            assert len(sent) == 2  # emitted immediately, not parked
        assert not any(is_batch(data) for _, data in sent)
        assert stack.stats.batches_sent == 0


class TestReceiveBatches:
    def test_batch_members_all_routed(self):
        stack, _ = make_stack()
        frames = [encode_frame(("nowhere", k), 0, b"x") for k in range(3)]
        stack.receive(1, encode_batch(frames))
        assert stack.stats.frames_received == 3
        assert stack.stats.batches_received == 1
        assert stack.stats.frames_decoalesced == 3
        assert stack.stats.ooc_stored == 3  # no instance: parked, not lost

    def test_malformed_batch_dropped_whole(self):
        stack, _ = make_stack()
        data = encode_batch([encode_frame(("t",), 0, b"x")] * 2)
        stack.receive(1, data[:-1])  # truncated container
        assert stack.stats.dropped.get("malformed-batch") == 1
        assert stack.stats.frames_received == 0

    def test_malformed_member_drops_only_itself(self):
        stack, _ = make_stack()
        good = encode_frame(("nowhere",), 0, b"x")
        bad = b"\x01\xff\xff"  # right version byte, garbage body
        stack.receive(1, encode_batch([good, bad, good]))
        assert stack.stats.dropped.get("malformed-frame") == 1
        assert stack.stats.frames_received == 3  # counted, then one dropped
        assert stack.stats.ooc_stored == 2

    def test_nesting_depth_capped(self):
        stack, _ = make_stack()
        unit = encode_frame(("nowhere",), 0, b"x")
        for _ in range(MAX_BATCH_DEPTH + 1):
            unit = encode_batch([unit])
        stack.receive(1, unit)
        assert stack.stats.dropped.get("batch-too-deep") == 1
        assert stack.stats.ooc_stored == 0

    def test_nested_within_cap_unwrapped(self):
        stack, _ = make_stack()
        unit = encode_frame(("nowhere",), 0, b"x")
        for _ in range(MAX_BATCH_DEPTH - 1):
            unit = encode_batch([unit])
        stack.receive(1, unit)
        assert stack.stats.ooc_stored == 1

    def test_replies_to_one_arrival_coalesce(self):
        """The cascade: a batch of two INITs provokes two ECHO broadcasts
        within one receive window, so each peer gets them as one batch."""
        # Capture the two INIT frames a sender broadcasts toward pid 0.
        sender, sender_out = make_stack(pid=1)
        for tag in ("a", "b"):
            rb = sender.create("rb", (tag,), sender=1)
            rb.broadcast(b"payload-" + tag.encode())
        init_frames = [data for dest, data in sender_out if dest == 0]
        assert len(init_frames) == 2

        receiver, sent = make_stack(pid=0)

        for tag in ("a", "b"):
            receiver.create("rb", (tag,), sender=1)
        receiver.receive(1, encode_batch(init_frames))
        echo_units = [data for dest, data in sent if dest == 2]
        assert len(echo_units) == 1
        assert len(decode_batch(echo_units[0])) == 2
        assert receiver.stats.batches_sent == 4  # one per peer incl. self


def run_burst_traffic(seed_style, monkeypatch, *, batching=False):
    """Drive a small atomic-broadcast burst and record every channel unit
    each stack hands its runtime, as (src, dest, bytes) in order.

    With *seed_style* the pre-batching broadcast path is restored:
    ``send_all`` becomes the per-destination encode-and-send loop the
    seed shipped with, bypassing ``broadcast_frame`` entirely.
    """
    if seed_style:

        def legacy_send_all(self, mtype, payload):
            for dest in self.config.process_ids:
                self.stack.send_frame(dest, self.path, mtype, payload)

        monkeypatch.setattr(ControlBlock, "send_all", legacy_send_all)

    sim = LanSimulation(GroupConfig(4, batching=batching), seed=11)
    traffic = []
    for pid, stack in enumerate(sim.stacks):
        original = stack._outbox

        def recording(dest, data, pid=pid, original=original):
            traffic.append((pid, dest, data))
            original(dest, data)

        stack._outbox = recording

    delivered = []
    for pid, stack in enumerate(sim.stacks):
        ab = stack.create("ab", ("t",))
        if pid == 0:
            ab.on_deliver = lambda _i, d: delivered.append(d.payload)
    for pid in (0, 2):
        sim.stacks[pid].instance_at(("t",)).broadcast(b"msg-%d" % pid)
    sim.run(until=lambda: len(delivered) == 2, max_time=60)
    assert sorted(delivered) == [b"msg-0", b"msg-2"]
    return traffic


class TestByteIdentity:
    def test_batching_off_matches_seed_traffic(self, monkeypatch):
        """With batching off, every channel unit -- content, destination
        and order -- is byte-identical to the seed's per-destination
        encode loop."""
        seed = run_burst_traffic(True, monkeypatch)
        current = run_burst_traffic(False, monkeypatch)
        assert current == seed

    def test_batching_on_coalesces_and_still_delivers(self, monkeypatch):
        """Batching on: batch containers actually appear on the wire and
        the burst still delivers (run_burst_traffic asserts delivery).
        Frame *content* may legitimately differ from the unbatched run --
        coalescing shifts arrival timing, so agreement rounds see
        different vectors -- but the delivered messages must not."""
        traffic = run_burst_traffic(False, monkeypatch, batching=True)
        assert any(is_batch(data) for _, _, data in traffic)
