"""The schedule explorer: catches a reintroduced consensus bug, shrinks
it to a reproducer, and replays it deterministically.

The reintroduced bug is the one the issue names: weakening binary
consensus's step-2 strict-majority bar from ``n/2`` to ``(n-f)/2``.
``byz-bc-split`` (n=6, always-zero attacker, 3/2 proposal split) is the
smallest scenario where that opens a real safety hole; the explorer
finds a schedule where two correct processes enter step 3 of the same
round with different values -- the lemma the bar exists to protect.
"""

import json

import pytest

from repro.check.__main__ import main as check_main
from repro.check.explore import (
    REPRODUCER_FORMAT,
    dump_reproducer,
    explore,
    load_reproducer,
    replay,
    run_one,
)
from repro.check.scenarios import SCENARIOS
from repro.core.binary_consensus import BinaryConsensus


@pytest.fixture
def weakened_bar(monkeypatch):
    """Reintroduce the unsafe (n-f)/2 strict-majority bar."""
    monkeypatch.setattr(
        BinaryConsensus,
        "_strict_majority_bar",
        lambda self: (self.config.n - self.config.f) // 2 + 1,
    )


# (seed, tie_break_seed, jitter) known to drive byz-bc-split into the
# step-3 split under the weakened bar; explore() visits it at index 1
# when started from base_seed 39.  (Re-pinned when jitter moved to
# per-link RNG streams -- the schedule space shifted.)
BAD_SEED = 40
BAD_JITTER = 1e-4
EXPLORE_BASE = 39


class TestReintroducedBug:
    def test_run_one_hits_violation(self, weakened_bar):
        result = run_one(
            "byz-bc-split", seed=BAD_SEED, tie_break_seed=BAD_SEED, jitter_s=BAD_JITTER
        )
        assert result["outcome"] == "violation"
        assert result["invariant"] == "bc-step3-uniqueness"
        assert result["path"] == ["bc", "v"]
        assert result["event_index"] > 0

    def test_explorer_catches_and_shrinks(self, weakened_bar):
        reproducer = explore("byz-bc-split", 4, base_seed=EXPLORE_BASE)
        assert reproducer is not None
        assert reproducer["format"] == REPRODUCER_FORMAT
        assert reproducer["violation"]["invariant"] == "bc-step3-uniqueness"
        # Shrinking only removes ops, never invents them.
        original = SCENARIOS["byz-bc-split"].ops
        assert all(op in original for op in reproducer["ops"])
        assert len(reproducer["ops"]) <= len(original)
        # Truncated to the violating event.
        assert reproducer["max_events"] == reproducer["violation"]["event_index"]

    def test_replay_is_deterministic(self, weakened_bar):
        reproducer = explore("byz-bc-split", 4, base_seed=EXPLORE_BASE)
        first = replay(reproducer)
        second = replay(reproducer)
        assert first == second
        assert first["outcome"] == "violation"
        assert first["invariant"] == "bc-step3-uniqueness"

    def test_reproducer_runs_clean_once_fixed(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            BinaryConsensus,
            "_strict_majority_bar",
            lambda self: (self.config.n - self.config.f) // 2 + 1,
        )
        reproducer = explore("byz-bc-split", 4, base_seed=EXPLORE_BASE)
        path = tmp_path / "repro.json"
        dump_reproducer(reproducer, str(path))
        loaded = load_reproducer(str(path))
        assert loaded == json.loads(path.read_text())
        assert replay(loaded)["outcome"] == "violation"
        monkeypatch.undo()  # restore the honest n/2 bar
        assert replay(loaded)["outcome"] == "ok"

    def test_honest_bar_stays_clean(self):
        assert explore("byz-bc-split", 6, base_seed=EXPLORE_BASE) is None


class TestDeterminism:
    def test_run_one_is_pure(self):
        kwargs = dict(seed=9, tie_break_seed=9, jitter_s=1e-4)
        assert run_one("failure-free", **kwargs) == run_one("failure-free", **kwargs)

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unsupported reproducer format"):
            replay({"format": "bogus/v0"})

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_one("no-such-scenario", seed=0, tie_break_seed=0)


class TestCli:
    def test_scenarios_lists_registry(self, capsys):
        assert check_main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_explore_clean_exits_zero(self, capsys):
        assert check_main(["explore", "--scenario", "failure-free", "--budget", "2"]) == 0
        assert "no invariant violations" in capsys.readouterr().out

    def test_explore_unknown_scenario_exits_two(self, capsys):
        assert check_main(["explore", "--scenario", "nope", "--budget", "1"]) == 2

    def test_explore_violation_writes_reproducer(
        self, weakened_bar, tmp_path, capsys
    ):
        out = tmp_path / "bug.json"
        code = check_main(
            [
                "explore",
                "--scenario",
                "byz-bc-split",
                "--budget",
                "4",
                "--seed-base",
                str(EXPLORE_BASE),
                "--out",
                str(out),
            ]
        )
        assert code == 1
        assert "INVARIANT VIOLATION" in capsys.readouterr().err
        reproducer = load_reproducer(str(out))
        assert reproducer["violation"]["invariant"] == "bc-step3-uniqueness"
        # The written artifact replays to an exit-1 violation via the CLI.
        assert check_main(["replay", str(out)]) == 1
