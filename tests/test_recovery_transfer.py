"""State transfer on the simulated runtime: kill, restart, rejoin.

A replica of a 4-process group is crashed mid-run, the group keeps
ordering commands without it, and a brand-new incarnation (empty stack,
empty state machine) bootstraps from its peers: certified checkpoint,
log suffix, fast-forwarded agreement rounds.  The invariant is the
paper's: after rejoining, the replica's state digest equals every other
correct replica's, and new commands it submits are ordered group-wide.
"""

from repro.apps.kv_store import ReplicatedKvStore
from repro.core.config import GroupConfig
from repro.net.network import LanSimulation
from repro.recovery import PHASE_LIVE, RecoveryManager


def _build_group(sim):
    stores, managers = [], []
    for stack in sim.stacks:
        store = ReplicatedKvStore(stack.create("ab", ("kv",)))
        managers.append(RecoveryManager(stack, store.rsm))
        stores.append(store)
    return stores, managers


def _drive(sim, stores, managers, live, bursts, per_burst, tag):
    """Submit workload from the *live* replicas and run to delivery."""
    for burst in range(bursts):
        for i, pid in enumerate(live):
            for j in range(per_burst):
                stores[pid].put(f"{tag}/{burst}/{i}/{j}", bytes([burst, i, j]))
        target = max(m.position for m in managers) + len(live) * per_burst
        sim.run(
            until=lambda: all(managers[pid].position >= target for pid in live),
            max_time=sim.now + 120,
        )


def _restart_with_recovery(sim, pid):
    stack = sim.restart_process(pid)
    store = ReplicatedKvStore(stack.create("ab", ("kv",)))
    manager = RecoveryManager(stack, store.rsm, recovering=True)
    ticker = sim.loop.schedule_every(0.01, manager.poke)
    return store, manager, ticker


def test_restarted_replica_rejoins_and_converges():
    config = GroupConfig(4, checkpoint_interval=8)
    sim = LanSimulation(config=config, seed=42)
    stores, managers = _build_group(sim)

    _drive(sim, stores, managers, live=[0, 1, 2, 3], bursts=3, per_burst=2, tag="a")
    assert all(m.position == 24 for m in managers)
    assert all(m.stable_seq >= 16 for m in managers)

    # Kill replica 3; the group keeps going without it (n - f = 3).
    sim.fault_plan.crashed[3] = sim.now
    _drive(sim, stores, managers, live=[0, 1, 2], bursts=4, per_burst=2, tag="b")
    assert all(managers[pid].position == 48 for pid in (0, 1, 2))
    assert managers[3].position == 24  # frozen at crash

    # Restart it from nothing and let it recover.
    store3, manager3, ticker = _restart_with_recovery(sim, 3)
    stores[3], managers[3] = store3, manager3
    sim.run(
        until=lambda: manager3.phase == PHASE_LIVE,
        max_time=sim.now + 300,
    )
    assert manager3.phase == PHASE_LIVE

    # The recovered replica transferred a snapshot, not the full history.
    assert manager3.stats.snapshots_installed >= 1
    assert manager3.stats.state_bytes_received > 0
    assert manager3.stats.rejoin_time_s is not None
    assert manager3.stats.rejoin_time_s > 0
    assert manager3.stable_seq >= 40

    # Let the group settle (noop nudges may still be in flight), then
    # check full state convergence.
    sim.run(
        until=lambda: len({s.state_digest() for s in stores}) == 1
        and len({m.position for m in managers}) == 1,
        max_time=sim.now + 120,
    )
    assert len({s.state_digest() for s in stores}) == 1
    assert len({m.position for m in managers}) == 1

    # The recovered replica is a full citizen again: its own submissions
    # get ordered and applied everywhere.
    stores[3].put("after-rejoin", b"!")
    sim.run(
        until=lambda: all(s.get("after-rejoin") == b"!" for s in stores),
        max_time=sim.now + 120,
    )
    assert all(s.get("after-rejoin") == b"!" for s in stores)
    ticker.cancel()


def test_gc_floor_advances_on_simulated_runtime():
    config = GroupConfig(4, checkpoint_interval=4)
    sim = LanSimulation(config=config, seed=9)
    stores, managers = _build_group(sim)
    _drive(sim, stores, managers, live=[0, 1, 2, 3], bursts=6, per_burst=1, tag="gc")
    for manager in managers:
        assert manager._ab.external_gc
        assert manager._ab.gc_floor > 0
        assert manager.stats.gc_advances >= 1


def test_recovering_replica_converges_while_group_stays_busy():
    """Recovery with concurrent writes: the group does not pause for the
    joiner, and the joiner still lands on the same digest."""
    config = GroupConfig(4, checkpoint_interval=8)
    sim = LanSimulation(config=config, seed=7)
    stores, managers = _build_group(sim)
    _drive(sim, stores, managers, live=[0, 1, 2, 3], bursts=2, per_burst=2, tag="pre")

    sim.fault_plan.crashed[3] = sim.now
    _drive(sim, stores, managers, live=[0, 1, 2], bursts=2, per_burst=2, tag="down")

    store3, manager3, ticker = _restart_with_recovery(sim, 3)
    stores[3], managers[3] = store3, manager3
    # Keep writing while it recovers.
    for i in range(6):
        stores[i % 3].put(f"busy/{i}", bytes([i]))
    sim.run(
        until=lambda: manager3.phase == PHASE_LIVE,
        max_time=sim.now + 300,
    )
    assert manager3.phase == PHASE_LIVE
    sim.run(
        until=lambda: len({s.state_digest() for s in stores}) == 1
        and len({m.position for m in managers}) == 1,
        max_time=sim.now + 120,
    )
    assert len({s.state_digest() for s in stores}) == 1
    ticker.cancel()
