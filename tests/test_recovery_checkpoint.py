"""Checkpoint duty: digests, certificates, truncation and GC.

Covers the non-transfer half of ``repro.recovery``: deterministic state
digests (with caching), transferable attestation certificates, stable
checkpoints truncating the delivery log, and the checkpoint-driven GC
floor of the atomic broadcast.
"""

import pytest

from repro.apps.kv_store import ReplicatedKvStore, _apply_kv
from repro.apps.state_machine import Command, ReplicatedStateMachine
from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.crypto.mac import mac_vector
from repro.recovery import (
    RecoveryManager,
    attestation_bytes,
    build_certificate,
    parse_certificate,
    verify_certificate,
)
from tests.util import InstantNet, ShuffleNet


class _StubAb:
    """Just enough of AtomicBroadcast for an offline state machine."""

    def __init__(self):
        self.on_deliver = None
        self.me = 0

    def broadcast(self, payload):  # pragma: no cover - unused
        return (self.me, 0)


def _offline_rsm(commands):
    rsm = ReplicatedStateMachine(_StubAb(), _apply_kv, initial_state={})
    for command in commands:
        rsm.state, _ = _apply_kv(rsm.state, command)
    return rsm


class TestDigestCache:
    def test_digest_stable_across_dict_orderings(self):
        forward = [Command("put", ["a", b"1"]), Command("put", ["b", b"2"])]
        backward = [Command("put", ["b", b"2"]), Command("put", ["a", b"1"])]
        one, two = _offline_rsm(forward), _offline_rsm(backward)
        assert one.state == two.state
        assert one.state_digest() == two.state_digest()
        assert one.snapshot_bytes() == two.snapshot_bytes()

    def test_cache_hit_and_invalidation_on_step(self):
        rsm = _offline_rsm([Command("put", ["k", b"v"])])
        first = rsm.state_digest()
        assert rsm.state_digest() is first  # served from cache
        from repro.core.atomic_broadcast import AbDelivery

        rsm._step(
            AbDelivery(sender=1, rbid=0, payload=b"", sequence=0),
            Command("put", ["k", b"changed"]),
        )
        assert rsm.state_digest() != first

    def test_digest_matches_snapshot_hash(self):
        from repro.crypto.hashing import hash_bytes

        rsm = _offline_rsm([Command("put", ["k", b"v"])])
        assert rsm.state_digest() == hash_bytes(rsm.snapshot_bytes())


class TestCertificates:
    def setup_method(self):
        self.n = 4
        self.dealer = TrustedDealer(self.n, seed=b"cert-test")
        self.keystores = [self.dealer.keystore_for(pid) for pid in range(self.n)]

    def _vector(self, attester, seq, digest):
        return mac_vector(attestation_bytes(seq, digest), self.keystores[attester])

    def test_roundtrip_verifies_at_every_replica(self):
        seq, digest = 8, b"d" * 32
        wire = build_certificate(
            {pid: self._vector(pid, seq, digest) for pid in (0, 2)}
        )
        for keystore in self.keystores:
            certificate = parse_certificate(wire, self.n)
            assert certificate is not None
            assert verify_certificate(seq, digest, certificate, keystore, quorum=2)

    def test_wrong_digest_or_seq_rejected(self):
        seq, digest = 8, b"d" * 32
        certificate = {pid: self._vector(pid, seq, digest) for pid in (0, 2)}
        assert not verify_certificate(
            seq, b"x" * 32, certificate, self.keystores[1], quorum=2
        )
        assert not verify_certificate(
            16, digest, certificate, self.keystores[1], quorum=2
        )

    def test_sub_quorum_rejected(self):
        seq, digest = 8, b"d" * 32
        certificate = {0: self._vector(0, seq, digest)}
        assert not verify_certificate(
            seq, digest, certificate, self.keystores[1], quorum=2
        )

    def test_parse_rejects_duplicates_and_bad_shapes(self):
        seq, digest = 8, b"d" * 32
        vector = self._vector(0, seq, digest)
        assert parse_certificate([[0, vector], [0, vector]], self.n) is None
        assert parse_certificate([[0, vector[:-1]]], self.n) is None
        assert parse_certificate([[9, vector]], self.n) is None
        assert parse_certificate("junk", self.n) is None


def _attach_recovery(net):
    stores, managers = [], []
    for stack in net.stacks:
        store = ReplicatedKvStore(stack.create("ab", ("kv",)))
        managers.append(RecoveryManager(stack, store.rsm))
        stores.append(store)
    return stores, managers


def _assert_log_invariants(manager):
    """Truncation must only ever drop delivered, checkpoint-covered
    positions: the retained log is the contiguous range ending at the
    replica's position, and its low end never passes the stable seq."""
    positions = [pos for pos, _, _, _ in manager._log]
    assert positions == list(range(manager.position - len(positions), manager.position))
    assert manager.position - len(positions) <= manager.stable_seq
    assert manager.stable_seq <= manager.position


class TestCheckpointStability:
    def test_stable_checkpoints_truncate_and_advance_gc(self):
        config = GroupConfig(4, checkpoint_interval=8)
        net = InstantNet(config=config, seed=11)
        stores, managers = _attach_recovery(net)
        for burst in range(5):
            for i in range(8):
                stores[i % 4].put(f"k{burst}/{i}", bytes([burst, i]))
            net.run()
        assert len({s.state_digest() for s in stores}) == 1
        for store, manager in zip(stores, managers):
            assert manager.position == 40
            assert manager.stats.checkpoints_taken == 5
            assert manager.stats.checkpoints_stable >= 1
            assert manager.stable_seq == 40
            assert manager.stats.log_truncations >= 1
            # The applied log is bounded by the checkpoint window.
            assert len(store.rsm.applied) == manager.position - manager.stable_seq
            _assert_log_invariants(manager)

    def test_gc_floor_advances_under_checkpointing(self):
        config = GroupConfig(4, checkpoint_interval=4)
        net = InstantNet(config=config, seed=3)
        stores, managers = _attach_recovery(net)
        for burst in range(6):
            for i in range(4):
                stores[i].put(f"b{burst}", bytes([i]))
            net.run()
        for manager in managers:
            assert manager._ab.external_gc
            assert manager._ab.gc_floor > 0
            assert manager.stats.gc_advances >= 1

    def test_attestation_from_wrong_digest_never_stabilizes(self):
        config = GroupConfig(4, checkpoint_interval=8)
        net = InstantNet(config=config, seed=5)
        stores, managers = _attach_recovery(net)
        stores[0].put("x", b"1")
        net.run()
        manager = managers[0]
        bogus = b"z" * 32
        vector = mac_vector(
            attestation_bytes(8, bogus), net.stacks[1].keystore
        )
        before = manager.stats.attestations_accepted
        manager.handle_checkpoint(1, 8, bogus, vector)
        assert manager.stats.attestations_accepted == before + 1
        assert manager.stable_seq == 0  # one vote is below the f+1 quorum


class TestTruncationProperty:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_truncation_never_drops_undelivered_positions(self, seed):
        import random

        config = GroupConfig(4, checkpoint_interval=4)
        net = ShuffleNet(config=config, seed=seed)
        stores, managers = _attach_recovery(net)
        rng = random.Random(f"workload/{seed}")
        for step in range(24):
            stores[step % 4].put(f"k{rng.randrange(6)}", bytes([step]))
            for _ in range(rng.randrange(40)):
                if not net.step():
                    break
            for manager in managers:
                _assert_log_invariants(manager)
        net.run()
        assert len({s.state_digest() for s in stores}) == 1
        positions = {m.position for m in managers}
        assert positions == {24}
        for manager in managers:
            _assert_log_invariants(manager)
            assert manager.stable_seq == 24
