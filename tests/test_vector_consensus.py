"""Vector consensus: agreed vectors, per-slot integrity, round machinery."""

import pytest

from repro.core.errors import ProtocolViolationError

from util import InstantNet, ShuffleNet, decisions_of


def run_vc(net, proposals, path=("vc",)):
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.create("vc", path)
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.instance_at(path).propose(proposals[pid])
    net.run()
    return decisions_of(net, path)


class TestProperties:
    def test_all_decide_same_vector(self):
        net = InstantNet(4)
        proposals = [b"p0", b"p1", b"p2", b"p3"]
        decisions = run_vc(net, proposals)
        assert all(d == decisions[0] for d in decisions)
        assert isinstance(decisions[0], list)
        assert len(decisions[0]) == 4

    def test_slots_hold_proposal_or_default(self):
        """V[i] is p_i's proposal or ⊥ -- never a fabrication."""
        for seed in range(15):
            net = ShuffleNet(4, seed=seed)
            proposals = [b"p0", b"p1", b"p2", b"p3"]
            decisions = run_vc(net, proposals)
            vector = decisions[0]
            for pid, slot in enumerate(vector):
                assert slot in (None, proposals[pid]), f"seed {seed}: {vector}"

    def test_at_least_f_plus_one_filled(self):
        for seed in range(15):
            net = ShuffleNet(4, seed=seed)
            decisions = run_vc(net, [b"a", b"b", b"c", b"d"])
            vector = decisions[0]
            filled = sum(1 for slot in vector if slot is not None)
            assert filled >= 2, f"seed {seed}: {vector}"  # f+1 = 2

    def test_identical_across_shuffles(self):
        for seed in range(15):
            net = ShuffleNet(4, seed=seed)
            decisions = run_vc(net, [b"w", b"x", b"y", b"z"])
            assert all(d == decisions[0] for d in decisions), f"seed {seed}"

    def test_with_crashed_process(self):
        net = InstantNet(4, crashed={2})
        decisions = run_vc(net, [b"p0", b"p1", b"p2", b"p3"])
        vector = decisions[0]
        assert all(d == vector for d in decisions)
        assert vector[2] is None  # the crashed slot can only be ⊥

    def test_crashed_shuffled(self):
        for seed in range(10):
            net = ShuffleNet(4, seed=seed, crashed={3})
            decisions = run_vc(net, [b"a", b"b", b"c", b"d"])
            assert all(d == decisions[0] for d in decisions), f"seed {seed}"

    def test_larger_group(self):
        net = InstantNet(7)
        decisions = run_vc(net, [b"p%d" % i for i in range(7)])
        assert len(decisions[0]) == 7
        assert all(d == decisions[0] for d in decisions)

    def test_decision_round_recorded(self):
        net = InstantNet(4)
        run_vc(net, [b"p"] * 4)
        assert net.stacks[0].stats.decisions["vc"] == 1
        vc = net.stacks[0].instance_at(("vc",))
        assert vc.round_number <= net.config.f


class TestApi:
    def test_none_proposal_rejected(self):
        net = InstantNet(4)
        vc = net.stacks[0].create("vc", ("v",))
        with pytest.raises(ValueError):
            vc.propose(None)

    def test_double_proposal_rejected(self):
        net = InstantNet(4)
        vc = net.stacks[0].create("vc", ("v",))
        vc.propose(b"p")
        with pytest.raises(ProtocolViolationError):
            vc.propose(b"q")

    def test_direct_frames_rejected(self):
        from repro.core.wire import encode_frame

        net = InstantNet(4)
        net.stacks[0].create("vc", ("v",))
        net.stacks[0].receive(1, encode_frame(("v",), 0, b"x"))
        assert net.stacks[0].stats.dropped["protocol-violation"] == 1

    def test_vector_ok_rejects_short_vectors(self):
        net = InstantNet(4)
        vc = net.stacks[0].create("vc", ("v",))
        assert not vc._vector_ok([b"a", b"b"])
        assert not vc._vector_ok(None)
        assert not vc._vector_ok([None, None, None, b"only-one"])
        assert vc._vector_ok([b"a", b"b", None, None])
