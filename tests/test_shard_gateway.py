"""The routing tier: key -> owning shard, wrong-shard/cross-shard errors."""

import asyncio

import pytest

from repro.core.config import GroupConfig
from repro.gateway.protocol import (
    STATUS_OK,
    STATUS_WRONG_SHARD,
    encode_request,
    decode_response,
    read_frame,
)
from repro.gateway.server import ClientGateway, attach_router
from repro.shard.node import ShardedNode
from repro.shard.ring import ShardMap
from repro.shard.router import CrossShardError, ShardRouter, WrongShardError
from repro.shard.sim import sharded_configs
from repro.transport.tcp import PeerAddress, RitasNode

NAMES = ["s0", "s1"]


def keys_owned_by(shard_map, index, count=2, prefix="key"):
    """Probe keys until *count* owned by shard *index* are found."""
    found, i = [], 0
    while len(found) < count:
        key = f"{prefix}{i}"
        if shard_map.owner(key) == index:
            found.append(key)
        i += 1
    return found


# -- router unit tests (no I/O) -----------------------------------------------


class TestRouter:
    def test_route_to_hosted_shard(self):
        shard_map = ShardMap(NAMES)
        router = ShardRouter(shard_map, {0: "svc0", 1: "svc1"})
        key = keys_owned_by(shard_map, 1, count=1)[0]
        index, services = router.route(key)
        assert index == 1 and services == "svc1"
        assert router.wrong_shard_total == 0

    def test_wrong_shard_error_carries_owner_hint(self):
        shard_map = ShardMap(NAMES)
        router = ShardRouter(shard_map, {0: "svc0"})  # shard 1 not hosted
        key = keys_owned_by(shard_map, 1, count=1)[0]
        with pytest.raises(WrongShardError) as excinfo:
            router.route(key)
        err = excinfo.value
        assert err.key == key
        assert err.owner_index == 1
        assert err.owner_name == "s1"
        assert router.wrong_shard_total == 1

    def test_cross_shard_error_lists_every_owner(self):
        shard_map = ShardMap(NAMES)
        router = ShardRouter(shard_map, {0: "svc0", 1: "svc1"})
        spanning = keys_owned_by(shard_map, 0, count=1) + keys_owned_by(
            shard_map, 1, count=1
        )
        with pytest.raises(CrossShardError) as excinfo:
            router.route_many(spanning)
        err = excinfo.value
        assert {name for _, name in err.owners} == {"s0", "s1"}
        assert (err.owner_index, err.owner_name) in err.owners
        assert router.cross_shard_total == 1
        # A CrossShardError is a WrongShardError: one handler suffices.
        assert isinstance(err, WrongShardError)

    def test_route_many_same_shard_is_fine(self):
        shard_map = ShardMap(NAMES)
        router = ShardRouter(shard_map, {0: "svc0", 1: "svc1"})
        same = keys_owned_by(shard_map, 0, count=3)
        index, services = router.route_many(same)
        assert index == 0 and services == "svc0"
        assert router.cross_shard_total == 0

    def test_single_wrapper_hosts_everything(self):
        router = ShardRouter.single("svc")
        assert router.is_single
        for i in range(50):
            index, services = router.route(f"k{i}")
            assert index == 0 and services == "svc"

    def test_out_of_range_hosted_index_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(ShardMap(NAMES), {5: "svc"})


# -- live scaffolding ---------------------------------------------------------


async def start_sharded_gateway_group(hosted=None):
    """4 ShardedNodes hosting two shard groups; services attached on
    every node (the RSMs apply group-wide), one gateway on node 0
    fronting *hosted* shards (default: both)."""
    configs = sharded_configs(GroupConfig(4), NAMES)
    shard_map = ShardMap(NAMES)
    blank = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
    nodes = [ShardedNode(configs, pid, blank, seed=37) for pid in range(4)]
    for node in nodes:
        await node.listen()
    addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
    for node in nodes:
        node.set_peer_addresses(addresses)
    for node in nodes:
        await node.connect()
    routers = [
        attach_router(node, shard_map, hosted=None if pid else hosted)
        for pid, node in enumerate(nodes)
    ]
    gateway = ClientGateway(nodes[0], routers[0])
    port = await gateway.listen()
    return nodes, routers, gateway, port


async def close_all(gateway, nodes):
    await gateway.close()
    for node in nodes:
        await node.close()


class Client:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def request(self, op, args, timeout=30.0):
        request_id = self._next_id
        self._next_id += 1
        self.writer.write(encode_request(request_id, op, args))
        await self.writer.drain()
        body = await asyncio.wait_for(read_frame(self.reader), timeout)
        got_id, status, detail = decode_response(body)
        assert got_id == request_id
        return status, detail

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- end-to-end ----------------------------------------------------------------


class TestShardedGatewayE2E:
    def test_ops_route_to_owning_shard(self):
        """One gateway fronting both shards: writes land on the owning
        shard's RSM (and only there), ordered reads see them."""

        async def scenario():
            nodes, routers, gateway, port = await start_sharded_gateway_group()
            shard_map = routers[0].map
            try:
                client = await Client.connect(port)
                try:
                    k0 = keys_owned_by(shard_map, 0, count=1)[0]
                    k1 = keys_owned_by(shard_map, 1, count=1)[0]
                    for key, value in ((k0, b"zero"), (k1, b"one")):
                        status, detail = await client.request("put", [key, value])
                        assert status == STATUS_OK
                        assert detail[2] is True
                        status, detail = await client.request("get", [key])
                        assert status == STATUS_OK
                        assert detail[2] == value
                    # The owning shard's store has the key; the other
                    # shard's store never saw it.
                    assert routers[0].services[0].kv.get(k0) == b"zero"
                    assert routers[0].services[1].kv.get(k0) is None
                    assert routers[0].services[1].kv.get(k1) == b"one"
                    assert routers[0].services[0].kv.get(k1) is None
                finally:
                    await client.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_unhosted_shard_answers_wrong_shard_with_owner_hint(self):
        """A gateway fronting only shard 0 refuses shard-1 keys with the
        structured redirect -- forbid-and-measure, not a dead end."""

        async def scenario():
            nodes, routers, gateway, port = await start_sharded_gateway_group(
                hosted=[0]
            )
            shard_map = routers[0].map
            try:
                client = await Client.connect(port)
                try:
                    k1 = keys_owned_by(shard_map, 1, count=1)[0]
                    status, detail = await client.request("put", [k1, b"x"])
                    assert status == STATUS_WRONG_SHARD
                    owner_index, owner_name, message = detail
                    assert owner_index == 1
                    assert owner_name == "s1"
                    assert k1 in message
                    # Measured: router and gateway counters both moved.
                    assert routers[0].wrong_shard_total == 1
                    assert gateway.ops_wrong_shard == 1
                    assert gateway.status()["shards"]["ops_wrong_shard"] == 1
                    # A hosted key still works on the same connection.
                    k0 = keys_owned_by(shard_map, 0, count=1)[0]
                    status, _ = await client.request("put", [k0, b"y"])
                    assert status == STATUS_OK
                finally:
                    await client.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_mput_single_shard_ok_cross_shard_forbidden(self):
        async def scenario():
            nodes, routers, gateway, port = await start_sharded_gateway_group()
            shard_map = routers[0].map
            try:
                client = await Client.connect(port)
                try:
                    same = keys_owned_by(shard_map, 0, count=2)
                    status, detail = await client.request(
                        "mput", [[[same[0], b"a"], [same[1], b"b"]]]
                    )
                    assert status == STATUS_OK
                    assert detail[2] == 2  # pairs applied atomically
                    assert routers[0].services[0].kv.get(same[0]) == b"a"
                    assert routers[0].services[0].kv.get(same[1]) == b"b"

                    spanning = keys_owned_by(shard_map, 0, count=1) + keys_owned_by(
                        shard_map, 1, count=1, prefix="other"
                    )
                    status, detail = await client.request(
                        "mput", [[[k, b"v"] for k in spanning]]
                    )
                    assert status == STATUS_WRONG_SHARD
                    owner_index, owner_name, message = detail
                    assert owner_name in NAMES
                    assert "cross-shard" in message
                    assert routers[0].cross_shard_total == 1
                    # Forbidden means NOT applied -- on either shard.
                    for services in routers[0].services.values():
                        assert services.kv.get(spanning[0]) != b"v"
                        assert services.kv.get(spanning[1]) != b"v"
                finally:
                    await client.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_status_reports_shard_block(self):
        async def scenario():
            nodes, routers, gateway, port = await start_sharded_gateway_group()
            try:
                status = gateway.status()
                shards = status["shards"]
                assert shards["names"] == list(NAMES)
                assert shards["hosted"] == list(NAMES)
                for name in NAMES:
                    assert "kv" in shards["admission"][name]
                    assert "locks" in shards["admission"][name]
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())


class TestUnshardedBackCompat:
    def test_plain_services_never_answer_wrong_shard(self):
        """The unsharded gateway (plain GatewayServices) wraps into a
        single-shard router: every key is hosted, no redirect exists."""
        from repro.gateway.server import GatewayServices

        async def scenario():
            config = GroupConfig(4)
            from repro.crypto.keys import TrustedDealer

            dealer = TrustedDealer(4, seed=b"backcompat-tests")
            blank = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
            nodes = [
                RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=5)
                for pid in range(4)
            ]
            for node in nodes:
                await node.listen()
            addresses = [
                PeerAddress("127.0.0.1", node.bound_port) for node in nodes
            ]
            for node in nodes:
                node.set_peer_addresses(addresses)
            for node in nodes:
                await node.connect()
            services = [GatewayServices.attach(node) for node in nodes]
            gateway = ClientGateway(nodes[0], services[0])
            port = await gateway.listen()
            try:
                client = await Client.connect(port)
                try:
                    for i in range(6):
                        status, _ = await client.request("put", [f"k{i}", b"v"])
                        assert status == STATUS_OK
                    assert gateway.ops_wrong_shard == 0
                    assert "shards" not in gateway.status()
                finally:
                    await client.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())
