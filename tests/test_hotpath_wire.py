"""Tests for the hot-path receive machinery: zero-copy decoders, the
validate-don't-decode lazy payload contract, the content-addressed
frame-parse memo, and the raw-payload relay path.

The load-bearing property throughout is *parity*: every fast path must
accept exactly the inputs the eager decoder accepts and reject exactly
what it rejects.  A validator laxer than the decoder would let a
Byzantine payload relay cleanly and blow up at a later hop (which would
then misbehavior-charge the innocent relay); a stricter one would drop
frames the seed accepted.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import GroupConfig
from repro.core.errors import WireFormatError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, Stack
from repro.core.wire import (
    _validate_value,
    decode_batch,
    decode_batch_views,
    decode_frame,
    decode_frame_ex,
    decode_frame_tail,
    decode_frame_tail_lazy,
    decode_value,
    encode_batch,
    encode_frame,
    encode_frame_from_prefix_raw,
    encode_frame_prefix,
    encode_value,
    fastpath_memo_clear,
    frame_fastpath,
    frame_path_key,
)

PATH = ("t", "vect", 2, "mvc", "bc")


def _random_value(rng: random.Random, depth: int = 0):
    kind = rng.randrange(8 if depth < 3 else 6)
    if kind == 0:
        return None
    if kind == 1:
        return rng.random() < 0.5
    if kind == 2:
        return rng.randrange(-(2**40), 2**40)
    if kind == 3:
        return rng.randrange(256)
    if kind == 4:
        return rng.randbytes(rng.randrange(40))
    if kind == 5:
        return "".join(chr(rng.randrange(32, 0x2FFF)) for _ in range(rng.randrange(8)))
    return [_random_value(rng, depth + 1) for _ in range(rng.randrange(5))]


# -- bytes-like input parity ---------------------------------------------------


class TestBytesLikeInputs:
    """Every decoder accepts bytes, bytearray and memoryview alike."""

    def test_value_roundtrip_from_all_buffer_types(self):
        rng = random.Random(7)
        for _ in range(50):
            value = _random_value(rng)
            encoded = encode_value(value)
            assert decode_value(encoded) == value
            assert decode_value(bytearray(encoded)) == value
            assert decode_value(memoryview(encoded)) == value
            # A view into a larger buffer (the batch-member situation).
            padded = b"\xee" + encoded + b"\xee"
            assert decode_value(memoryview(padded)[1:-1]) == value

    def test_frame_roundtrip_from_all_buffer_types(self):
        frame = encode_frame(PATH, 3, [1, [b"xy", "s"], None])
        for raw in (frame, bytearray(frame), memoryview(frame)):
            path, mtype, payload, raw_payload = decode_frame_ex(raw)
            assert (path, mtype, payload) == (PATH, 3, [1, [b"xy", "s"], None])
            assert bytes(raw_payload) == encode_value(payload)
            assert frame_path_key(raw) == encode_value(list(PATH))

    def test_batch_views_alias_the_buffer(self):
        frames = [encode_frame(PATH, i, [i]) for i in range(4)]
        batch = encode_batch(frames)
        views = decode_batch_views(batch)
        assert [bytes(v) for v in views] == frames
        for view in views:
            assert isinstance(view, memoryview)
            assert view.obj is batch  # zero-copy: same backing buffer
        assert decode_batch(bytearray(batch)) == frames


# -- validator parity ----------------------------------------------------------


class TestValidatorParity:
    """_validate_value accepts exactly what the eager decoder accepts."""

    def _decode_ok(self, data) -> bool:
        # The payload context: _decode_from at depth 1, full region.
        frame = encode_frame_from_prefix_raw(encode_frame_prefix(()), 0, data)
        try:
            decode_frame_tail(frame, 6 + len(encode_value([])))
        except WireFormatError:
            return False
        return True

    def _validate_ok(self, data) -> bool:
        try:
            end = _validate_value(data, 0)
        except WireFormatError:
            return False
        return end == len(data)

    def test_parity_on_valid_encodings(self):
        rng = random.Random(11)
        for _ in range(200):
            encoded = encode_value(_random_value(rng))
            assert _validate_value(encoded, 0) == len(encoded)

    def test_parity_on_mutations(self):
        # Truncations, bit flips, extensions: the validator and the
        # eager decoder must agree on every single corruption.
        rng = random.Random(13)
        for _ in range(150):
            encoded = encode_value(_random_value(rng))
            corruptions = [encoded[:cut] for cut in range(len(encoded))]
            corruptions.append(encoded + b"\x00")
            for _ in range(10):
                mutated = bytearray(encoded)
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
                corruptions.append(bytes(mutated))
            for candidate in corruptions:
                assert self._validate_ok(candidate) == self._decode_ok(candidate), (
                    f"validator/decoder disagree on {candidate!r}"
                )

    def test_depth_budget_matches_decoder(self):
        # 15 nested lists decode from payload position; 16 do not.  The
        # validator must flip at exactly the same depth.
        def nested(depth):
            value = []
            for _ in range(depth - 1):
                value = [value]
            return value

        ok = encode_value(nested(15))
        too_deep = encode_value([nested(15)][0:1])  # one deeper via wrapper
        assert self._validate_ok(ok) and self._decode_ok(ok)
        assert self._validate_ok(too_deep) == self._decode_ok(too_deep)

    def test_lazy_tail_matches_eager_tail(self):
        rng = random.Random(17)
        for _ in range(100):
            payload = _random_value(rng)
            frame = encode_frame(PATH, 2, payload)
            offset = 6 + len(frame_path_key(frame))
            mtype, value, raw = decode_frame_tail(frame, offset)
            lazy_mtype, lazy_raw = decode_frame_tail_lazy(frame, offset)
            assert (lazy_mtype, bytes(lazy_raw)) == (mtype, bytes(raw))
            assert decode_value(lazy_raw) == value


# -- malformed batch fuzz ------------------------------------------------------


class TestMalformedBatchFuzz:
    def test_truncated_length_prefixes(self):
        batch = encode_batch([encode_frame(PATH, 0, [1, 2]), encode_frame(PATH, 1, None)])
        for cut in range(len(batch)):
            with pytest.raises(WireFormatError):
                decode_batch(batch[:cut]) if cut else decode_batch(b"")

    def test_member_length_overruns_container(self):
        frame = encode_frame(PATH, 0, None)
        batch = bytearray(encode_batch([frame, frame]))
        # Inflate the first member's length prefix so its slice would
        # overlap the second member and run past the container.
        batch[5:9] = (len(frame) + 1000).to_bytes(4, "big")
        with pytest.raises(WireFormatError):
            decode_batch_views(bytes(batch))

    def test_random_mutations_never_crash_and_views_match_copies(self):
        rng = random.Random(23)
        frames = [encode_frame(PATH, i % 3, [i, bytes(i)]) for i in range(5)]
        batch = encode_batch(frames)
        for _ in range(300):
            mutated = bytearray(batch)
            for _ in range(rng.randrange(1, 4)):
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            data = bytes(mutated)
            try:
                copies = decode_batch(data)
            except WireFormatError:
                with pytest.raises(WireFormatError):
                    decode_batch_views(data)
                continue
            assert [bytes(v) for v in decode_batch_views(data)] == copies


# -- the frame-parse memo ------------------------------------------------------


class TestFrameFastpath:
    def setup_method(self):
        fastpath_memo_clear()

    def teardown_method(self):
        fastpath_memo_clear()

    def test_matches_unmemoized_parse(self):
        frame = encode_frame(PATH, 1, [7, b"pp"])
        for _ in range(2):  # miss, then hit
            key, mtype, raw = frame_fastpath(frame)
            assert key == frame_path_key(frame)
            assert (mtype, decode_value(raw)) == (1, [7, b"pp"])

    def test_repeat_frames_share_the_raw_object(self):
        frame = encode_frame(PATH, 1, [7, b"pp"])
        first = frame_fastpath(frame)[2]
        second = frame_fastpath(bytes(frame))[2]
        assert first is second  # downstream digest caches key off this

    def test_rejects_batches_and_malformed(self):
        frame = encode_frame(PATH, 1, None)
        assert frame_fastpath(encode_batch([frame])) is None
        assert frame_fastpath(b"") is None
        assert frame_fastpath(b"\xff" + frame[1:]) is None
        truncated = frame[:-1]
        assert frame_fastpath(truncated) is None
        # ... and the verdicts are memoized without flipping.
        assert frame_fastpath(truncated) is None

    def test_memo_is_bounded(self):
        from repro.core.wire import _FASTPATH_MEMO_MAX, _fastpath_memo

        for i in range(_FASTPATH_MEMO_MAX + 50):
            frame_fastpath(encode_frame(PATH, 1, [i]))
        assert len(_fastpath_memo) <= _FASTPATH_MEMO_MAX


# -- lazy mbufs ----------------------------------------------------------------


class TestLazyMbuf:
    def test_payload_decodes_on_first_access(self):
        raw = encode_value([1, [2, 3]])
        mbuf = Mbuf.lazy(1, PATH, 0, raw, wire_size=len(raw))
        assert mbuf.payload == [1, [2, 3]]
        assert mbuf.payload is mbuf.payload  # decoded once, then cached

    def test_setter_overrides(self):
        mbuf = Mbuf.lazy(1, PATH, 0, encode_value(5))
        mbuf.payload = "replaced"
        assert mbuf.payload == "replaced"

    def test_eager_construction_unchanged(self):
        mbuf = Mbuf(src=2, path=PATH, mtype=1, payload=[9], wire_size=3)
        assert mbuf.payload == [9]
        assert mbuf.raw_payload is None
        assert "p2" in mbuf.describe()


# -- raw splice send path ------------------------------------------------------


class _Recorder(ControlBlock):
    protocol = "rec"

    def __init__(self, stack, path, parent=None, purpose=None):
        super().__init__(stack, path, parent, purpose)
        self.inputs: list[tuple[int, int, object]] = []

    def input(self, mbuf: Mbuf) -> None:
        self.inputs.append((mbuf.src, mbuf.mtype, mbuf.payload))


class TestRawSplice:
    def _stack_and_outbox(self):
        sent: list[tuple[int, bytes]] = []
        stack = Stack(GroupConfig(4), 0, outbox=lambda d, b: sent.append((d, b)))
        return stack, sent

    def test_send_all_raw_is_byte_identical_to_send_all(self):
        for payload in (None, 7, [1, [b"x", "y"], True], bytes(50)):
            stack, sent = self._stack_and_outbox()
            block = _Recorder(stack, PATH)
            block.send_all(2, payload)
            plain = [data for _, data in sent]
            stack2, sent2 = self._stack_and_outbox()
            block2 = _Recorder(stack2, PATH)
            block2.send_all_raw(2, encode_value(payload))
            assert [data for _, data in sent2] == plain
            assert stack2.stats.frames_sent == stack.stats.frames_sent

    def test_broadcast_raw_without_cached_prefix(self):
        stack, sent = self._stack_and_outbox()
        stack.broadcast_frame_raw(("nowhere",), 1, encode_value([5]))
        assert len(sent) == 4
        assert decode_frame(sent[0][1]) == (("nowhere",), 1, [5])


# -- end-to-end: lazy receive + malformed payload defense ---------------------


class TestReceiveFastPathBehavior:
    def setup_method(self):
        fastpath_memo_clear()

    def teardown_method(self):
        fastpath_memo_clear()

    def test_registered_instance_receives_lazy_payload(self):
        stack = Stack(GroupConfig(4), 0, outbox=lambda d, b: None)
        block = _Recorder(stack, PATH)
        stack.receive(1, encode_frame(PATH, 2, [4, None]))
        assert block.inputs == [(1, 2, [4, None])]

    def test_malformed_payload_dropped_and_charged_before_input(self):
        stack = Stack(GroupConfig(4), 0, outbox=lambda d, b: None)
        block = _Recorder(stack, PATH)
        frame = bytearray(encode_frame(PATH, 2, "abc"))
        frame[-1] = 0xFF  # invalid utf-8 tail: decoder and validator reject
        before = stack.stats.misbehavior_reports
        stack.receive(1, bytes(frame))
        assert block.inputs == []  # never reached the protocol
        assert stack.stats.dropped["malformed-frame"] == 1
        assert stack.stats.misbehavior_reports == before + 1

    def test_batch_members_dispatch_lazily(self):
        stack = Stack(GroupConfig(4), 0, outbox=lambda d, b: None)
        block = _Recorder(stack, PATH)
        batch = encode_batch([encode_frame(PATH, i, [i]) for i in range(3)])
        stack.receive(2, batch)
        assert block.inputs == [(2, 0, [0]), (2, 1, [1]), (2, 2, [2])]
