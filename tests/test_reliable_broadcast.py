"""Bracha reliable broadcast: unit-level message handling and end-to-end
properties, including sender equivocation."""

import pytest

from repro.core.config import GroupConfig
from repro.core.errors import ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.reliable_broadcast import MSG_ECHO, MSG_INIT, MSG_READY
from repro.core.stack import ProtocolFactory, Stack
from repro.core.wire import encode_frame

from util import InstantNet, ShuffleNet


def lone_stack(pid=0):
    """A stack whose outbox records frames instead of sending them."""
    sent = []
    stack = Stack(GroupConfig(4), pid, outbox=lambda d, b: sent.append((d, b)))
    return stack, sent


def feed(stack, path, mtype, payload, src):
    stack.receive(src, encode_frame(path, mtype, payload))


def sent_mtypes(sent):
    from repro.core.wire import decode_frame

    return [decode_frame(data)[1] for _, data in sent]


class TestUnitBehaviour:
    def test_init_triggers_echo_to_all(self):
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        feed(stack, ("b",), MSG_INIT, b"m", src=0)
        assert sent_mtypes(sent) == [MSG_ECHO] * 4

    def test_init_from_wrong_sender_rejected(self):
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        feed(stack, ("b",), MSG_INIT, b"m", src=2)
        assert sent == []
        assert stack.stats.dropped["protocol-violation"] == 1

    def test_duplicate_init_ignored(self):
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        feed(stack, ("b",), MSG_INIT, b"m", src=0)
        feed(stack, ("b",), MSG_INIT, b"m2", src=0)
        assert sent_mtypes(sent) == [MSG_ECHO] * 4

    def test_echo_quorum_triggers_ready(self):
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        for src in (0, 2, 3):  # floor((4+1)/2)+1 = 3 echoes
            feed(stack, ("b",), MSG_ECHO, b"m", src=src)
        assert sent_mtypes(sent) == [MSG_READY] * 4

    def test_two_echoes_not_enough(self):
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        for src in (0, 2):
            feed(stack, ("b",), MSG_ECHO, b"m", src=src)
        assert sent == []

    def test_ready_amplification(self):
        """f+1 READYs substitute for the echo quorum."""
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        for src in (2, 3):
            feed(stack, ("b",), MSG_READY, b"m", src=src)
        assert sent_mtypes(sent) == [MSG_READY] * 4

    def test_delivery_needs_2f_plus_1_readys(self):
        stack, sent = lone_stack(pid=1)
        rb = stack.create("rb", ("b",), sender=0)
        delivered = []
        rb.on_deliver = lambda _i, v: delivered.append(v)
        for src in (0, 2):
            feed(stack, ("b",), MSG_READY, b"m", src=src)
        assert delivered == []
        feed(stack, ("b",), MSG_READY, b"m", src=3)
        assert delivered == [b"m"]

    def test_delivery_exactly_once(self):
        stack, _ = lone_stack(pid=1)
        rb = stack.create("rb", ("b",), sender=0)
        delivered = []
        rb.on_deliver = lambda _i, v: delivered.append(v)
        for src in (0, 1, 2, 3):
            feed(stack, ("b",), MSG_READY, b"m", src=src)
        assert delivered == [b"m"]

    def test_echo_votes_counted_once_per_source(self):
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        for _ in range(5):
            feed(stack, ("b",), MSG_ECHO, b"m", src=2)
        assert sent == []  # one source, however chatty, is one vote

    def test_equivocating_echoes_split_by_digest(self):
        """Votes for different payloads never combine."""
        stack, sent = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        feed(stack, ("b",), MSG_ECHO, b"m1", src=0)
        feed(stack, ("b",), MSG_ECHO, b"m2", src=2)
        feed(stack, ("b",), MSG_ECHO, b"m3", src=3)
        assert sent == []

    def test_unknown_mtype_rejected(self):
        stack, _ = lone_stack(pid=1)
        stack.create("rb", ("b",), sender=0)
        feed(stack, ("b",), 7, b"m", src=0)
        assert stack.stats.dropped["protocol-violation"] == 1

    def test_broadcast_by_non_sender_rejected(self):
        stack, _ = lone_stack(pid=1)
        rb = stack.create("rb", ("b",), sender=0)
        with pytest.raises(ProtocolViolationError):
            rb.broadcast(b"not mine")

    def test_invalid_sender_id_rejected(self):
        stack, _ = lone_stack()
        with pytest.raises(ValueError):
            stack.create("rb", ("b",), sender=9)

    def test_broadcast_counts_in_stats(self):
        stack, _ = lone_stack(pid=0)
        rb = stack.create("rb", ("b",), sender=0, purpose="payload")
        rb.broadcast(b"m")
        assert stack.stats.broadcasts[("rb", "payload")] == 1


class TestEndToEnd:
    def test_all_correct_deliver(self):
        net = InstantNet(4)
        got = {}
        for pid, stack in enumerate(net.stacks):
            rb = stack.create("rb", ("x",), sender=1)
            rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
        net.stacks[1].instance_at(("x",)).broadcast(b"hello")
        net.run()
        assert got == {pid: b"hello" for pid in range(4)}

    def test_delivery_with_one_crashed_receiver(self):
        net = InstantNet(4, crashed={3})
        got = {}
        for pid in range(3):
            rb = net.stacks[pid].create("rb", ("x",), sender=0)
            rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
        net.stacks[0].instance_at(("x",)).broadcast(b"m")
        net.run()
        assert got == {0: b"m", 1: b"m", 2: b"m"}

    def test_crashed_sender_no_delivery(self):
        net = InstantNet(4)
        got = {}
        for pid in range(4):
            rb = net.stacks[pid].create("rb", ("x",), sender=0)
            rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
        net.crash(0)
        net.stacks[0].instance_at(("x",)).broadcast(b"m")
        net.run()
        assert got == {}

    def test_equivocating_sender_agreement(self):
        """A corrupt sender sends INIT m1 to half, INIT m2 to the rest:
        correct processes either all deliver the same message or none."""
        for seed in range(8):
            net = ShuffleNet(4, seed=seed)
            got = {}
            for pid in range(1, 4):
                rb = net.stacks[pid].create("rb", ("x",), sender=0)
                rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
            # Byzantine p0 bypasses its own instance and sends raw frames.
            for dest, payload in [(1, b"m1"), (2, b"m1"), (3, b"m2")]:
                net.stacks[0].send_frame(dest, ("x",), MSG_INIT, payload)
            net.run()
            values = set(got.values())
            assert len(values) <= 1, f"seed {seed}: divergent deliveries {got}"

    def test_any_schedule_delivers(self):
        """Totality holds on randomized schedules."""
        for seed in range(10):
            net = ShuffleNet(4, seed=seed)
            got = {}
            for pid, stack in enumerate(net.stacks):
                rb = stack.create("rb", ("x",), sender=2)
                rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
            net.stacks[2].instance_at(("x",)).broadcast(b"p")
            net.run()
            assert got == {pid: b"p" for pid in range(4)}, f"seed {seed}"

    def test_larger_group_n7(self):
        net = InstantNet(7)
        got = {}
        for pid, stack in enumerate(net.stacks):
            rb = stack.create("rb", ("x",), sender=0)
            rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
        net.stacks[0].instance_at(("x",)).broadcast(b"seven")
        net.run()
        assert len(got) == 7

    def test_two_crashed_in_n7(self):
        net = InstantNet(7, crashed={5, 6})
        got = {}
        for pid in range(5):
            rb = net.stacks[pid].create("rb", ("x",), sender=0)
            rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
        net.stacks[0].instance_at(("x",)).broadcast(b"m")
        net.run()
        assert len(got) == 5
