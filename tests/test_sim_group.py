"""The SimGroup one-call facade."""

import pytest

from repro import FaultPlan, SimGroup
from repro.adversary import byzantine_paper_faultload


class TestConsensusCalls:
    def test_binary_consensus(self):
        group = SimGroup(n=4, seed=61)
        assert group.binary_consensus([1, 1, 1, 1]) == [1, 1, 1, 1]

    def test_multivalued_consensus(self):
        group = SimGroup(n=4, seed=61)
        assert group.multivalued_consensus([b"v"] * 4) == [b"v"] * 4

    def test_vector_consensus(self):
        group = SimGroup(n=4, seed=61)
        vectors = group.vector_consensus([b"p%d" % pid for pid in range(4)])
        assert all(v == vectors[0] for v in vectors)
        assert len(vectors[0]) == 4

    def test_sequential_calls_are_independent_instances(self):
        group = SimGroup(n=4, seed=61)
        assert group.binary_consensus([0, 0, 0, 0]) == [0] * 4
        assert group.binary_consensus([1, 1, 1, 1]) == [1] * 4
        assert group.multivalued_consensus([b"x"] * 4) == [b"x"] * 4

    def test_elapsed_advances(self):
        group = SimGroup(n=4, seed=61)
        group.binary_consensus([1, 1, 1, 1])
        first = group.elapsed
        group.binary_consensus([0, 0, 0, 0])
        assert group.elapsed > first > 0.0

    def test_wrong_proposal_count_rejected(self):
        group = SimGroup(n=4, seed=61)
        with pytest.raises(ValueError, match="one proposal per process"):
            group.binary_consensus([1, 1])


class TestBroadcastCalls:
    def test_reliable_broadcast(self):
        group = SimGroup(n=4, seed=62)
        assert group.reliable_broadcast(2, b"hello") == [b"hello"] * 4

    def test_echo_broadcast(self):
        group = SimGroup(n=4, seed=62)
        assert group.echo_broadcast(0, b"echo") == [b"echo"] * 4

    def test_atomic_broadcast_returns_per_process_orders(self):
        group = SimGroup(n=4, seed=62)
        orders = group.atomic_broadcast({0: [b"a", b"b"], 3: [b"c"]})
        ids = [[d.msg_id for d in order] for order in orders]
        assert all(o == ids[0] for o in ids)
        assert len(ids[0]) == 3

    def test_atomic_broadcast_order_persists_across_calls(self):
        group = SimGroup(n=4, seed=62)
        first = group.atomic_broadcast({0: [b"one"]})
        second = group.atomic_broadcast({1: [b"two"]})
        assert first[0][0].sequence == 0
        assert second[0][0].sequence == 1

    def test_invalid_sender_rejected(self):
        group = SimGroup(n=4, seed=62)
        with pytest.raises(ValueError, match="not a live process"):
            group.reliable_broadcast(9, b"x")


class TestWithFaults:
    def test_fail_stop_group(self):
        group = SimGroup(n=4, seed=63, fault_plan=FaultPlan.fail_stop(3))
        assert group.binary_consensus([1, 1, 1, 1]) == [1, 1, 1]

    def test_byzantine_group(self):
        plan = FaultPlan.with_byzantine(3, byzantine_paper_faultload)
        group = SimGroup(n=4, seed=63, fault_plan=plan)
        decisions = group.multivalued_consensus([b"v"] * 4)
        assert decisions[:3] == [b"v"] * 3

    def test_crashed_sender_rejected(self):
        group = SimGroup(n=4, seed=63, fault_plan=FaultPlan.fail_stop(0))
        with pytest.raises(ValueError, match="not a live process"):
            group.reliable_broadcast(0, b"x")
