"""Unit tests for multi-valued consensus VECT validation and the
proposal rule (docs/PROTOCOLS.md)."""

from repro.core.config import GroupConfig
from repro.core.multivalued_consensus import _key
from repro.core.stack import Stack


def make_mvc(n=4):
    stack = Stack(GroupConfig(n), 0, outbox=lambda d, b: None)
    return stack.create("mvc", ("m",))


def feed_inits(mvc, values):
    for sender, value in enumerate(values):
        if value is not None:
            mvc._on_init(sender, value)


class TestVectValidity:
    def test_needs_value_quorum_matches(self):
        mvc = make_mvc()
        feed_inits(mvc, [b"v", b"v", b"w", None])
        keys = [_key(b"v")] * 2 + [_key(b"w"), None]
        assert mvc._vect_is_valid(b"v", keys)  # indices 0,1 match: n-2f = 2
        assert not mvc._vect_is_valid(b"w", keys)  # only index 2 matches

    def test_claimed_must_match_local(self):
        """The justification must agree with *our* INITs, index by index."""
        mvc = make_mvc()
        feed_inits(mvc, [b"v", b"v", None, None])
        lying = [_key(b"v"), _key(b"v"), _key(b"v"), _key(b"v")]
        # Claims v at indices 2 and 3, but we have no INIT there: only
        # 0 and 1 count -- still enough.
        assert mvc._vect_is_valid(b"v", lying)
        mvc2 = make_mvc()
        feed_inits(mvc2, [b"x", b"x", None, None])
        assert not mvc2._vect_is_valid(b"v", lying)

    def test_validity_grows_with_inits(self):
        mvc = make_mvc()
        keys = [_key(b"v")] * 4
        assert not mvc._vect_is_valid(b"v", keys)
        mvc._on_init(0, b"v")
        assert not mvc._vect_is_valid(b"v", keys)
        mvc._on_init(1, b"v")
        assert mvc._vect_is_valid(b"v", keys)


class TestVectPhase:
    def test_vect_carries_supported_value(self):
        captured = {}
        mvc = make_mvc()
        mvc._vect_payload = lambda value, just: captured.update(
            value=value, just=just
        ) or [value, just]
        mvc.proposed = True
        mvc.proposal = b"me"
        feed_inits(mvc, [b"v", b"v", b"w", None])
        assert captured["value"] == b"v"
        assert captured["just"][:3] == [b"v", b"v", b"w"]

    def test_vect_bottom_without_support(self):
        captured = {}
        mvc = make_mvc()
        mvc._vect_payload = lambda value, just: captured.update(value=value) or [
            value,
            just,
        ]
        mvc.proposed = True
        mvc.proposal = b"me"
        feed_inits(mvc, [b"a", b"b", b"c", None])
        assert captured["value"] is None

    def test_none_inits_do_not_back_a_value(self):
        """A Byzantine ⊥ INIT can never become the supported value."""
        captured = {}
        mvc = make_mvc()
        mvc._vect_payload = lambda value, just: captured.update(value=value) or [
            value,
            just,
        ]
        mvc.proposed = True
        mvc.proposal = b"me"
        mvc._on_init(0, None)
        mvc._on_init(1, None)
        mvc._on_init(2, b"x")
        assert captured["value"] is None


class TestProposalRule:
    def run_vects(self, vects):
        """Build an MVC, feed ⊥-free valid VECTs directly, capture the bit."""
        mvc = make_mvc()
        proposed = {}
        mvc._bc.propose = lambda bit: proposed.update(bit=bit)
        mvc._vect_sent = True
        for sender, value in enumerate(vects):
            mvc._valid_vects[sender] = (
                (value, _key(value)) if value is not None else (None, None)
            )
        mvc._maybe_propose_bit()
        return proposed.get("bit")

    def test_unanimous_supported_proposes_one(self):
        assert self.run_vects([b"v", b"v", b"v"]) == 1

    def test_conflicting_values_propose_zero(self):
        assert self.run_vects([b"v", b"v", b"w"]) == 0

    def test_bottoms_do_not_conflict(self):
        """⊥ VECTs never count as 'a different value' -- otherwise the
        paper's Section 4.2 attack would succeed."""
        assert self.run_vects([b"v", b"v", None]) == 1

    def test_insufficient_support_proposes_zero(self):
        assert self.run_vects([b"v", None, None]) == 0

    def test_below_quorum_waits(self):
        assert self.run_vects([b"v", b"v"]) is None
