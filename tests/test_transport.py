"""The TCP transport: framing security and live asyncio group runs."""

import asyncio

import pytest

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.transport.framing import FrameCodec, FramingError, peek_src
from repro.transport.tcp import PeerAddress, RitasNode
from repro.transport.session import RitasSession


class TestFraming:
    def key(self):
        return b"k" * 16

    def test_roundtrip(self):
        sender = FrameCodec(self.key(), src=2)
        receiver = FrameCodec(self.key(), src=2)
        frame = sender.encode(b"payload")
        body = frame[4:]  # strip the length prefix
        assert receiver.decode(body) == (2, b"payload")

    def test_sequence_increments(self):
        sender = FrameCodec(self.key(), src=0)
        receiver = FrameCodec(self.key(), src=0)
        for i in range(5):
            src, payload = receiver.decode(sender.encode(b"%d" % i)[4:])
            assert payload == b"%d" % i

    def test_replay_rejected(self):
        sender = FrameCodec(self.key(), src=0)
        receiver = FrameCodec(self.key(), src=0)
        body = sender.encode(b"x")[4:]
        receiver.decode(body)
        with pytest.raises(FramingError, match="replay"):
            receiver.decode(body)

    def test_reorder_rejected(self):
        sender = FrameCodec(self.key(), src=0)
        receiver = FrameCodec(self.key(), src=0)
        first = sender.encode(b"1")[4:]
        second = sender.encode(b"2")[4:]
        receiver.decode(second)
        with pytest.raises(FramingError):
            receiver.decode(first)

    def test_tampered_payload_rejected(self):
        sender = FrameCodec(self.key(), src=0)
        receiver = FrameCodec(self.key(), src=0)
        body = bytearray(sender.encode(b"honest")[4:])
        body[13] ^= 0xFF
        with pytest.raises(FramingError, match="MAC"):
            receiver.decode(bytes(body))

    def test_wrong_key_rejected(self):
        sender = FrameCodec(b"a" * 16, src=0)
        receiver = FrameCodec(b"b" * 16, src=0)
        with pytest.raises(FramingError, match="MAC"):
            receiver.decode(sender.encode(b"x")[4:])

    def test_spoofed_src_rejected(self):
        """A frame authenticated under key(0) but claiming src 3."""
        sender = FrameCodec(self.key(), src=3)
        receiver = FrameCodec(self.key(), src=0)
        with pytest.raises(FramingError):
            receiver.decode(sender.encode(b"x")[4:])

    def test_truncated_frame_rejected(self):
        receiver = FrameCodec(self.key(), src=0)
        with pytest.raises(FramingError, match="short"):
            receiver.decode(b"tiny")

    def test_peek_src(self):
        sender = FrameCodec(self.key(), src=2)
        assert peek_src(sender.encode(b"x")[4:]) == 2

    def test_peek_src_truncated(self):
        with pytest.raises(FramingError):
            peek_src(b"")


@pytest.fixture
def group4():
    config = GroupConfig(4)
    dealer = TrustedDealer(4, seed=b"transport-tests")
    return config, dealer


def make_nodes(config, dealer, factory_for=None):
    # Port 0 everywhere: each node binds an ephemeral port in listen(),
    # and start_group() exchanges the real ports before connecting.
    addresses = [PeerAddress("127.0.0.1", 0) for _ in range(config.n)]
    nodes = []
    for pid in range(config.n):
        factory = factory_for(pid) if factory_for else None
        nodes.append(
            RitasNode(config, pid, addresses, dealer.keystore_for(pid), factory=factory)
        )
    return nodes


async def start_group(nodes):
    """Bind every node first, then share the bound ports and connect."""
    for node in nodes:
        await node.listen()
    addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
    for node in nodes:
        node.set_peer_addresses(addresses)
    for node in nodes:
        await node.connect()
    return addresses


async def start_sessions(sessions):
    """Same staged startup for the session facade."""
    for session in sessions:
        await session.listen()
    addresses = [
        PeerAddress("127.0.0.1", session.bound_port) for session in sessions
    ]
    for session in sessions:
        session.set_peer_addresses(addresses)
    for session in sessions:
        await session.connect()
    return addresses


class TestLiveGroup:
    def test_atomic_broadcast_total_order(self, group4):
        config, dealer = group4

        async def scenario():
            nodes = make_nodes(config, dealer)
            await start_group(nodes)
            try:
                orders = {pid: [] for pid in range(4)}
                for pid, node in enumerate(nodes):
                    ab = node.stack.create("ab", ("t",))
                    ab.on_deliver = (
                        lambda _i, d, pid=pid: orders[pid].append((d.sender, d.rbid))
                    )
                for pid, node in enumerate(nodes):
                    node.stack.instance_at(("t",)).broadcast(b"m%d" % pid)

                async def done():
                    return all(len(o) == 4 for o in orders.values())

                for _ in range(400):
                    if await done():
                        break
                    await asyncio.sleep(0.02)
                assert await done(), orders
                assert all(o == orders[0] for o in orders.values())
            finally:
                for node in nodes:
                    await node.close()

        asyncio.run(scenario())

    def test_binary_consensus_over_sessions(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
            sessions = [
                RitasSession(config, pid, addresses, dealer.keystore_for(pid))
                for pid in range(4)
            ]
            await start_sessions(sessions)
            try:
                decisions = await asyncio.wait_for(
                    asyncio.gather(
                        *[s.binary_consensus("vote", 1) for s in sessions]
                    ),
                    timeout=20,
                )
                assert decisions == [1, 1, 1, 1]
            finally:
                for session in sessions:
                    await session.close()

        asyncio.run(scenario())

    def test_session_ab_stream(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
            sessions = [
                RitasSession(config, pid, addresses, dealer.keystore_for(pid))
                for pid in range(4)
            ]
            await start_sessions(sessions)
            try:
                await sessions[1].ab_broadcast(b"hello")
                deliveries = await asyncio.wait_for(
                    asyncio.gather(*[s.ab_recv() for s in sessions]), timeout=20
                )
                assert all(d.payload == b"hello" for d in deliveries)
                assert all(d.sender == 1 for d in deliveries)
            finally:
                for session in sessions:
                    await session.close()

        asyncio.run(scenario())

    def test_rejects_unauthenticated_injection(self, group4):
        """A raw TCP client with no keys cannot get frames accepted."""
        config, dealer = group4

        async def scenario():
            nodes = make_nodes(config, dealer)
            await start_group(nodes)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", nodes[0].bound_port
                )
                # A plausible-looking but unauthenticated frame.
                import struct

                body = struct.pack(">QI", 0, 1) + b"attack payload" + b"\x00" * 32
                writer.write(struct.pack(">I", len(body)) + body)
                await writer.drain()
                await asyncio.sleep(0.3)
                assert nodes[0].frames_rejected == 1
                assert nodes[0].stack.stats.frames_received == 0
                writer.close()
            finally:
                for node in nodes:
                    await node.close()

        asyncio.run(scenario())

    def test_addresses_length_checked(self, group4):
        config, dealer = group4
        with pytest.raises(ValueError):
            RitasNode(
                config,
                0,
                [PeerAddress("127.0.0.1", 1)],
                dealer.keystore_for(0),
            )
