"""The whole stack at group sizes beyond the paper's n=4.

n=5 and n=6 exercise the even ``n-f`` corner cases of the binary
consensus majority/validation math (tie rules); n=7 exercises f=2
(two simultaneous faults).
"""

import pytest

from util import InstantNet, ShuffleNet, decisions_of

SIZES = [5, 6, 7]


@pytest.mark.parametrize("n", SIZES)
class TestBinaryConsensus:
    def test_unanimous(self, n):
        net = InstantNet(n)
        for stack in net.stacks:
            stack.create("bc", ("b",))
        for stack in net.stacks:
            stack.instance_at(("b",)).propose(1)
        net.run()
        assert decisions_of(net, ("b",)) == [1] * n

    def test_split_agrees_on_shuffles(self, n):
        for seed in range(6):
            net = ShuffleNet(n, seed=seed)
            for stack in net.stacks:
                stack.create("bc", ("b",))
            for pid, stack in enumerate(net.stacks):
                stack.instance_at(("b",)).propose(pid % 2)
            net.run()
            decisions = decisions_of(net, ("b",))
            assert len(set(decisions)) == 1, f"n={n} seed={seed}: {decisions}"

    def test_max_crashes(self, n):
        f = (n - 1) // 3
        crashed = set(range(n - f, n))
        net = InstantNet(n, crashed=crashed)
        for pid, stack in enumerate(net.stacks):
            if pid not in crashed:
                stack.create("bc", ("b",))
        for pid, stack in enumerate(net.stacks):
            if pid not in crashed:
                stack.instance_at(("b",)).propose(0)
        net.run()
        assert decisions_of(net, ("b",)) == [0] * (n - f)


@pytest.mark.parametrize("n", SIZES)
class TestMvc:
    def test_unanimous(self, n):
        net = InstantNet(n)
        for stack in net.stacks:
            stack.create("mvc", ("m",))
        for stack in net.stacks:
            stack.instance_at(("m",)).propose(b"v")
        net.run()
        assert decisions_of(net, ("m",)) == [b"v"] * n

    def test_mixed_on_shuffles(self, n):
        for seed in range(4):
            net = ShuffleNet(n, seed=seed)
            for stack in net.stacks:
                stack.create("mvc", ("m",))
            for pid, stack in enumerate(net.stacks):
                stack.instance_at(("m",)).propose(b"a" if pid % 2 else b"b")
            net.run()
            decisions = decisions_of(net, ("m",))
            assert len({repr(d) for d in decisions}) == 1, f"n={n} seed={seed}"
            assert decisions[0] in (None, b"a", b"b")


@pytest.mark.parametrize("n", SIZES)
class TestVectorConsensus:
    def test_vector_properties(self, n):
        net = InstantNet(n)
        proposals = [b"p%d" % pid for pid in range(n)]
        for stack in net.stacks:
            stack.create("vc", ("v",))
        for pid, stack in enumerate(net.stacks):
            stack.instance_at(("v",)).propose(proposals[pid])
        net.run()
        decisions = decisions_of(net, ("v",))
        vector = decisions[0]
        assert all(d == vector for d in decisions)
        assert len(vector) == n
        f = (n - 1) // 3
        assert sum(1 for slot in vector if slot is not None) >= f + 1
        for pid, slot in enumerate(vector):
            assert slot in (None, proposals[pid])


@pytest.mark.parametrize("n", SIZES)
class TestAtomicBroadcast:
    def test_total_order(self, n):
        net = InstantNet(n)
        orders = {}
        for pid, stack in enumerate(net.stacks):
            ab = stack.create("ab", ("a",))
            orders[pid] = []
            ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
        for pid in range(n):
            net.stacks[pid].instance_at(("a",)).broadcast(b"m%d" % pid)
        net.run()
        reference = orders[0]
        assert len(reference) == n
        assert all(order == reference for order in orders.values())

    def test_total_order_with_max_crashes_shuffled(self, n):
        f = (n - 1) // 3
        crashed = set(range(n - f, n))
        for seed in range(3):
            net = ShuffleNet(n, seed=seed, crashed=crashed)
            orders = {}
            for pid, stack in enumerate(net.stacks):
                if pid in crashed:
                    continue
                ab = stack.create("ab", ("a",))
                orders[pid] = []
                ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
            for pid in range(n):
                if pid not in crashed:
                    net.stacks[pid].instance_at(("a",)).broadcast(b"x%d" % pid)
            net.run()
            reference = next(iter(orders.values()))
            assert len(reference) == n - len(crashed), f"n={n} seed={seed}"
            assert all(o == reference for o in orders.values()), f"n={n} seed={seed}"


@pytest.mark.parametrize("n", SIZES)
class TestBroadcasts:
    def test_rb_and_eb_deliver(self, n):
        for kind in ("rb", "eb"):
            net = InstantNet(n)
            got = {}
            for pid, stack in enumerate(net.stacks):
                inst = stack.create(kind, ("x",), sender=0)
                inst.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
            net.stacks[0].instance_at(("x",)).broadcast(b"m")
            net.run()
            assert got == {pid: b"m" for pid in range(n)}, kind
