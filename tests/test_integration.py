"""Cross-layer integration scenarios on the full LAN simulation."""

import pytest

from repro import FaultPlan, LanSimulation
from repro.adversary import byzantine_paper_faultload
from repro.apps import ReplicatedKvStore
from repro.net.network import WAN_EMULATED


class TestFullStackScenarios:
    def test_concurrent_independent_instances(self):
        """Several protocol instances interleave on one stack without
        cross-talk (control-block chaining demultiplexes them)."""
        sim = LanSimulation(n=4, seed=21)
        results = {"bc": [None] * 4, "mvc": [None] * 4}
        for pid, stack in enumerate(sim.stacks):
            bc = stack.create("bc", ("vote", 1))
            bc.on_deliver = lambda _i, v, pid=pid: results["bc"].__setitem__(pid, v)
            mvc = stack.create("mvc", ("cfg", 1))
            mvc.on_deliver = lambda _i, v, pid=pid: results["mvc"].__setitem__(pid, v)
        for pid, stack in enumerate(sim.stacks):
            stack.instance_at(("vote", 1)).propose(1)
            stack.instance_at(("cfg", 1)).propose(b"settings")
        sim.run(
            until=lambda: all(v is not None for vs in results.values() for v in vs)
        )
        assert results["bc"] == [1] * 4
        assert results["mvc"] == [b"settings"] * 4

    def test_sequential_sessions_share_stack(self):
        sim = LanSimulation(n=4, seed=22)
        for round_index in range(3):
            done = [None] * 4
            for pid, stack in enumerate(sim.stacks):
                bc = stack.create("bc", ("seq", round_index))
                bc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
            for stack in sim.stacks:
                stack.instance_at(("seq", round_index)).propose(round_index % 2)
            sim.run(until=lambda: all(v is not None for v in done))
            assert done == [round_index % 2] * 4

    def test_instance_destroy_frees_resources(self):
        sim = LanSimulation(n=4, seed=23)
        done = [None] * 4
        for pid, stack in enumerate(sim.stacks):
            bc = stack.create("bc", ("gc",))
            bc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
        for stack in sim.stacks:
            stack.instance_at(("gc",)).propose(1)
        sim.run(until=lambda: all(v is not None for v in done))
        sim.run()  # quiesce
        for stack in sim.stacks:
            before = stack.live_instances
            assert before > 0
            stack.instance_at(("gc",)).destroy()
            assert stack.live_instances == 0

    def test_kv_store_with_byzantine_and_late_writes(self):
        plan = FaultPlan.with_byzantine(1, byzantine_paper_faultload)
        sim = LanSimulation(n=4, seed=24, fault_plan=plan)
        stores = []
        for pid, stack in enumerate(sim.stacks):
            stores.append(ReplicatedKvStore(stack.create("ab", ("kv",))))
        stores[0].put("first", b"1")
        sim.run(until=lambda: all(len(s.rsm.applied) >= 1 for s in stores))
        stores[2].put("second", b"2")
        stores[3].put("third", b"3")
        sim.run(until=lambda: all(len(s.rsm.applied) >= 3 for s in stores))
        correct = [stores[pid] for pid in (0, 2, 3)]
        assert len({s.state_digest() for s in correct}) == 1
        assert correct[0].keys() == ["first", "second", "third"]

    def test_crash_mid_run(self):
        """A process crashing *during* a burst: the rest finish and agree."""
        plan = FaultPlan(crashed={2: 0.010})
        sim = LanSimulation(n=4, seed=25, fault_plan=plan)
        orders = {pid: [] for pid in (0, 1, 3)}
        for pid in range(4):
            ab = sim.stacks[pid].create("ab", ("burst",))
            if pid in orders:
                ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
        for pid in (0, 1, 3):
            for k in range(5):
                sim.stacks[pid].instance_at(("burst",)).broadcast(b"m%d%d" % (pid, k))
        reason = sim.run(
            until=lambda: all(len(o) >= 15 for o in orders.values()), max_time=60
        )
        assert reason == "until"
        assert all(o == orders[0] for o in orders.values())

    def test_wan_parameters_still_correct(self):
        """Correctness is timing-independent: the WAN preset with jitter
        changes latencies, never outcomes."""
        sim = LanSimulation(n=4, seed=26, params=WAN_EMULATED, jitter_s=0.01)
        done = [None] * 4
        for pid, stack in enumerate(sim.stacks):
            mvc = stack.create("mvc", ("wan",))
            mvc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
        for stack in sim.stacks:
            stack.instance_at(("wan",)).propose(b"over-the-wan")
        reason = sim.run(until=lambda: all(v is not None for v in done), max_time=300)
        assert reason == "until"
        assert done == [b"over-the-wan"] * 4

    def test_big_payload_through_the_stack(self):
        sim = LanSimulation(n=4, seed=27)
        payload = bytes(range(256)) * 256  # 64 KiB
        got = [None] * 4
        for pid, stack in enumerate(sim.stacks):
            ab = stack.create("ab", ("big",))
            ab.on_deliver = lambda _i, d, pid=pid: got.__setitem__(pid, d.payload)
        sim.stacks[1].instance_at(("big",)).broadcast(payload)
        sim.run(until=lambda: all(g is not None for g in got), max_time=120)
        assert all(g == payload for g in got)

    def test_ooc_pressure_does_not_break_late_starter(self):
        """One process creates its AB instance only after traffic started:
        the OOC table holds early frames and replays them on creation."""
        sim = LanSimulation(n=4, seed=28)
        orders = {pid: [] for pid in range(4)}
        for pid in range(3):
            ab = sim.stacks[pid].create("ab", ("late",))
            ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
        sim.stacks[0].instance_at(("late",)).broadcast(b"early")

        def create_late():
            ab = sim.stacks[3].create("ab", ("late",))
            ab.on_deliver = lambda _i, d: orders[3].append(d.msg_id)

        sim.loop.schedule(0.004, create_late)
        sim.run(until=lambda: all(len(o) == 1 for o in orders.values()), max_time=60)
        assert all(o == orders[0] for o in orders.values())
        assert sim.stacks[3].stats.ooc_drained > 0


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        def trace(seed):
            sim = LanSimulation(n=4, seed=seed)
            events = []
            for pid, stack in enumerate(sim.stacks):
                ab = stack.create("ab", ("d",))
                ab.on_deliver = lambda _i, d, pid=pid: events.append(
                    (round(sim.now, 9), pid, d.msg_id)
                )
            for pid in range(4):
                sim.stacks[pid].instance_at(("d",)).broadcast(b"m%d" % pid)
            sim.run(until=lambda: len(events) == 16)
            return events

        assert trace(99) == trace(99)

    def test_different_seeds_may_differ_in_timing(self):
        def end_time(seed):
            sim = LanSimulation(n=4, seed=seed, jitter_s=0.001)
            done = [None] * 4
            for pid, stack in enumerate(sim.stacks):
                bc = stack.create("bc", ("t",))
                bc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
            for stack in sim.stacks:
                stack.instance_at(("t",)).propose(1)
            sim.run(until=lambda: all(v is not None for v in done))
            return sim.now

        assert end_time(1) != end_time(2)
