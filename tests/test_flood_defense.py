"""Flood defense: per-peer OOC accounting, misbehavior ledger and
quarantine, client backpressure, bounded send queues, and the flooding
adversary strategies (extension; not part of the paper's evaluation).

The safety bar throughout: no defense mechanism may ever punish an
honest process.  Fair eviction must not evict honest parked messages
under a flood, and honest failure-free runs must never file a single
misbehavior report.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import STRATEGIES
from repro.apps.kv_store import ReplicatedKvStore
from repro.apps.lock_service import DistributedLockService
from repro.apps.state_machine import Command, ReplicatedStateMachine
from repro.core.config import GroupConfig
from repro.core.errors import BackpressureError
from repro.core.ledger import OFFENSE_WEIGHTS, MisbehaviorLedger
from repro.core.mbuf import Mbuf
from repro.core.ooc import OocTable
from repro.core.sendq import BoundedSendQueue
from repro.core.wire import (
    PRIORITY_AGREEMENT,
    PRIORITY_BULK,
    PRIORITY_PAYLOAD,
    encode_batch,
    encode_frame,
    frame_priority,
    peek_path,
)
from repro.net.faults import FaultPlan
from repro.net.network import LanSimulation

from util import InstantNet, ShuffleNet

COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def mb(src, tail, size=40):
    """A parked-message stand-in addressed to a unique ghost path."""
    return Mbuf(src=src, path=("ab", "ghost", tail), mtype=0, payload=b"", wire_size=size)


# -- OOC table: per-peer quotas and fair eviction ------------------------------


class TestOocFairness:
    def test_quota_evicts_senders_own_oldest(self):
        table = OocTable(capacity=100, peer_quota=2)
        table.store(mb(1, 0))
        table.store(mb(1, 1))
        table.store(mb(1, 2))  # over quota: evicts ghost/0, not anything else
        assert table.pending_of(1) == 2
        assert not table.has_prefix(("ab", "ghost", 0))
        assert table.has_prefix(("ab", "ghost", 1))
        assert table.quota_evictions == 1
        assert table.evictions_by_src[1] == 1

    def test_capacity_evicts_fattest_sender(self):
        table = OocTable(capacity=4, peer_quota=0)
        table.store(mb(0, "honest"))
        for tail in range(3):
            table.store(mb(3, tail))
        table.store(mb(3, 99))  # at capacity: flooder (3 entries) pays, not src 0
        assert table.has_prefix(("ab", "ghost", "honest"))
        assert not table.has_prefix(("ab", "ghost", 0))
        assert table.evictions_by_src == {3: 1}

    def test_single_sender_degenerates_to_fifo(self):
        table = OocTable(capacity=3)
        for tail in range(4):
            table.store(mb(0, tail))
        assert not table.has_prefix(("ab", "ghost", 0))
        assert [table.has_prefix(("ab", "ghost", t)) for t in (1, 2, 3)] == [True] * 3

    def test_on_evict_hook_sees_reason(self):
        seen = []
        table = OocTable(capacity=2, peer_quota=1)
        table.on_evict = lambda mbuf, reason: seen.append((mbuf.src, reason))
        table.store(mb(5, 0))
        table.store(mb(5, 1))
        assert seen == [(5, "quota")]

    def test_byte_accounting_tracks_evictions(self):
        table = OocTable(capacity=2)
        table.store(mb(1, 1, size=60))
        table.store(mb(1, 2, size=60))
        table.store(mb(0, 0, size=100))  # at capacity: src 1 (fattest) pays
        assert table.bytes == 160
        assert table.peak_bytes == 160
        drained = table.drain_prefix(("ab", "ghost", 0))
        assert [m.wire_size for m in drained] == [100]
        assert table.bytes == 60

    @given(
        flood=st.lists(st.sampled_from([2, 3]), min_size=1, max_size=60),
        honest_at=st.integers(0, 59),
    )
    @settings(**COMMON)
    def test_flood_never_evicts_honest_entries(self, flood, honest_at):
        """Two flooders fill the table; the honest process parks two
        messages at an arbitrary point in the interleaving.  Fair
        eviction must only ever churn the flooders' entries."""
        table = OocTable(capacity=8, peer_quota=4)
        honest_paths = [("ab", "ghost", "h0"), ("ab", "ghost", "h1")]
        stored = 0
        for step, flooder in enumerate(flood):
            if step == min(honest_at, len(flood) - 1):
                for path in honest_paths:
                    table.store(Mbuf(src=0, path=path, mtype=0, payload=b"", wire_size=40))
                stored = 2
            table.store(mb(flooder, step))
        if not stored:
            for path in honest_paths:
                table.store(Mbuf(src=0, path=path, mtype=0, payload=b"", wire_size=40))
        assert all(table.has_prefix(path) for path in honest_paths)
        assert table.evictions_by_src.get(0, 0) == 0
        assert len(table) <= 8


# -- misbehavior ledger and quarantine -----------------------------------------


class TestLedger:
    def test_scores_accumulate_by_weight(self):
        ledger = MisbehaviorLedger(GroupConfig(4))
        ledger.report(1, "mac-failure")
        ledger.report(1, "ooc-quota")
        ledger.report(1, "unheard-of-offense")
        assert ledger.score(1) == OFFENSE_WEIGHTS["mac-failure"] + 0.25 + 1.0
        assert ledger.offenses(1)["mac-failure"] == 1

    def test_disabled_by_default(self):
        ledger = MisbehaviorLedger(GroupConfig(4))  # threshold 0.0
        assert not ledger.enabled
        for _ in range(100):
            assert ledger.report(2, "mac-failure") is False
        assert not ledger.quarantined(2)

    def test_threshold_enters_quarantine_once(self):
        config = GroupConfig(4, quarantine_threshold=3.0)
        ledger = MisbehaviorLedger(config, clock=lambda: 0.0)
        assert ledger.report(1, "mac-failure") is False  # score 2.0
        assert ledger.report(1, "mac-failure") is True  # score 4.0: enters
        assert ledger.report(1, "mac-failure") is False  # already inside
        assert ledger.quarantined(1)
        assert ledger.quarantined_ids() == [1]
        assert ledger.record(1).ever_quarantined

    def test_probational_release_halves_score(self):
        now = [0.0]
        config = GroupConfig(4, quarantine_threshold=3.0, quarantine_probation_s=5.0)
        ledger = MisbehaviorLedger(config, clock=lambda: now[0])
        ledger.report(1, "mac-failure")
        ledger.report(1, "mac-failure")
        assert ledger.quarantined(1)
        now[0] = 5.1
        assert not ledger.quarantined(1)  # probation expired
        assert ledger.score(1) == 2.0  # halved on release
        # One more offense crosses the (still-lowered) threshold again.
        assert ledger.report(1, "mac-failure") is True
        assert ledger.record(1).quarantines == 2


class TestStackQuarantine:
    def config(self, **kwargs):
        kwargs.setdefault("quarantine_threshold", 3.0)
        return GroupConfig(4, **kwargs)

    def test_report_guards_self_and_range(self):
        net = InstantNet(4, config=self.config())
        stack = net.stacks[0]
        assert stack.report_misbehavior(0, "mac-failure") is False
        assert stack.report_misbehavior(7, "mac-failure") is False
        assert stack.stats.misbehavior_reports == 0

    def test_garbage_frames_score_and_quarantine_sender(self):
        net = InstantNet(4, config=self.config())
        stack = net.stacks[0]
        for _ in range(4):
            stack.receive(3, b"\xffnot-a-frame")
        assert stack.ledger.score(3) >= 3.0
        assert stack.ledger.quarantined(3)
        assert stack.stats.quarantine_entries == 1
        # Quarantined traffic is now shed at demux, before decode.
        before = stack.stats.frames_quarantine_dropped
        stack.receive(3, encode_frame(("ab", 3, "msg", 0), 0, b"x"))
        assert stack.stats.frames_quarantine_dropped == before + 1
        assert len(stack.ooc) == 0

    def test_honest_runs_never_report(self):
        """The anti-slander bar: with quarantine armed, failure-free
        traffic on adversarial schedules files zero reports."""
        for seed in range(6):
            net = ShuffleNet(4, seed=seed, config=self.config())
            sessions = [stack.create("ab", ("ab",)) for stack in net.stacks]
            for pid, ab in enumerate(sessions):
                ab.broadcast(b"m%d" % pid)
            net.run()
            for stack in net.stacks:
                assert stack.stats.misbehavior_reports == 0, f"seed {seed}"
                assert stack.stats.quarantine_entries == 0


# -- client backpressure -------------------------------------------------------


class TestBackpressure:
    def config(self, cap=2):
        return GroupConfig(4, ab_pending_cap=cap)

    def test_broadcast_raises_at_cap(self):
        net = InstantNet(4, config=self.config(cap=2))
        sessions = [stack.create("ab", ("ab",)) for stack in net.stacks]
        ab = sessions[0]
        ab.broadcast(b"a")
        ab.broadcast(b"b")
        assert ab.pending_local == 2
        with pytest.raises(BackpressureError):
            ab.broadcast(b"c")
        assert net.stacks[0].stats.backpressure_signals == 1
        net.run()  # deliveries drain the window ...
        assert ab.pending_local == 0
        ab.broadcast(b"c")  # ... and admission reopens

    def test_try_submit_reports_rejection(self):
        net = InstantNet(4, config=self.config(cap=1))
        rsms = [
            ReplicatedStateMachine(stack.create("ab", ("app",)), _count_apply, 0)
            for stack in net.stacks
        ]
        assert rsms[0].try_submit(Command("add", [1])) is not None
        assert rsms[0].try_submit(Command("add", [2])) is None
        assert rsms[0].backpressured == 1
        net.run()
        assert rsms[0].try_submit(Command("add", [3])) is not None
        net.run()
        assert [rsm.state for rsm in rsms] == [4, 4, 4, 4]

    def test_kv_and_lock_try_variants(self):
        net = InstantNet(4, config=self.config(cap=1))
        kvs = [ReplicatedKvStore(stack.create("ab", ("kv",))) for stack in net.stacks]
        locks = [DistributedLockService(stack.create("ab", ("lk",))) for stack in net.stacks]
        assert kvs[0].try_put("k", b"v") is True
        assert kvs[0].try_put("k2", b"v") is False  # window full
        net.run()
        assert kvs[0].try_put("k2", b"v2") is True
        assert locks[1].try_acquire("m") is True
        assert locks[1].try_acquire("m2") is False  # window full
        net.run()
        assert all(kv.get("k") == b"v" for kv in kvs)
        assert all(lock.holder("m") is not None for lock in locks)


def _count_apply(state, command):
    total = state + command.args[0]
    return total, total


# -- bounded send queues -------------------------------------------------------


class TestBoundedSendQueue:
    def test_unbounded_is_plain_fifo(self):
        queue = BoundedSendQueue()
        for data in (b"a", b"b", b"c"):
            assert queue.push(data) == []
        assert [queue.pop(), queue.pop(), queue.pop()] == [b"a", b"b", b"c"]
        assert queue.pop() is None

    def test_overflow_sheds_lowest_priority_first(self):
        queue = BoundedSendQueue(max_frames=2)
        queue.push(b"payload", priority=PRIORITY_PAYLOAD)
        queue.push(b"vote1", priority=PRIORITY_AGREEMENT)
        shed = queue.push(b"vote2", priority=PRIORITY_AGREEMENT)
        assert shed == [b"payload"]
        assert queue.frames_shed == 1
        assert queue.shed_by_priority[PRIORITY_PAYLOAD] == 1
        assert [queue.pop(), queue.pop()] == [b"vote1", b"vote2"]

    def test_newcomer_shed_when_outranked(self):
        queue = BoundedSendQueue(max_frames=2)
        queue.push(b"vote1", priority=PRIORITY_AGREEMENT)
        queue.push(b"vote2", priority=PRIORITY_AGREEMENT)
        shed = queue.push(b"bulk", priority=PRIORITY_BULK)
        assert shed == [b"bulk"]
        assert [queue.pop(), queue.pop()] == [b"vote1", b"vote2"]

    def test_never_reorders_survivors(self):
        """Shedding removes frames but must preserve the relative order
        of everything that survives (per-pair FIFO is a protocol
        assumption)."""
        queue = BoundedSendQueue(max_frames=3)
        queue.push(b"p1", priority=PRIORITY_PAYLOAD)
        queue.push(b"v1", priority=PRIORITY_AGREEMENT)
        queue.push(b"p2", priority=PRIORITY_PAYLOAD)
        queue.push(b"v2", priority=PRIORITY_AGREEMENT)  # sheds p1
        assert [queue.pop(), queue.pop(), queue.pop()] == [b"v1", b"p2", b"v2"]

    def test_clear_counts_as_shed(self):
        queue = BoundedSendQueue(max_frames=10)
        queue.push(b"abc", priority=PRIORITY_PAYLOAD)
        queue.push(b"defg", priority=PRIORITY_AGREEMENT)
        frames, size = queue.clear()
        assert (frames, size) == (2, 7)
        assert queue.frames_shed == 2 and queue.bytes_shed == 7
        assert len(queue) == 0 and queue.bytes == 0

    def test_peaks_and_drain(self):
        queue = BoundedSendQueue(max_frames=10)
        for index in range(5):
            queue.push(bytes([index]) * 10, priority=PRIORITY_PAYLOAD)
        assert queue.peak_frames == 5 and queue.peak_bytes == 50
        assert len(queue.drain()) == 5
        assert queue.frames_shed == 0  # drain is delivery, not shedding


class TestFramePriority:
    def test_classes(self):
        assert frame_priority(encode_frame(("ab", 1, "msg", 0), 0, b"x")) == PRIORITY_PAYLOAD
        assert frame_priority(encode_frame(("ab", 1, "vect"), 0, b"x")) == PRIORITY_AGREEMENT
        assert frame_priority(encode_frame(("ab", 0, "mvc", "bc"), 2, [0])) == PRIORITY_AGREEMENT
        assert frame_priority(encode_frame(("rec", "st"), 0, b"x")) == PRIORITY_BULK
        assert frame_priority(encode_frame(("ckpt", 3), 1, b"x")) == PRIORITY_BULK
        assert frame_priority(b"\xffgarbage") == PRIORITY_BULK

    def test_batch_takes_member_maximum(self):
        payload = encode_frame(("ab", 1, "msg", 0), 0, b"x")
        vote = encode_frame(("ab", 0, "bc", 1), 1, 0)
        assert frame_priority(encode_batch([payload, payload])) == PRIORITY_PAYLOAD
        assert frame_priority(encode_batch([payload, vote])) == PRIORITY_AGREEMENT

    def test_peek_path(self):
        frame = encode_frame(("ab", 7, "msg"), 3, [b"payload", None])
        assert peek_path(frame) == ("ab", 7, "msg")
        assert peek_path(frame[:8]) is None
        assert peek_path(b"") is None
        assert peek_path(encode_batch([frame])) is None  # batches have no single path


# -- adversary strategies end to end -------------------------------------------


def _run_with_byzantine(strategy, commands=6, seed=11):
    config = GroupConfig(4, ooc_capacity=256, ooc_peer_quota=64)
    sim = LanSimulation(
        config=config, seed=seed, fault_plan=FaultPlan.with_byzantine(3, strategy)
    )
    delivered = [[] for _ in range(4)]
    for pid, stack in enumerate(sim.stacks):
        ab = stack.create("ab", ("ab",))

        def on_deliver(_instance, delivery, pid=pid):
            delivered[pid].append(delivery.payload)

        ab.on_deliver = on_deliver
        if pid < 3:
            for index in range(commands // 3):
                ab.broadcast(b"%d:%d" % (pid, index))
    done = lambda: all(len(delivered[pid]) >= commands for pid in range(3))  # noqa: E731
    sim.run(until=done, max_time=300.0)
    assert done(), f"{strategy}: honest group stalled ({[len(d) for d in delivered]})"
    assert delivered[0][:commands] == delivered[1][:commands] == delivered[2][:commands]
    return sim


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_group_survives_every_registered_strategy(strategy):
    _run_with_byzantine(strategy)


def test_ooc_flood_churns_only_the_flooder():
    sim = _run_with_byzantine("ooc-flood")
    for pid in range(3):
        ooc = sim.stacks[pid].ooc
        assert sum(ooc.evictions_by_src[src] for src in range(3)) == 0
        assert len(ooc) <= 256
    # The flood is visible in every honest ledger.
    assert all(sim.stacks[pid].ledger.score(3) > 0 for pid in range(3))


def test_bad_mac_convicts_the_sender():
    sim = _run_with_byzantine("bad-mac")
    # p3's own echo broadcasts never verify: every honest ledger holds
    # mac-failure offenses against p3 and nobody else.
    for pid in range(3):
        ledger = sim.stacks[pid].ledger
        assert ledger.offenses(3)["mac-failure"] > 0
        for honest in range(3):
            assert ledger.offenses(honest)["mac-failure"] == 0


def test_unknown_strategy_name_rejected():
    with pytest.raises(ValueError, match="unknown Byzantine strategy"):
        FaultPlan.with_byzantine(3, "no-such-strategy")
