"""Same-seed runs are byte-identical; restart lifecycle bugs stay fixed.

Covers the determinism/lifecycle satellites: the per-node seeded TCP
RNG (no more module-level ``random``), ticker cancellation across
crash/restart, tracer rewiring after restart, and the property that two
runs with identical seeds -- simulated or over real sockets -- produce
identical trace/delivery streams.
"""

import asyncio

from repro.check.scenarios import SCENARIOS
from repro.core.config import GroupConfig
from repro.core.trace import Tracer
from repro.crypto.keys import TrustedDealer
from repro.net.faults import FaultPlan
from repro.net.network import LanSimulation
from repro.transport.tcp import PeerAddress, RitasNode


class TestSimulationDeterminism:
    @staticmethod
    def _traced_run(seed: int) -> str:
        scenario = SCENARIOS["failure-free"]
        sim = scenario.build(seed, seed, 1e-4)
        tracers = []
        for stack in sim.stacks:
            tracer = Tracer(clock=lambda: sim.loop.now)
            stack.tracer = tracer
            tracers.append(tracer)
        scenario.apply_ops(sim, scenario.ops)
        sim.run(max_time=scenario.max_time)
        return "\n".join(tracer.render() for tracer in tracers)

    def test_same_seed_runs_are_byte_identical(self):
        first = self._traced_run(7)
        second = self._traced_run(7)
        assert first  # the run actually traced something
        assert first == second

    def test_different_seeds_diverge(self):
        assert self._traced_run(7) != self._traced_run(8)


class TestTcpDeterminism:
    def test_seeded_nodes_draw_identical_streams(self):
        """Satellite 1: reconnect jitter comes from a per-node seeded
        RNG, not the module-level ``random``."""
        config = GroupConfig(4)
        dealer = TrustedDealer(4, seed=b"det")
        blank = [PeerAddress("127.0.0.1", 0)] * 4

        def delays(pid, seed):
            node = RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=seed)
            return [node._reconnect_delay(failures) for failures in range(8)]

        assert delays(1, 42) == delays(1, 42)
        assert delays(1, 42) != delays(2, 42)  # per-node, not per-group
        assert delays(1, 42) != delays(1, 43)
        for delay in delays(3, 7):
            assert 0.0 < delay <= config.reconnect_max_s * (1 + config.reconnect_jitter)

    @staticmethod
    async def _tcp_delivery_stream(seed: int) -> str:
        config = GroupConfig(4)
        dealer = TrustedDealer(4, seed=b"det")
        blank = [PeerAddress("127.0.0.1", 0)] * 4
        nodes = [
            RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=seed)
            for pid in range(4)
        ]
        try:
            for node in nodes:
                await node.listen()
            addresses = [PeerAddress("127.0.0.1", n.bound_port) for n in nodes]
            for node in nodes:
                node.set_peer_addresses(addresses)
            for node in nodes:
                await node.connect()
            for node in nodes:
                node.stack.record_delivery_order = True
                node.stack.create("ab", ("t",))
            sender = nodes[0].stack.instance_at(("t",))
            for index in range(3):
                sender.broadcast(b"m%d" % index)
            for _ in range(500):
                if all(
                    len(node.stack.instance_at(("t",)).order_log) >= 3
                    for node in nodes
                ):
                    break
                await asyncio.sleep(0.02)
            return repr(
                [node.stack.instance_at(("t",)).order_log for node in nodes]
            )
        finally:
            for node in nodes:
                await node.close()

    def test_same_seed_tcp_runs_deliver_identically(self):
        first = asyncio.run(self._tcp_delivery_stream(5))
        second = asyncio.run(self._tcp_delivery_stream(5))
        assert "order_log" not in first  # sanity: repr of real tuples
        assert first == second
        assert first.count("(0, 0,") == 4  # every node logged seq 0 from p0


class TestCoinDeterminism:
    """Satellite: a stack built without an explicit coin must not fall
    back to ``SystemRandom`` -- same-seed runs stay byte-identical even
    through coin-branch rounds."""

    @staticmethod
    def _traced_coin_run(seed: int) -> tuple[str, int]:
        # byz-bc-split: split proposals plus the always-zero attacker,
        # so correct processes actually reach the step-3 coin branch.
        scenario = SCENARIOS["byz-bc-split"]
        sim = scenario.build(seed, seed, 1e-4)
        tracers = []
        for stack in sim.stacks:
            tracer = Tracer(clock=lambda: sim.loop.now)
            stack.tracer = tracer
            tracers.append(tracer)
        scenario.apply_ops(sim, scenario.ops)
        sim.run(max_time=scenario.max_time)
        tosses = sum(
            len(sim.stacks[pid].instance_at(("bc", "v"))._coin_rounds)
            for pid in range(5)  # pid 5 is the attacker
        )
        return "\n".join(tracer.render() for tracer in tracers), tosses

    def test_same_seed_coin_branch_runs_are_byte_identical(self):
        # At seed 0 every correct process reaches the step-3 coin branch
        # (asserted below), so the trace equality covers tosses of the
        # default stack-derived local coin.
        first, tosses_first = self._traced_coin_run(0)
        second, tosses_second = self._traced_coin_run(0)
        assert tosses_first == tosses_second == 5
        assert first == second

    def test_default_coin_stream_is_isolated_from_stack_rng(self):
        """The default coin is *derived* from the stack RNG at build
        time, so later timing-dependent draws (reconnect jitter, tie
        breaks) cannot shift the coin sequence."""
        import random

        from repro.core.stack import Stack

        def tosses(extra_draws: int) -> list[int]:
            config = GroupConfig(4)
            dealer = TrustedDealer(4, seed=b"det")
            stack = Stack(
                config,
                0,
                outbox=lambda dest, data: None,
                keystore=dealer.keystore_for(0),
                rng=random.Random(99),
            )
            for _ in range(extra_draws):
                stack.rng.random()  # a runtime consuming jitter draws
            return [stack.toss_coin(("b",), r) for r in range(1, 33)]

        baseline = tosses(0)
        assert tosses(7) == baseline
        assert len(set(baseline)) == 2  # actually random bits, not constant

    def test_bare_local_coin_still_defaults_to_system_random(self):
        """Production fallback unchanged: LocalCoin() with no RNG is
        securely seeded (only the *stack default* derives from the seed)."""
        import random

        from repro.crypto.coin import LocalCoin

        assert isinstance(LocalCoin()._rng, random.SystemRandom)
        assert LocalCoin().common is False


class TestTickerLifecycle:
    def test_restart_cancels_old_incarnation_tickers(self):
        """Satellite 2: a ticker registered before a restart must never
        fire against the dead incarnation's stack."""
        sim = LanSimulation(n=4, seed=2)
        fired = []
        sim.add_ticker(2, 0.01, lambda: fired.append(sim.loop.now))
        sim.run(max_time=0.05)
        assert fired  # the ticker was live before the restart
        before = len(fired)
        sim.restart_process(2)
        sim.run(max_time=0.30)
        assert len(fired) == before

    def test_crash_cancels_tickers(self):
        sim = LanSimulation(
            n=4, seed=2, fault_plan=FaultPlan(crashed={2: 0.055})
        )
        fired = []
        sim.add_ticker(2, 0.01, lambda: fired.append(sim.loop.now))
        sim.run(max_time=0.30)
        assert fired
        assert all(t < 0.055 for t in fired)

    def test_new_incarnation_can_register_tickers(self):
        sim = LanSimulation(n=4, seed=2)
        sim.restart_process(2)
        fired = []
        sim.add_ticker(2, 0.01, lambda: fired.append(None))
        sim.run(max_time=0.05)
        assert fired


class TestTracerRewire:
    def test_restart_rebinds_clock_and_incarnation(self):
        """Satellite 4: a tracer created with a stale clock is rewired to
        the simulation clock on restart and stamps the new incarnation."""
        sim = LanSimulation(n=4, seed=3)
        tracer = Tracer()  # deliberately stale clock: always reports 0.0
        sim.stacks[2].tracer = tracer
        for stack in sim.stacks:
            stack.create("rb", ("m",), sender=0)
        sim.stacks[0].instance_at(("m",)).broadcast(b"first-life")
        sim.run(max_time=1.0)
        pre = tracer.events()
        assert pre and all(event.time == 0.0 for event in pre)  # the skew
        assert all("incarnation" not in event.detail for event in pre)

        stack = sim.restart_process(2)
        assert stack.tracer is tracer  # carried over, not dropped
        for s in sim.stacks:
            if s.instance_at(("m2",)) is None:
                s.create("rb", ("m2",), sender=0)
        sim.stacks[0].instance_at(("m2",)).broadcast(b"second-life")
        sim.run(max_time=2.0)
        post = tracer.events()[len(pre) :]
        assert post
        assert all(event.time > 0.0 for event in post)  # simulation clock
        assert all(event.detail.get("incarnation") == 1 for event in post)
