"""The invariant checker: clean runs stay clean, injected divergence is caught.

Detection tests plant a divergence directly in one correct stack's
protocol state and assert :meth:`InvariantChecker.check_all` names the
right invariant -- exercising each per-protocol check without needing a
schedule that organically produces the bug.
"""

import random
from collections import Counter

import pytest

from repro.check import InvariantChecker, InvariantViolation
from repro.check.explore import run_one
from repro.check.scenarios import SCENARIOS
from repro.core.mbuf import Mbuf
from repro.core.ooc import OocTable
from repro.net.network import LanSimulation


def run_checked(name, seed=3):
    """Run a registered scenario to quiescence under the checker."""
    scenario = SCENARIOS[name]
    sim = scenario.build(seed, seed, 0.0)
    checker = InvariantChecker(sim)
    scenario.apply_ops(sim, scenario.ops)
    sim.run(max_time=scenario.max_time)
    checker.check_all()
    return sim, checker


class TestCleanRuns:
    @pytest.mark.parametrize(
        "name", ["failure-free", "crash", "byz-paper", "byz-bc-split"]
    )
    def test_scenario_is_clean(self, name):
        result = run_one(name, seed=3, tie_break_seed=3)
        assert result["outcome"] == "ok", result
        assert result["events"] > 0


class TestInjectedDivergence:
    def test_rb_agreement(self):
        sim = LanSimulation(n=4, seed=1)
        checker = InvariantChecker(sim)
        for stack in sim.stacks:
            stack.create("rb", ("m",), sender=0)
        sim.stacks[0].instance_at(("m",)).broadcast(b"payload")
        sim.run(max_time=5.0)
        checker.check_all()
        victim = sim.stacks[1].instance_at(("m",))
        assert victim.delivered
        victim.delivered_value = b"tampered"
        with pytest.raises(InvariantViolation) as exc:
            checker.check_all()
        assert exc.value.invariant == "rb-agreement"
        assert exc.value.path == ("m",)

    def test_bc_agreement(self):
        sim, checker = run_checked("failure-free")
        pid = sorted(checker.correct)[0]
        bc = sim.stacks[pid].instance_at(("bc", "v"))
        assert bc.decided
        bc.decision = 1 - bc.decision
        with pytest.raises(InvariantViolation) as exc:
            checker.check_all()
        assert exc.value.invariant == "bc-agreement"

    def test_bc_step3_uniqueness(self):
        sim, checker = run_checked("failure-free")
        # Pick a round where at least two correct processes broadcast a
        # non-bottom step-3 value, then flip one of them.
        rounds = Counter()
        for pid in checker.correct:
            sent = sim.stacks[pid].instance_at(("bc", "v"))._sent_values
            for (rn, step), value in sent.items():
                if step == 3 and value is not None:
                    rounds[rn] += 1
        rn = next(r for r, count in sorted(rounds.items()) if count >= 2)
        victim = next(
            sim.stacks[pid].instance_at(("bc", "v"))
            for pid in sorted(checker.correct)
            if sim.stacks[pid].instance_at(("bc", "v"))._sent_values.get((rn, 3))
            is not None
        )
        victim._sent_values[(rn, 3)] = 1 - victim._sent_values[(rn, 3)]
        with pytest.raises(InvariantViolation) as exc:
            checker.check_all()
        assert exc.value.invariant == "bc-step3-uniqueness"

    def test_ab_order(self):
        sim, checker = run_checked("failure-free")
        pid = sorted(checker.correct)[0]
        ab = sim.stacks[pid].instance_at(("ab", "a"))
        assert ab.order_log is not None and len(ab.order_log) >= 2
        ab.order_log[0], ab.order_log[1] = ab.order_log[1], ab.order_log[0]
        with pytest.raises(InvariantViolation) as exc:
            checker.check_all()
        assert exc.value.invariant == "ab-order"

    def test_mvc_agreement(self):
        sim, checker = run_checked("failure-free")
        pid = sorted(checker.correct)[0]
        mvc = sim.stacks[pid].instance_at(("mvc", "m"))
        assert mvc.decided
        mvc.decision = b"forged"
        with pytest.raises(InvariantViolation) as exc:
            checker.check_all()
        assert exc.value.invariant in ("mvc-agreement", "mvc-validity")

    def test_ooc_accounting(self):
        sim, checker = run_checked("failure-free")
        sim.stacks[0].stats.ooc_stored += 1
        with pytest.raises(InvariantViolation) as exc:
            checker.check_all()
        assert exc.value.invariant == "ooc-accounting"


class TestOocConsistency:
    """OocTable.check_consistency: silent on legal histories, loud on
    corrupted internals (the prefix-index staleness audit, satellite 3)."""

    def test_fuzz_random_operations(self):
        rng = random.Random(1234)
        table = OocTable(capacity=32, peer_quota=6)
        paths = [("ab", i, j) for i in range(3) for j in range(3)]
        for step in range(400):
            roll = rng.random()
            if roll < 0.70:
                table.store(
                    Mbuf(
                        src=rng.randrange(4),
                        path=rng.choice(paths),
                        mtype=1,
                        payload=step,
                        wire_size=rng.randrange(1, 64),
                    )
                )
            elif roll < 0.85:
                table.drain_prefix(rng.choice(paths)[: rng.randrange(1, 4)])
            else:
                table.purge_prefix(rng.choice(paths)[: rng.randrange(1, 4)])
            table.check_consistency()
        assert table.evictions > 0  # the fuzz actually hit the bounds

    def test_detects_stale_prefix_index(self):
        table = OocTable()
        table.store(Mbuf(src=0, path=("a", 1), mtype=1, payload=b"x"))
        table._index_add(("ghost", 9))  # a path with no stored messages
        with pytest.raises(AssertionError, match="prefix index"):
            table.check_consistency()

    def test_detects_counter_drift(self):
        table = OocTable()
        table.store(Mbuf(src=0, path=("a", 1), mtype=1, payload=b"x", wire_size=8))
        table.bytes += 1
        with pytest.raises(AssertionError, match="byte counter"):
            table.check_consistency()
