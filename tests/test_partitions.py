"""Network partitions: safety throughout, liveness after the heal."""

import pytest

from repro.net.faults import FaultPlan, Partition
from repro.net.network import LanSimulation


class TestPartitionModel:
    def test_separates_within_window_only(self):
        p = Partition(start=1.0, end=2.0, islands=((0, 1), (2, 3)))
        assert p.separates(0, 2, 1.5)
        assert not p.separates(0, 1, 1.5)
        assert not p.separates(0, 2, 0.5)
        assert not p.separates(0, 2, 2.0)

    def test_unlisted_process_is_isolated(self):
        p = Partition(start=0.0, end=1.0, islands=((0, 1, 2),))
        assert p.separates(0, 3, 0.5)
        assert p.separates(3, 2, 0.5)

    def test_clear_time_chains_partitions(self):
        plan = FaultPlan(
            partitions=[
                Partition(0.0, 1.0, ((0,), (1,))),
                Partition(1.0, 2.0, ((0,), (1,))),
            ]
        )
        assert plan.partition_clear_time(0, 1, 0.5) == 2.0
        assert plan.partition_clear_time(0, 1, 2.5) == 2.5

    def test_unrelated_pair_unaffected(self):
        plan = FaultPlan(partitions=[Partition(0.0, 1.0, ((0, 2, 3), (1,)))])
        assert not plan.is_partitioned(0, 2, 0.5)
        assert plan.is_partitioned(0, 1, 0.5)


class TestProtocolsAcrossPartitions:
    def test_consensus_stalls_during_partition_and_finishes_after(self):
        """A 2-2 split denies any quorum; the protocol simply waits (no
        timeout to misfire) and completes after the heal."""
        heal_at = 0.050
        plan = FaultPlan(
            partitions=[Partition(0.0, heal_at, ((0, 1), (2, 3)))]
        )
        sim = LanSimulation(n=4, seed=31, fault_plan=plan)
        done = [None] * 4
        for pid, stack in enumerate(sim.stacks):
            bc = stack.create("bc", ("p",))
            bc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
        for stack in sim.stacks:
            stack.instance_at(("p",)).propose(1)
        # Nothing can decide while split (n-f = 3 > any island).
        sim.run(until=lambda: any(v is not None for v in done), max_time=heal_at)
        assert all(v is None for v in done)
        reason = sim.run(until=lambda: all(v is not None for v in done), max_time=30)
        assert reason == "until"
        assert done == [1, 1, 1, 1]
        assert sim.now > heal_at

    def test_minority_partition_does_not_block_majority(self):
        """Isolating one process (= a transient crash, within f) leaves
        the other three able to finish during the partition."""
        plan = FaultPlan(partitions=[Partition(0.0, 10.0, ((0, 1, 2), (3,)))])
        sim = LanSimulation(n=4, seed=32, fault_plan=plan)
        done = [None] * 4
        for pid, stack in enumerate(sim.stacks):
            bc = stack.create("bc", ("p",))
            bc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
        for stack in sim.stacks:
            stack.instance_at(("p",)).propose(0)
        reason = sim.run(
            until=lambda: all(done[pid] is not None for pid in (0, 1, 2)),
            max_time=5.0,
        )
        assert reason == "until"
        assert sim.now < 10.0  # decided while p3 was still cut off

    def test_isolated_process_catches_up_after_heal(self):
        plan = FaultPlan(partitions=[Partition(0.0, 0.050, ((0, 1, 2), (3,)))])
        sim = LanSimulation(n=4, seed=33, fault_plan=plan)
        orders = {pid: [] for pid in range(4)}
        for pid, stack in enumerate(sim.stacks):
            ab = stack.create("ab", ("a",))
            ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
        for pid in range(3):
            sim.stacks[pid].instance_at(("a",)).broadcast(b"m%d" % pid)
        reason = sim.run(
            until=lambda: all(len(o) == 3 for o in orders.values()), max_time=30
        )
        assert reason == "until"
        assert orders[3] == orders[0]  # same total order, just later

    def test_heal_mid_agreement_delivers_identically(self):
        """An AB burst submitted *before* a 2/2 split (no quorum on
        either side) must deliver in one identical total order on every
        replica once the split heals mid-agreement."""
        heal_at = 0.5
        plan = FaultPlan(partitions=[Partition(0.003, heal_at, ((0, 1), (2, 3)))])
        sim = LanSimulation(n=4, seed=35, fault_plan=plan)
        for stack in sim.stacks:
            stack.record_delivery_order = True
            stack.create("ab", ("a",))
        for pid in range(4):
            for index in range(3):
                sim.stacks[pid].instance_at(("a",)).broadcast(b"%d:%d" % (pid, index))

        def all_delivered():
            return all(
                len(stack.instance_at(("a",)).order_log) == 12
                for stack in sim.stacks
            )

        reason = sim.run(until=all_delivered, max_time=60)
        assert reason == "until"
        # The burst genuinely straddled the split: with no quorum in
        # either island, part of the order could only form post-heal.
        assert sim.now > heal_at
        logs = [list(s.instance_at(("a",)).order_log) for s in sim.stacks]
        assert logs[0] == logs[1] == logs[2] == logs[3]

    def test_no_frames_lost_across_partition(self):
        """The reliable channel delays, never drops: total frame counts
        match a partition-free run's deliveries."""
        plan = FaultPlan(partitions=[Partition(0.0, 0.020, ((0, 1), (2, 3)))])
        sim = LanSimulation(n=4, seed=34, fault_plan=plan)
        got = [None] * 4
        for pid, stack in enumerate(sim.stacks):
            rb = stack.create("rb", ("r",), sender=0)
            rb.on_deliver = lambda _i, v, pid=pid: got.__setitem__(pid, v)
        sim.stacks[0].instance_at(("r",)).broadcast(b"m")
        sim.run(until=lambda: all(v is not None for v in got), max_time=10)
        assert got == [b"m"] * 4
