"""Group configuration and quorum arithmetic (Section 2 of the paper)."""

import pytest

from repro.core.config import GroupConfig, max_faulty
from repro.core.errors import ConfigurationError


class TestMaxFaulty:
    def test_paper_group(self):
        assert max_faulty(4) == 1

    def test_small_groups(self):
        assert max_faulty(1) == 0
        assert max_faulty(2) == 0
        assert max_faulty(3) == 0

    def test_first_two_fault_group(self):
        assert max_faulty(7) == 2

    def test_exact_3f_plus_1(self):
        for f in range(0, 20):
            assert max_faulty(3 * f + 1) == f

    def test_slack_does_not_raise_f(self):
        assert max_faulty(5) == 1
        assert max_faulty(6) == 1
        assert max_faulty(9) == 2


class TestGroupConfig:
    def test_defaults_to_optimal_resilience(self):
        config = GroupConfig(4)
        assert config.n == 4
        assert config.f == 1

    def test_explicit_smaller_f_allowed(self):
        config = GroupConfig(7, num_faulty=1)
        assert config.f == 1

    def test_f_zero_allowed(self):
        assert GroupConfig(1, num_faulty=0).f == 0

    def test_too_large_f_rejected(self):
        with pytest.raises(ConfigurationError, match="3f"):
            GroupConfig(4, num_faulty=2)

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(4, num_faulty=-2)

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(0)

    def test_process_ids(self):
        assert list(GroupConfig(4).process_ids) == [0, 1, 2, 3]

    def test_frozen(self):
        config = GroupConfig(4)
        with pytest.raises(AttributeError):
            config.num_processes = 7  # type: ignore[misc]


class TestQuorums:
    """The thresholds Section 2 derives for n=4, f=1."""

    def test_echo_quorum_paper_group(self, config4):
        # floor((n+f)/2) + 1 = floor(5/2) + 1 = 3
        assert config4.echo_quorum == 3

    def test_ready_amplify_paper_group(self, config4):
        assert config4.ready_amplify == 2  # f + 1

    def test_ready_quorum_paper_group(self, config4):
        assert config4.ready_quorum == 3  # 2f + 1

    def test_wait_quorum_paper_group(self, config4):
        assert config4.wait_quorum == 3  # n - f

    def test_value_quorum_paper_group(self, config4):
        assert config4.value_quorum == 2  # n - 2f

    def test_mat_quorum_paper_group(self, config4):
        assert config4.mat_quorum == 2  # f + 1

    @pytest.mark.parametrize("n", [4, 5, 6, 7, 10, 13, 16, 31])
    def test_quorum_relations_hold_generally(self, n):
        """Sanity relations the protocol proofs rely on."""
        config = GroupConfig(n)
        f = config.f
        # Any two (n-f)-subsets intersect in >= n-2f >= f+1 processes.
        assert 2 * config.wait_quorum - n >= f + 1
        # The echo quorum majority-intersects: two echo quorums share a
        # correct process.
        assert 2 * config.echo_quorum - n >= f + 1
        # Delivering 2f+1 READYs guarantees f+1 correct READYs, which
        # exceeds the ready_amplify bar for everyone else.
        assert config.ready_quorum - f >= config.ready_amplify
        # Waiting for n-f messages can always be satisfied.
        assert config.wait_quorum <= n - f
