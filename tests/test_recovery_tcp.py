"""Kill-and-restart recovery on the real asyncio TCP runtime.

The sans-IO recovery layer must behave identically here and on the
simulator: a node is closed mid-run (crash), the group keeps ordering
commands, then a brand-new node rebinds the same port, bootstraps from
its peers and converges on the same state digest.
"""

import asyncio

from repro.apps.kv_store import ReplicatedKvStore
from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.recovery import PHASE_LIVE, RecoveryManager
from repro.transport.tcp import PeerAddress, RitasNode

N = 4
INTERVAL = 16
TICK_S = 0.02


def _make_node(config, dealer, addresses, pid):
    return RitasNode(
        config, pid, addresses, dealer.keystore_for(pid), connect_retry_s=0.05
    )


def _attach(node, recovering=False):
    store = ReplicatedKvStore(node.stack.create("ab", ("kv",)))
    manager = RecoveryManager(node.stack, store.rsm, recovering=recovering)
    node.add_ticker(TICK_S, manager.poke)
    return store, manager


async def _wait(predicate, timeout_s, what):
    for _ in range(int(timeout_s / 0.02)):
        if predicate():
            return
        await asyncio.sleep(0.02)
    raise TimeoutError(f"timed out waiting for {what}")


def test_tcp_kill_restart_rejoin():
    config = GroupConfig(N, checkpoint_interval=INTERVAL)
    dealer = TrustedDealer(N, seed=b"tcp-recovery")

    async def scenario():
        blank = [PeerAddress("127.0.0.1", 0)] * N
        nodes = [_make_node(config, dealer, blank, pid) for pid in range(N)]
        for node in nodes:
            await node.listen()
        addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
        for node in nodes:
            node.set_peer_addresses(addresses)
        for node in nodes:
            await node.connect()
        stores, managers = [], []
        for node in nodes:
            store, manager = _attach(node)
            stores.append(store)
            managers.append(manager)
        try:
            # Phase A: everyone up, two checkpoint windows of commands.
            for burst in range(4):
                for i in range(8):
                    stores[i % N].put(f"a/{burst}/{i}", bytes([burst, i]))
                target = 8 * (burst + 1)
                await _wait(
                    lambda: all(m.position >= target for m in managers),
                    20,
                    f"phase A burst {burst}",
                )
            assert all(m.stable_seq >= INTERVAL for m in managers)

            # Crash replica 3 (close severs every connection).
            await nodes[3].close()

            # Phase B: the group keeps ordering without it.
            for burst in range(4):
                for i in range(8):
                    stores[i % 3].put(f"b/{burst}/{i}", bytes([burst, i]))
                target = 32 + 8 * (burst + 1)
                await _wait(
                    lambda: all(m.position >= target for m in managers[:3]),
                    20,
                    f"phase B burst {burst}",
                )
            assert managers[3].position == 32  # frozen at crash

            # Restart on the same port with a blank stack and recover.
            nodes[3] = _make_node(config, dealer, addresses, 3)
            await nodes[3].listen()
            assert nodes[3].bound_port == addresses[3].port  # same-port rebind
            await nodes[3].connect()
            stores[3], managers[3] = _attach(nodes[3], recovering=True)
            await _wait(
                lambda: managers[3].phase == PHASE_LIVE, 60, "replica 3 rejoin"
            )
            assert managers[3].stats.snapshots_installed >= 1
            assert managers[3].stats.state_bytes_received > 0
            assert managers[3].stats.rejoin_time_s is not None

            # Convergence: same digest, same position, everywhere.
            await _wait(
                lambda: len({s.state_digest() for s in stores}) == 1
                and len({m.position for m in managers}) == 1,
                60,
                "post-rejoin convergence",
            )

            # The GC floor advanced under checkpointing on this runtime.
            assert any(m._ab.gc_floor > 0 for m in managers[:3])

            # The recovered replica submits; its command is ordered
            # everywhere (broadcast ids resumed past the old incarnation).
            stores[3].put("tcp-after", b"!")
            await _wait(
                lambda: all(s.get("tcp-after") == b"!" for s in stores),
                30,
                "post-rejoin submission",
            )
        finally:
            for node in nodes:
                await node.close()

    asyncio.run(scenario())
